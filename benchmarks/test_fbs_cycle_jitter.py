"""Extension benchmark: FBS frame integrity with and without a shield.

A 400 Hz frequency-based schedule (servo + dynamics + logger) under
stress-kernel load.  On the shielded CPU the frame structure holds
with microsecond wakeup jitter and no overruns; unshielded, wakeup
jitter grows by orders of magnitude and frames overrun.
"""

from conftest import print_report, scaled

from repro.configs.kernels import redhawk_1_4
from repro.core.affinity import CpuMask
from repro.experiments.harness import build_bench
from repro.fbs import FrequencyBasedScheduler
from repro.hw.machine import interrupt_testbed
from repro.kernel.syscalls import UserApi
from repro.kernel.task import SchedPolicy
from repro.metrics.report import comparison_table
from repro.sim.simtime import MSEC, SEC, USEC
from repro.workloads.base import WorkloadSpec, spawn, spawn_all
from repro.workloads.stress_kernel import stress_kernel_suite

CYCLE_NS = 2_500 * USEC


def _run(shielded: bool, seconds: int, seed=31):
    bench = build_bench(redhawk_1_4(), interrupt_testbed(), seed=seed,
                        rcim_period_ns=CYCLE_NS)
    bench.start_devices()
    spawn_all(bench.kernel, stress_kernel_suite(bench.kernel))
    fbs = FrequencyBasedScheduler(bench.kernel, cycle_ns=CYCLE_NS,
                                  cycles_per_frame=20, rcim=bench.rcim)
    jitter = []
    proc = fbs.register("servo", period=1)
    api = UserApi(bench.kernel)

    def body(_api):
        yield from api.mlockall()
        yield from api.sched_setscheduler(SchedPolicy.FIFO, 80)
        yield from api.sched_setaffinity(CpuMask.single(1))
        expected = None
        while True:
            yield from fbs.wait(api, proc)
            now = bench.sim.now
            if expected is not None:
                jitter.append(abs(now - expected))
            expected = now + CYCLE_NS
            yield from api.compute(600 * USEC, label="servo")

    spawn(bench.kernel, WorkloadSpec("servo", body, SchedPolicy.FIFO, 80,
                                     affinity=CpuMask.single(1)))
    if shielded:
        bench.shield_cpu(1)
        bench.set_irq_affinity(bench.rcim.irq, 1)
    bench.run_for(2 * MSEC)
    fbs.start()
    bench.run_for(seconds * SEC)
    stats = fbs.monitor.stats_for("servo")
    return jitter, stats


def test_fbs_cycle_jitter(benchmark):
    seconds = scaled(3, minimum=2)

    def run_both():
        return _run(False, seconds), _run(True, seconds)

    (open_j, open_s), (shield_j, shield_s) = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    def row(name, jitter, stats):
        mean = sum(jitter) / len(jitter) if jitter else 0
        return (name, f"{mean / 1e3:.1f}",
                f"{max(jitter) / 1e3:.1f}" if jitter else "-",
                stats.cycles, stats.overruns)

    print_report(comparison_table(
        [row("unshielded", open_j, open_s),
         row("shielded", shield_j, shield_s)],
        ["variant", "mean jitter(us)", "max jitter(us)", "cycles",
         "overruns"]))

    assert shield_j and open_j
    # Shielding cuts worst-case wakeup jitter dramatically.
    assert max(shield_j) < max(open_j) / 3
    # The 400 Hz frame holds on the shield.
    assert shield_s.overruns == 0
