"""Extension benchmark: FBS frame integrity with and without a shield.

A 400 Hz frequency-based schedule (servo under stress-kernel load).
On the shielded CPU the frame structure holds with microsecond wakeup
jitter and no overruns; unshielded, wakeup jitter grows by orders of
magnitude and frames overrun.

Both variants are registered scenarios (``fbs-shielded`` /
``fbs-unshielded``) driven through the declarative scenario layer.
"""

from conftest import print_report, scaled

from repro.experiments.scenario import run_named
from repro.metrics.report import comparison_table
from repro.sim.simtime import SEC


def test_fbs_cycle_jitter(benchmark):
    seconds = scaled(3, minimum=2)

    def run_both():
        return (run_named("fbs-unshielded", seed=31,
                          duration_ns=seconds * SEC),
                run_named("fbs-shielded", seed=31,
                          duration_ns=seconds * SEC))

    open_r, shield_r = benchmark.pedantic(run_both, rounds=1, iterations=1)
    open_j = list(open_r.recorder.samples)
    shield_j = list(shield_r.recorder.samples)

    def row(name, jitter, result):
        mean = sum(jitter) / len(jitter) if jitter else 0
        return (name, f"{mean / 1e3:.1f}",
                f"{max(jitter) / 1e3:.1f}" if jitter else "-",
                result.details["cycles"], result.details["overruns"])

    print_report(comparison_table(
        [row("unshielded", open_j, open_r),
         row("shielded", shield_j, shield_r)],
        ["variant", "mean jitter(us)", "max jitter(us)", "cycles",
         "overruns"]))

    assert shield_j and open_j
    # Shielding cuts worst-case wakeup jitter dramatically.
    assert max(shield_j) < max(open_j) / 3
    # The 400 Hz frame holds on the shield.
    assert shield_r.details["overruns"] == 0
