"""Figure 1: execution determinism, kernel.org 2.4.21, hyperthreading on.

Paper result: ideal 1.147225 s, max 1.447509 s, jitter 0.300284 s
(26.17%).  The reproduction must show jitter of the same order, and
the per-iteration variance histogram spanning hundreds of ms.
"""

from conftest import note, print_report, scaled

from repro.experiments.determinism import run_fig1_vanilla_ht
from repro.metrics.histogram import Histogram

PAPER_JITTER_PCT = 26.17


def test_fig1_vanilla_ht_determinism(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig1_vanilla_ht(iterations=scaled(15, minimum=6)),
        rounds=1, iterations=1)

    hist = Histogram(0, 500.0, 50)  # variance from ideal, ms
    hist.add_many(result.recorder.variances_ms())
    print_report(result.report())
    note(f"paper jitter: {PAPER_JITTER_PCT}%  "
          f"measured: {result.jitter_percent:.2f}%")

    # Shape assertions: same order of magnitude, clearly bad.
    assert 10.0 < result.jitter_percent < 60.0
    assert result.max_ns > result.ideal_ns * 1.10
