"""Figure 6: realfeel interrupt response on RedHawk 1.4, shielded CPU.

Paper result (12.8M samples over 8 hours): max latency 0.565 ms;
99.99986% of samples < 0.1 ms, with 17 samples between 0.1 and 0.6 ms.
The tail is caused by file-layer spinlock holders preempted by
bottom-half bursts -- the /dev/rtc read() exit path is "not ideal for
achieving a guaranteed interrupt response".

The tail events are rare (the paper needed hours to see 17 of them);
at bench scale we assert the guarantee (sub-millisecond worst case)
and the overwhelming sub-0.1 ms mass, and report any tail samples
observed.
"""

from conftest import note, print_report, scaled

from repro.experiments.interrupt_response import run_fig6_redhawk_shielded_rtc
from repro.metrics.report import FIG6_THRESHOLDS_MS

PAPER = {"max_ms": 0.565, "below_0p1ms": 99.99986}


def test_fig6_redhawk_shielded_rtc_latency(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig6_redhawk_shielded_rtc(
            samples=scaled(60_000, minimum=8_000), seed=2),
        rounds=1, iterations=1)
    rec = result.recorder

    print_report(result.report("fine-buckets"))
    tail = [s for s in rec.samples if s >= 100_000]
    note(f"tail samples (>=0.1ms): {len(tail)} of {rec.count}: "
          f"{[round(s / 1e6, 3) for s in sorted(tail)]} ms")
    note(f"paper: max {PAPER['max_ms']}ms, 17 tail samples in 12.8M")

    # The title claim: guaranteed sub-millisecond response.
    assert rec.max() < 1_000_000
    # The overwhelming majority is far below 0.1 ms.
    assert rec.fraction_below(100_000) > 0.999
