"""Figure 3: execution determinism, RedHawk 1.4, shield disabled.

Paper result: ideal 1.147224 s, max 1.317224 s, jitter ~0.170 s
(14.82%) -- interrupt load on an unshielded CPU causes jitter, though
still better than stock 2.4 with hyperthreading.
"""

from conftest import note, print_report, scaled

from repro.experiments.determinism import (
    run_fig2_redhawk_shielded,
    run_fig3_redhawk_unshielded,
)

PAPER_JITTER_PCT = 14.82


def test_fig3_redhawk_unshielded_determinism(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig3_redhawk_unshielded(iterations=scaled(15, minimum=6)),
        rounds=1, iterations=1)

    print_report(result.report())
    note(f"paper jitter: {PAPER_JITTER_PCT}%  "
          f"measured: {result.jitter_percent:.2f}%")

    assert 5.0 < result.jitter_percent < 35.0


def test_fig3_vs_fig2_shield_contribution(benchmark):
    """The shield is what buys the determinism, not RedHawk alone."""
    def run_pair():
        return (run_fig3_redhawk_unshielded(iterations=scaled(8, minimum=5)),
                run_fig2_redhawk_shielded(iterations=scaled(8, minimum=5)))

    unshielded, shielded = benchmark.pedantic(run_pair, rounds=1,
                                              iterations=1)
    print_report(
        f"unshielded jitter: {unshielded.jitter_percent:.2f}%\n"
        f"shielded jitter:   {shielded.jitter_percent:.2f}%")
    assert shielded.jitter_percent < unshielded.jitter_percent / 2
