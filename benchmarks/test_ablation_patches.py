"""Ablation A2: the open-source patch lineage.

The paper's introduction: "The combination of the preemption patch and
the low-latency patch sets was used ... to demonstrate a worst-case
interrupt response time of 1.2 milliseconds."  This ablation runs the
Figure 5 setup across all four patch combinations on the 2.4 baseline
(no shield) and reports worst-case latency per variant.
"""

from conftest import print_report, scaled

from repro.experiments.ablations import run_patch_ablation
from repro.metrics.report import comparison_table


def test_ablation_preempt_lowlat_patches(benchmark):
    results = benchmark.pedantic(
        lambda: run_patch_ablation(samples=scaled(8_000, minimum=2_000)),
        rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        rec = result.recorder
        rows.append((name, f"{rec.max() / 1e6:.3f}",
                     f"{100 * rec.fraction_below(100_000):.2f}",
                     f"{100 * rec.fraction_below(1_000_000):.2f}"))
    print_report(comparison_table(
        rows, ["kernel", "max(ms)", "<0.1ms(%)", "<1ms(%)"]))

    stock = results["stock"].recorder.max()
    both = results["preempt+lowlat"].recorder.max()
    # Each patch family helps; the combination dominates stock by a
    # large factor (paper: 92 ms -> ~1.2 ms class).
    assert both < stock
    assert both < 5_000_000  # low single-digit ms worst case
    assert stock > 2_000_000  # stock has a multi-ms tail
    # Low-latency alone already bounds the huge fs sections.
    assert results["low-latency"].recorder.max() < stock
