"""Ablation A4: hyperthreading under RedHawk.

"Note that hyperthreading is disabled by default in RedHawk."  This
ablation quantifies that default: the same RedHawk determinism run
with the execution units shared vs dedicated.
"""

from conftest import print_report, scaled

from repro.experiments.ablations import run_hyperthreading_ablation
from repro.metrics.report import comparison_table


def test_ablation_hyperthreading(benchmark):
    results = benchmark.pedantic(
        lambda: run_hyperthreading_ablation(
            iterations=scaled(10, minimum=5)),
        rounds=1, iterations=1)

    rows = [(name, f"{r.ideal_ns / 1e9:.4f}", f"{r.max_ns / 1e9:.4f}",
             f"{r.jitter_percent:.2f}")
            for name, r in results.items()]
    print_report(comparison_table(
        rows, ["variant", "ideal(s)", "max(s)", "jitter(%)"]))

    # Sharing the execution unit visibly degrades determinism.
    assert (results["ht-on"].jitter_percent
            > results["ht-off"].jitter_percent * 1.3)
