"""Ablation A1: which shield component buys what.

The paper exposes three independent /proc/shield masks; this ablation
applies them cumulatively to the Figure 6 setup and reports the
latency profile of each step.  Expected shape: interrupt shielding is
the big win for interrupt response; process shielding removes
scheduling interference; the local-timer shield trims the residual
tick theft.
"""

from conftest import print_report, scaled

from repro.experiments.ablations import run_shield_component_ablation
from repro.metrics.report import comparison_table


def test_ablation_shield_components(benchmark):
    results = benchmark.pedantic(
        lambda: run_shield_component_ablation(
            samples=scaled(8_000, minimum=2_000)),
        rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        rec = result.recorder
        rows.append((name, f"{rec.max() / 1e3:.1f}",
                     f"{rec.mean() / 1e3:.2f}",
                     f"{100 * rec.fraction_below(100_000):.3f}"))
    print_report(comparison_table(
        rows, ["shield", "max(us)", "mean(us)", "<0.1ms(%)"]))

    full = results["full"].recorder
    none = results["none"].recorder
    # The full shield must dominate no-shield on the fast-response
    # fraction (worst cases at this scale are rare-event noisy).
    assert (full.fraction_below(100_000)
            >= none.fraction_below(100_000))
    # And guarantee sub-millisecond response.
    assert full.max() < 1_000_000
    # Adding the interrupt shield must not make the mean worse than
    # process-shielding alone.
    assert (results["procs+irqs"].recorder.mean()
            <= results["procs"].recorder.mean() * 1.5)
