"""Ablation A6: the uniprocessor case.

Section 2: "The shielded CPU model ... does not apply to uniprocessor
systems", and section 1: RedHawk's other modifications "allow RedHawk
to attain real-time performance guarantees even when shielded CPUs are
not utilized, for example on a uni-processor system."

This ablation runs realfeel on a single-CPU machine under a scaled
stress load: the vanilla kernel shows the unbounded tail, RedHawk's
preemption + low-latency + bounded-softirq machinery bounds it to the
low-millisecond class -- without any shield to hide behind.

The two variants are the registered scenarios ``a6-vanilla-up`` and
``a6-redhawk-up``.
"""

from conftest import print_report, scaled

from repro.experiments.ablations import run_uniprocessor_ablation
from repro.metrics.report import comparison_table

LABELS = {"vanilla-up": "vanilla-UP", "redhawk-up": "redhawk-UP"}


def test_ablation_uniprocessor(benchmark):
    samples = scaled(6_000, minimum=2_000)

    results = benchmark.pedantic(
        lambda: run_uniprocessor_ablation(samples=samples),
        rounds=1, iterations=1)

    rows = [(LABELS[name], f"{r.recorder.max() / 1e6:.3f}",
             f"{100 * r.recorder.fraction_below(100_000):.2f}",
             f"{100 * r.recorder.fraction_below(1_000_000):.2f}")
            for name, r in results.items()]
    print_report(comparison_table(
        rows, ["kernel", "max(ms)", "<0.1ms(%)", "<1ms(%)"]))

    vanilla = results["vanilla-up"].recorder
    redhawk = results["redhawk-up"].recorder
    # No shield is possible on UP; the patches alone must carry it.
    assert redhawk.max() < vanilla.max()
    assert vanilla.max() > 2_000_000      # unbounded-tail class
    assert redhawk.max() < 3_000_000      # low-ms class (not sub-ms:
    #                                       that needs the shield + SMP)
