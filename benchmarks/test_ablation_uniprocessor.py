"""Ablation A6: the uniprocessor case.

Section 2: "The shielded CPU model ... does not apply to uniprocessor
systems", and section 1: RedHawk's other modifications "allow RedHawk
to attain real-time performance guarantees even when shielded CPUs are
not utilized, for example on a uni-processor system."

This ablation runs realfeel on a single-CPU machine under a scaled
stress load: the vanilla kernel shows the unbounded tail, RedHawk's
preemption + low-latency + bounded-softirq machinery bounds it to the
low-millisecond class -- without any shield to hide behind.
"""

from conftest import print_report, scaled

from repro.configs.kernels import redhawk_1_4, vanilla_2_4_21
from repro.experiments.harness import build_bench
from repro.hw.machine import MachineSpec
from repro.metrics.report import comparison_table
from repro.workloads.base import spawn, spawn_all
from repro.workloads.realfeel import Realfeel
from repro.workloads.stress_kernel import stress_kernel_suite


def _run(config, samples, seed=9):
    spec = MachineSpec(cores=1, hyperthreading=False, name="up-xeon")
    bench = build_bench(config, spec, seed=seed)
    bench.add_background_broadcast()
    bench.start_devices()
    bench.rtc.enable_periodic()
    spawn_all(bench.kernel, stress_kernel_suite(bench.kernel))
    test = Realfeel(bench.rtc, samples=samples)
    spawn(bench.kernel, test.spec())
    bench.run_until_done(test, limit_ns=test.estimated_sim_ns())
    return test.recorder


def test_ablation_uniprocessor(benchmark):
    samples = scaled(6_000, minimum=2_000)

    def run_both():
        return {
            "vanilla-UP": _run(vanilla_2_4_21(), samples),
            "redhawk-UP": _run(redhawk_1_4(), samples),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [(name, f"{rec.max() / 1e6:.3f}",
             f"{100 * rec.fraction_below(100_000):.2f}",
             f"{100 * rec.fraction_below(1_000_000):.2f}")
            for name, rec in results.items()]
    print_report(comparison_table(
        rows, ["kernel", "max(ms)", "<0.1ms(%)", "<1ms(%)"]))

    vanilla = results["vanilla-UP"]
    redhawk = results["redhawk-UP"]
    # No shield is possible on UP; the patches alone must carry it.
    assert redhawk.max() < vanilla.max()
    assert vanilla.max() > 2_000_000      # unbounded-tail class
    assert redhawk.max() < 3_000_000      # low-ms class (not sub-ms:
    #                                       that needs the shield + SMP)
