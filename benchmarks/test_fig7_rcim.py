"""Figure 7: RCIM interrupt response on RedHawk 1.4, shielded CPU.

Paper result: minimum 11 us, maximum 27 us, average 11.3 us over 15.8M
interrupts -- under stress-kernel plus X11perf plus ttcp-over-Ethernet
load.  "A shielded processor is able to provide an absolute guarantee
on worst-case interrupt response time of less than 30 microseconds."
"""

from conftest import note, print_report, scaled

from repro.experiments.interrupt_response import run_fig7_rcim

PAPER = {"min_us": 11, "max_us": 27, "avg_us": 11.3}


def test_fig7_rcim_latency(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig7_rcim(samples=scaled(25_000, minimum=4_000)),
        rounds=1, iterations=1)
    rec = result.recorder

    print_report(result.report("summary"))
    note(f"paper: min {PAPER['min_us']}us avg {PAPER['avg_us']}us "
          f"max {PAPER['max_us']}us")

    # Tens-of-microseconds guarantee, an order of magnitude below the
    # RTC path and three below the millisecond bound.
    assert rec.max() < 40_000
    assert 3_000 < rec.min() < 20_000
    assert rec.mean() < 25_000
