"""Ablation A5: the POSIX high-res timers patch.

A cyclictest-style 1 ms periodic thread on each kernel.  Vanilla 2.4
rounds every nanosleep up to jiffies (HZ=100: 10-20 ms!), so its timer
latency is dominated by the clock, not the scheduler; RedHawk's
high-res timers expose the actual scheduling latency, which shielding
then bounds.
"""

from conftest import print_report, scaled

from repro.configs.kernels import redhawk_1_4, vanilla_2_4_21
from repro.core.affinity import CpuMask
from repro.experiments.harness import build_bench
from repro.hw.machine import interrupt_testbed
from repro.metrics.report import comparison_table
from repro.sim.simtime import MSEC
from repro.workloads.base import spawn, spawn_all
from repro.workloads.cyclictest import CyclicTest
from repro.workloads.stress_kernel import stress_kernel_suite


def _run(config, shielded, cycles, seed=5):
    bench = build_bench(config, interrupt_testbed(), seed=seed)
    bench.start_devices()
    spawn_all(bench.kernel, stress_kernel_suite(bench.kernel))
    test = CyclicTest(interval_ns=1 * MSEC, cycles=cycles,
                      affinity=CpuMask.single(1) if shielded else None)
    spawn(bench.kernel, test.spec())
    if shielded and config.shield_support:
        bench.shield_cpu(1)
    bench.run_until_done(test, limit_ns=test.estimated_sim_ns())
    return test.recorder


def test_ablation_timer_resolution(benchmark):
    cycles = scaled(3_000, minimum=800)

    def run_all():
        return {
            "vanilla (jiffies timers)": _run(vanilla_2_4_21(), False, cycles),
            "redhawk (high-res)": _run(redhawk_1_4(), False, cycles),
            "redhawk (high-res, shield)": _run(redhawk_1_4(), True, cycles),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [(name, f"{rec.min() / 1e3:.1f}", f"{rec.mean() / 1e3:.1f}",
             f"{rec.max() / 1e3:.1f}")
            for name, rec in results.items()]
    print_report(comparison_table(
        rows, ["kernel", "min(us)", "mean(us)", "max(us)"]))

    vanilla = results["vanilla (jiffies timers)"]
    highres = results["redhawk (high-res)"]
    shielded = results["redhawk (high-res, shield)"]
    # Jiffy rounding dominates: every vanilla wakeup is >= ~10 ms late.
    assert vanilla.min() > 5_000_000
    # High-res timers bring latency down by orders of magnitude.
    assert highres.mean() < vanilla.mean() / 50
    # Shielding then bounds the worst case.
    assert shielded.max() <= highres.max()
    assert shielded.max() < 1_000_000
