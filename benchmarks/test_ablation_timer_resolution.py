"""Ablation A5: the POSIX high-res timers patch.

A cyclictest-style 1 ms periodic thread on each kernel.  Vanilla 2.4
rounds every nanosleep up to jiffies (HZ=100: 10-20 ms!), so its timer
latency is dominated by the clock, not the scheduler; RedHawk's
high-res timers expose the actual scheduling latency, which shielding
then bounds.

The three variants are the registered scenarios ``a5-vanilla``,
``a5-highres`` and ``a5-highres-shield``.
"""

from conftest import print_report, scaled

from repro.experiments.ablations import run_timer_resolution_ablation
from repro.metrics.report import comparison_table

LABELS = {
    "vanilla": "vanilla (jiffies timers)",
    "highres": "redhawk (high-res)",
    "highres-shield": "redhawk (high-res, shield)",
}


def test_ablation_timer_resolution(benchmark):
    cycles = scaled(3_000, minimum=800)

    results = benchmark.pedantic(
        lambda: run_timer_resolution_ablation(cycles=cycles),
        rounds=1, iterations=1)

    rows = [(LABELS[name], f"{r.recorder.min() / 1e3:.1f}",
             f"{r.recorder.mean() / 1e3:.1f}",
             f"{r.recorder.max() / 1e3:.1f}")
            for name, r in results.items()]
    print_report(comparison_table(
        rows, ["kernel", "min(us)", "mean(us)", "max(us)"]))

    vanilla = results["vanilla"].recorder
    highres = results["highres"].recorder
    shielded = results["highres-shield"].recorder
    # Jiffy rounding dominates: every vanilla wakeup is >= ~10 ms late.
    assert vanilla.min() > 5_000_000
    # High-res timers bring latency down by orders of magnitude.
    assert highres.mean() < vanilla.mean() / 50
    # Shielding then bounds the worst case.
    assert shielded.max() <= highres.max()
    assert shielded.max() < 1_000_000
