"""Benchmark configuration.

Every benchmark regenerates one of the paper's figures/tables at a
scale controlled by ``REPRO_BENCH_SCALE`` (default 1.0): sample counts
and iteration counts are multiplied by it.  Each benchmark prints the
same rows the paper's figure legend shows, then asserts the
qualitative shape (orderings and bounds), so a benchmark run doubles
as a reproduction report.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_SCALE=5`` for publication-scale runs (slower).
"""

from __future__ import annotations

import os

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: int, minimum: int = 1) -> int:
    return max(minimum, int(value * SCALE))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return SCALE


def print_report(text: str) -> None:
    """Print a paper-format table, bypassing pytest's capture.

    Benchmark runs double as reproduction reports; the tables must
    land in the terminal / tee'd log even without ``-s``.
    """
    import sys

    out = getattr(sys, "__stdout__", sys.stdout)
    print(file=out)
    print("=" * 70, file=out)
    print(text, file=out)
    print("=" * 70, file=out)
    out.flush()


def note(text: str) -> None:
    """One-line annotation that also bypasses pytest capture."""
    import sys

    out = getattr(sys, "__stdout__", sys.stdout)
    print(text, file=out)
    out.flush()
