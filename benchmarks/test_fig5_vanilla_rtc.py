"""Figure 5: realfeel interrupt response on kernel.org 2.4.21.

Paper result (12.8M samples over a truncated 8-hour run): max latency
92.3 ms; 99.140% < 0.1 ms, 99.843% < 1 ms, and a tail spread up to
100 ms.  "At 92 milliseconds, the worst-case interrupt response is
completely unacceptable for the vast majority of real-time
applications."

The reproduction runs fewer samples (scale with REPRO_BENCH_SCALE);
the tail maximum grows with sample count, so we assert the
multi-millisecond regime rather than the exact 92 ms quantile.
"""

from conftest import note, print_report, scaled

from repro.experiments.interrupt_response import run_fig5_vanilla_rtc
from repro.metrics.histogram import LogHistogram
from repro.metrics.report import FIG5_THRESHOLDS_MS, bucket_table

PAPER = {"max_ms": 92.3, "below_0p1ms": 99.140, "below_1ms": 99.843}


def test_fig5_vanilla_rtc_latency(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig5_vanilla_rtc(samples=scaled(25_000, minimum=4_000)),
        rounds=1, iterations=1)
    rec = result.recorder

    print_report(result.report("buckets"))
    hist = LogHistogram(10_000.0, 100_000_000.0)  # 10 us .. 100 ms
    hist.add_many([max(s, 10_001) for s in rec.samples])
    note(hist.render_ascii(unit="ms", scale=1e6))
    note(f"paper: max {PAPER['max_ms']}ms, "
          f"<0.1ms {PAPER['below_0p1ms']}%, <1ms {PAPER['below_1ms']}%")

    # Shape: the vast majority fast, the worst case catastrophic.
    assert rec.fraction_below(100_000) > 0.90
    assert rec.fraction_below(1_000_000) > 0.98
    assert rec.max() > 2_000_000  # multi-ms tail: no sub-ms guarantee
