"""Ablation A3: the generic-ioctl BKL-avoidance flag.

RedHawk's change: "the generic ioctl support code ... check[s] a
device driver specific flag to see whether the device driver required
the BKL spin lock to be held during the driver's ioctl routine."
Without it, the RCIM waiter reacquires the contended BKL after every
wakeup -- against the X server's DRM ioctls in the Figure 7 load.
"""

from conftest import print_report, scaled

from repro.experiments.ablations import run_bkl_flag_ablation
from repro.metrics.report import comparison_table


def test_ablation_bkl_ioctl_flag(benchmark):
    results = benchmark.pedantic(
        lambda: run_bkl_flag_ablation(samples=scaled(8_000, minimum=2_000)),
        rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        rec = result.recorder
        rows.append((name, f"{rec.min() / 1e3:.1f}",
                     f"{rec.mean() / 1e3:.1f}", f"{rec.max() / 1e3:.1f}"))
    print_report(comparison_table(
        rows, ["variant", "min(us)", "mean(us)", "max(us)"]))

    with_flag = results["flag"].recorder
    without = results["no-flag"].recorder
    # Skipping the BKL must improve the worst case (the paper built
    # the feature for exactly this) and keep the <30 us guarantee.
    assert with_flag.max() < without.max()
    assert with_flag.max() < 40_000
    # Without the flag the BKL acquisitions add measurable latency.
    assert without.mean() > with_flag.mean()
