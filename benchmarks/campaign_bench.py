"""Campaign throughput benchmark: cold vs warm vs resumed sweeps.

Times one ``>=64``-job campaign (fig7 x seeds) three ways against a
:class:`repro.store.ResultStore`:

* **cold**  -- empty store, every job computes (and is persisted),
* **warm**  -- identical re-run, every job is a cache hit,
* **resumed** -- the campaign is interrupted roughly halfway, then
  finished with ``--resume``; completed jobs load from the journal.

Byte-identity of the exported ``CampaignResult`` across all three is
asserted as part of the measurement -- a cache that is fast but wrong
would fail the benchmark, not just the test suite.

Measure and write (committed at the repo root, tracked PR-over-PR)::

    PYTHONPATH=src python -m benchmarks.campaign_bench \
        --output BENCH_campaign.json

CI gate (quick sizes; asserts >=95% warm hit rate, >10x speedup,
byte-identical exports)::

    PYTHONPATH=src python -m benchmarks.campaign_bench --check
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, Optional, Tuple

from repro.experiments.campaign import CampaignRunner, CampaignSpec
from repro.experiments.export import campaign_to_dict, to_json
from repro.store import ResultStore

#: Default matrix: 64 jobs is the acceptance floor for the 10x gate.
SEEDS = 64
SAMPLES = 300
QUICK_SAMPLES = 120
WORKERS = 4
REPEATS = 5

#: --check gates (the CI campaign-cache job fails on either).
MIN_HIT_RATE = 0.95
MIN_WARM_SPEEDUP = 10.0


class _Interrupted(Exception):
    """Raised by the progress hook to simulate a mid-campaign kill."""


def _spec(seeds: int, samples: int) -> CampaignSpec:
    return CampaignSpec(scenarios=("fig7",),
                        seeds=tuple(range(1, seeds + 1)),
                        samples=samples)


def _export(result) -> str:
    return to_json(campaign_to_dict(result))


def _timed_run(spec: CampaignSpec, store: ResultStore, workers: int,
               resume: bool = False,
               progress=None) -> Tuple[float, Any]:
    runner = CampaignRunner(spec, workers=workers, store=store,
                            resume=resume, progress=progress)
    start = time.perf_counter()
    result = runner.run()
    return time.perf_counter() - start, result


def _interrupting_progress(stop_after: int):
    """A progress hook that kills the run once ~stop_after jobs did."""
    pattern = re.compile(r"campaign: (\d+)/\d+ computed")

    def hook(message: str) -> None:
        match = pattern.match(message)
        if match and int(match.group(1)) >= stop_after:
            raise _Interrupted

    return hook


def measure(seeds: int = SEEDS, samples: int = SAMPLES,
            workers: int = WORKERS,
            repeats: int = REPEATS) -> Dict[str, Any]:
    spec = _spec(seeds, samples)
    jobs = len(spec.expand())
    root = tempfile.mkdtemp(prefix="campaign-bench-")
    try:
        # One persistent store for the warm leg, fresh ones for each
        # cold/resumed sample.
        warm_store = ResultStore(f"{root}/warm")
        cold_s = float("inf")
        cold_result = None
        for index in range(repeats):
            store = (warm_store if index == 0
                     else ResultStore(f"{root}/cold{index}"))
            elapsed, result = _timed_run(spec, store, workers)
            assert result.cache["computed"] == jobs
            cold_s = min(cold_s, elapsed)
            cold_result = result

        warm_s = float("inf")
        warm_result = None
        for _ in range(repeats):
            elapsed, warm_result = _timed_run(spec, warm_store, workers)
            warm_s = min(warm_s, elapsed)
        hits = warm_result.cache["hits"]
        hit_rate = hits / jobs

        resumed_s = float("inf")
        resumed_result = None
        resumed_jobs = 0
        for index in range(repeats):
            store = ResultStore(f"{root}/resume{index}")
            try:
                _timed_run(spec, store, workers,
                           progress=_interrupting_progress(jobs // 2))
                raise RuntimeError("interruption hook never fired")
            except _Interrupted:
                pass
            elapsed, resumed_result = _timed_run(spec, store, workers,
                                                 resume=True)
            resumed_s = min(resumed_s, elapsed)
            resumed_jobs = resumed_result.cache["resumed"]

        export_identical = (_export(cold_result) == _export(warm_result)
                            == _export(resumed_result))
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return {
        "schema": 1,
        "python": platform.python_version(),
        "campaign": {"scenario": "fig7", "jobs": jobs,
                     "samples": samples, "workers": workers},
        "repeats": repeats,
        "export_byte_identical": export_identical,
        "rows": {
            "cold": {
                "wall_s": round(cold_s, 4),
                "jobs_computed": jobs,
            },
            "warm": {
                "wall_s": round(warm_s, 4),
                "hits": hits,
                "hit_rate": round(hit_rate, 4),
                "speedup_vs_cold": round(cold_s / warm_s, 1),
            },
            "resumed": {
                "wall_s": round(resumed_s, 4),
                "jobs_resumed": resumed_jobs,
                "jobs_computed": resumed_result.cache["computed"],
                "speedup_vs_cold": round(cold_s / resumed_s, 1),
            },
        },
    }


def report(data: Dict[str, Any]) -> str:
    rows = data["rows"]
    spec = data["campaign"]
    lines = [
        f"campaign bench: {spec['jobs']} jobs "
        f"(fig7, samples={spec['samples']}, workers={spec['workers']}, "
        f"best-of-{data['repeats']})",
        "",
        f"  cold     {rows['cold']['wall_s']:>8.3f}s  "
        f"({rows['cold']['jobs_computed']} computed)",
        f"  warm     {rows['warm']['wall_s']:>8.3f}s  "
        f"({rows['warm']['hits']} hits, "
        f"{rows['warm']['hit_rate'] * 100:.0f}% hit rate, "
        f"{rows['warm']['speedup_vs_cold']:.0f}x vs cold)",
        f"  resumed  {rows['resumed']['wall_s']:>8.3f}s  "
        f"({rows['resumed']['jobs_resumed']} resumed + "
        f"{rows['resumed']['jobs_computed']} computed, "
        f"{rows['resumed']['speedup_vs_cold']:.1f}x vs cold)",
        "",
        f"  exports byte-identical: {data['export_byte_identical']}",
    ]
    return "\n".join(lines)


def check(data: Dict[str, Any]) -> int:
    """Gate the freshly measured numbers (CI campaign-cache job)."""
    rows = data["rows"]
    failures = []
    if rows["warm"]["hit_rate"] < MIN_HIT_RATE:
        failures.append(
            f"warm hit rate {rows['warm']['hit_rate']:.2%} "
            f"< {MIN_HIT_RATE:.0%}")
    if rows["warm"]["speedup_vs_cold"] <= MIN_WARM_SPEEDUP:
        failures.append(
            f"warm speedup {rows['warm']['speedup_vs_cold']:.1f}x "
            f"<= {MIN_WARM_SPEEDUP:.0f}x")
    if not data["export_byte_identical"]:
        failures.append("cold/warm/resumed exports differ")
    if rows["resumed"]["jobs_resumed"] == 0:
        failures.append("resume leg recomputed every job")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("OK: hit rate, warm speedup, resume and byte-identity gates "
          "all passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.campaign_bench")
    parser.add_argument("--seeds", type=int, default=SEEDS,
                        help="seed count (= job count; default 64)")
    parser.add_argument("--samples", type=int, default=SAMPLES)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help="best-of-N (default 5)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller samples and best-of-1 (CI)")
    parser.add_argument("--check", action="store_true",
                        help="assert the hit-rate/speedup/identity "
                             "gates (implies --quick)")
    parser.add_argument("--output", default="",
                        help="write BENCH_campaign.json here")
    args = parser.parse_args(argv)

    samples, repeats = args.samples, args.repeats
    if args.quick or args.check:
        samples = min(samples, QUICK_SAMPLES)
        repeats = 1

    data = measure(seeds=args.seeds, samples=samples,
                   workers=args.workers, repeats=repeats)
    print(report(data))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"(wrote {args.output})")
    if args.check:
        print()
        return check(data)
    return 0


if __name__ == "__main__":
    sys.exit(main())
