"""Figure 4: execution determinism, kernel.org 2.4.21, hyperthreading off.

Paper result: ideal 1.147227 s, max 1.298122 s, jitter ~0.151 s
(13.15%).  Comparing with Figure 1 isolates hyperthreading as the
cause of the extra indeterminism.
"""

from conftest import note, print_report, scaled

from repro.experiments.determinism import (
    run_fig1_vanilla_ht,
    run_fig4_vanilla_noht,
)

PAPER_JITTER_PCT = 13.15


def test_fig4_vanilla_noht_determinism(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig4_vanilla_noht(iterations=scaled(15, minimum=6)),
        rounds=1, iterations=1)

    print_report(result.report())
    note(f"paper jitter: {PAPER_JITTER_PCT}%  "
          f"measured: {result.jitter_percent:.2f}%")

    assert 5.0 < result.jitter_percent < 35.0


def test_fig4_vs_fig1_identifies_hyperthreading(benchmark):
    """'This test clearly identifies hyperthreading as the culprit for
    even greater non-deterministic execution.'"""
    def run_pair():
        return (run_fig1_vanilla_ht(iterations=scaled(8, minimum=5)),
                run_fig4_vanilla_noht(iterations=scaled(8, minimum=5)))

    with_ht, without_ht = benchmark.pedantic(run_pair, rounds=1,
                                             iterations=1)
    print_report(
        f"with HT jitter:    {with_ht.jitter_percent:.2f}%\n"
        f"without HT jitter: {without_ht.jitter_percent:.2f}%")
    assert with_ht.jitter_percent > without_ht.jitter_percent * 1.3
