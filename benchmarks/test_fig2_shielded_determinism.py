"""Figure 2: execution determinism, RedHawk 1.4, shielded CPU.

Paper result: ideal 1.147223 s, max 1.168712 s, jitter 0.021489 s
(1.87%) -- attributed to SMP memory contention.
"""

from conftest import note, print_report, scaled

from repro.experiments.determinism import run_fig2_redhawk_shielded

PAPER_JITTER_PCT = 1.87


def test_fig2_redhawk_shielded_determinism(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig2_redhawk_shielded(iterations=scaled(15, minimum=6)),
        rounds=1, iterations=1)

    print_report(result.report())
    note(f"paper jitter: {PAPER_JITTER_PCT}%  "
          f"measured: {result.jitter_percent:.2f}%")

    # A shielded CPU is deterministic to a few percent.
    assert result.jitter_percent < 5.0
    # But not perfectly: the memory-contention residual exists.
    assert result.jitter_ns > 0
