"""The microbenchmark bodies: schedule, drain, periodic, cancel churn.

Each body takes a simulator instance (either the live
:class:`repro.sim.engine.Simulator` or the frozen
:class:`benchmarks.perf.legacy_core.LegacySimulator` -- both expose
``at``/``after``/``run``/``step``) and times its own hot region with
``perf_counter``, returning ``(elapsed_s, events)`` so the harness can
convert wall-clock into events/sec.  Setup work that is not the
subsystem under measurement (input generation, pre-loading the heap
for a drain) stays outside the timed region for both engines.

Event times come from a tiny inline LCG rather than the simulator's
RNG registry: the legacy copy has no RNG, and the benchmark should
measure the event loop, not stream hashing.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple

#: Multiplier/increment of a minimal 63-bit LCG (deterministic times).
_LCG_MUL = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 63) - 1


def _times(n: int, horizon: int, seed: int = 12345) -> list:
    state = seed
    out = []
    for _ in range(n):
        state = (state * _LCG_MUL + _LCG_INC) & _LCG_MASK
        out.append(state % horizon)
    return out


def schedule_body(sim, n: int) -> Tuple[float, int]:
    """Time n ``at()`` calls: handle allocation + queue insertion.

    This is the enqueue half of the hot path; it is reported separately
    from the drain so the (allocation-bound) schedule cost cannot hide
    inside the drain number, nor vice versa.
    """
    times = _times(n, horizon=10 ** 9)
    cb = _null_callback
    at = sim.at
    start = time.perf_counter()
    for when in times:
        at(when, cb)
    elapsed = time.perf_counter() - start
    return elapsed, n


def drain_body(sim, n: int) -> Tuple[float, int]:
    """Pre-load n scattered one-shots, then time draining them all.

    The drain loop is the paper-figure hot path in miniature: every
    interrupt delivery, context-switch completion and sleep expiry is
    an entry popped, liveness-checked and dispatched exactly once.
    """
    cb = _null_callback
    at = sim.at
    for when in _times(n, horizon=10 ** 9):
        at(when, cb)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return elapsed, n


def periodic_body(sim, ticks: int) -> Tuple[float, int]:
    """Drive 8 free-running periodic sources for *ticks* total fires.

    On the live core the sources use the ``periodic()`` timer-wheel
    primitive; on the legacy core (or any simulator without it) they
    fall back to the naive self-rescheduling ``after()`` idiom, which
    is exactly what the pre-optimization devices did.
    """
    periods = (10_000, 13_000, 17_000, 29_000, 37_000, 53_000,
               71_000, 97_000)
    fired = [0]
    budget = ticks

    make_periodic = getattr(sim, "periodic", None)
    if make_periodic is not None:
        handles = []

        def tick() -> None:
            fired[0] += 1
            if fired[0] >= budget:
                for handle in handles:
                    handle.cancel()

        for period in periods:
            handles.append(make_periodic(period, tick))
    else:
        def arm(period: int) -> None:
            sim.after(period, lambda: fire(period))

        def fire(period: int) -> None:
            fired[0] += 1
            if fired[0] < budget:
                arm(period)

        for period in periods:
            arm(period)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return elapsed, fired[0]


def cancel_churn_body(sim, n: int) -> Tuple[float, int]:
    """Repeatedly arm-and-disarm timers with a trickle of real fires.

    Models timeout-style usage (nanosleep guards, NIC coalescing):
    most scheduled events are cancelled before expiry, stressing lazy
    deletion and compaction.  Scheduling and cancelling ARE the
    workload here, so the whole loop is timed.
    """
    cb = _null_callback
    batch = 64
    rounds = max(1, n // batch)
    start = time.perf_counter()
    for _ in range(rounds):
        handles = [sim.after(1000 + 7 * i, cb) for i in range(batch)]
        for handle in handles[1:]:
            handle.cancel()
        # One survivor per batch keeps time advancing.
        sim.run_until(sim.now + 2000)
    elapsed = time.perf_counter() - start
    return elapsed, rounds * batch


def batched_drain_body(sim, n: int) -> Tuple[float, int]:
    """Mixed heap + wheel drain: the batched backend's target shape.

    Half the events are pre-loaded scattered one-shots and the other
    half are periodic fires interleaved among them, so the drain
    crosses the one-shot/periodic boundary constantly.  The
    event-at-a-time loop pays a heap-vs-wheel comparison per fire;
    the batched backend stages each window once and dispatches the
    merged run -- this row is the direct measure of that fusion.  On
    the legacy core the periodic sources fall back to the naive
    self-rescheduling ``after()`` idiom.
    """
    cb = _null_callback
    oneshots = n // 2
    at = sim.at
    for when in _times(oneshots, horizon=10 ** 9):
        at(when, cb)
    periods = (9_973, 14_009, 20_011, 40_009)
    budget = n - oneshots
    fired = [0]

    make_periodic = getattr(sim, "periodic", None)
    if make_periodic is not None:
        handles = []

        def tick() -> None:
            fired[0] += 1
            if fired[0] >= budget:
                for handle in handles:
                    handle.cancel()

        for period in periods:
            handles.append(make_periodic(period, tick))
    else:
        def arm(period: int) -> None:
            sim.after(period, lambda: fire(period))

        def fire(period: int) -> None:
            fired[0] += 1
            if fired[0] < budget:
                arm(period)

        for period in periods:
            arm(period)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return elapsed, oneshots + fired[0]


def _null_callback() -> None:
    return None


# ----------------------------------------------------------------------
# Harness helpers
# ----------------------------------------------------------------------
def time_body(make_sim: Callable[[], object],
              body: Callable[[object, int], Tuple[float, int]],
              n: int, repeats: int = 3) -> Tuple[float, int]:
    """Best-of-*repeats* of a self-timing body; returns (s, events)."""
    best = float("inf")
    events = 0
    for _ in range(repeats):
        sim = make_sim()
        elapsed, events = body(sim, n)
        best = min(best, elapsed)
    return best, events
