"""Frozen copy of the pre-optimization event core (reference only).

This is the ``Simulator``/``EventHandle`` hot path exactly as it stood
before the fast-path overhaul: one ``EventHandle`` object per
scheduled event, pushed onto a ``heapq`` whose comparisons dispatch
through Python-level ``__lt__``, with lazy deletion and half-dead
compaction.

The perf suite runs every microbenchmark against both this module and
the live :mod:`repro.sim.engine`; the ratio between the two is the
machine-independent speedup number committed in ``BENCH_core.json``
and gated in CI.  Do not "fix" or optimize this module -- its whole
value is staying constant.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

_COMPACT_FLOOR = 64


class LegacyEventHandle:
    """Pre-optimization event: liveness flag carried on the heap entry."""

    __slots__ = ("when", "seq", "callback", "label", "_alive", "_owner")

    def __init__(self, when: int, seq: int, callback: Callable[[], Any],
                 label: Optional[str] = None) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.label = label
        self._alive = True
        self._owner = None

    @property
    def alive(self) -> bool:
        return self._alive

    def cancel(self) -> bool:
        was_alive = self._alive
        self._alive = False
        if was_alive and self._owner is not None:
            self._owner._note_cancelled(self)
        return was_alive

    def _consume(self) -> bool:
        was_alive = self._alive
        self._alive = False
        return was_alive

    def __lt__(self, other: "LegacyEventHandle") -> bool:
        if self.when != other.when:
            return self.when < other.when
        return self.seq < other.seq


class LegacySimulator:
    """Pre-optimization engine: handle-typed heap, per-event allocation."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[LegacyEventHandle] = []
        self._seq = 0
        self._events_fired = 0
        self._live = 0
        self._dead = 0

    def at(self, when: int, callback: Callable[[], None],
           label: Optional[str] = None) -> LegacyEventHandle:
        if when < self.now:
            raise ValueError(f"cannot schedule at t={when} < now={self.now}")
        handle = LegacyEventHandle(when, self._seq, callback, label)
        handle._owner = self
        self._seq += 1
        heapq.heappush(self._heap, handle)
        self._live += 1
        return handle

    def after(self, delay: int, callback: Callable[[], None],
              label: Optional[str] = None) -> LegacyEventHandle:
        return self.at(self.now + delay, callback, label)

    def _note_cancelled(self, handle: LegacyEventHandle) -> None:
        self._live -= 1
        self._dead += 1
        if (self._dead > len(self._heap) // 2
                and len(self._heap) >= _COMPACT_FLOOR):
            self._compact()

    def _compact(self) -> None:
        self._heap = [h for h in self._heap if h._alive]
        heapq.heapify(self._heap)
        self._dead = 0

    def _discard_dead_head(self) -> None:
        heap = self._heap
        while heap and not heap[0]._alive:
            heapq.heappop(heap)
            self._dead -= 1

    def _pop_live(self) -> Optional[LegacyEventHandle]:
        self._discard_dead_head()
        if not self._heap:
            return None
        handle = heapq.heappop(self._heap)
        handle._consume()
        self._live -= 1
        return handle

    def step(self) -> bool:
        handle = self._pop_live()
        if handle is None:
            return False
        self.now = handle.when
        self._events_fired += 1
        handle.callback()
        return True

    def run_until(self, when: int) -> None:
        while True:
            self._discard_dead_head()
            if not self._heap or self._heap[0].when > when:
                break
            self.step()
        if when > self.now:
            self.now = when

    def run(self) -> None:
        while self.step():
            pass

    @property
    def events_fired(self) -> int:
        return self._events_fired
