"""Tracked performance microbenchmarks for the simulation core.

The suite measures the discrete-event hot path (one-shot drain,
periodic-tick throughput, cancel-heavy churn) and two end-to-end
figure reproductions, then writes ``BENCH_core.json`` so the perf
trajectory is tracked PR-over-PR.

Every microbenchmark runs twice: once against the *current* core
(:mod:`repro.sim.engine`) and once against a frozen copy of the
pre-optimization core (:mod:`benchmarks.perf.legacy_core`).  The
speedup ratio between the two is what CI gates on -- ratios are
portable across machines in a way absolute events/sec numbers are
not.

Run it with::

    python -m benchmarks.perf --output BENCH_core.json
    python -m benchmarks.perf --check BENCH_core.json   # CI regression gate
"""
