"""CLI for the core perf suite: measure, write and check BENCH_core.json.

Measure and write (committed at the repo root, tracked PR-over-PR)::

    python -m benchmarks.perf --output BENCH_core.json

CI regression gate (re-measures and compares speedup ratios)::

    python -m benchmarks.perf --check BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Any, Dict

from benchmarks.perf.core_bench import (
    batched_drain_body,
    cancel_churn_body,
    drain_body,
    periodic_body,
    schedule_body,
    time_body,
)
from benchmarks.perf.legacy_core import LegacySimulator

#: Microbench sizes (events) for full and --quick runs.
SIZES = {"schedule": 300_000, "drain": 300_000, "periodic": 200_000,
         "cancel_churn": 192_000, "batched_drain": 300_000}
QUICK_SIZES = {"schedule": 60_000, "drain": 60_000, "periodic": 40_000,
               "cancel_churn": 38_400, "batched_drain": 60_000}

#: A gated speedup may regress at most this factor vs the committed
#: number before CI fails (the issue's ">20% regression" gate).
REGRESSION_TOLERANCE = 0.8

#: Microbench rows whose speedup ratio is regression-gated by --check.
GATED_ROWS = ("drain", "periodic", "cancel_churn", "batched_drain")

_BODIES = {
    "schedule": schedule_body,
    "drain": drain_body,
    "periodic": periodic_body,
    "cancel_churn": cancel_churn_body,
    "batched_drain": batched_drain_body,
}


def _make_current():
    from repro.sim.engine import Simulator

    return Simulator(seed=1)


def _make_legacy():
    return LegacySimulator()


def run_microbenches(sizes: Dict[str, int],
                     repeats: int = 3) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for name, body in _BODIES.items():
        n = sizes[name]
        legacy_s, legacy_events = time_body(_make_legacy, body, n, repeats)
        core_s, core_events = time_body(_make_current, body, n, repeats)
        out[name] = {
            "events": core_events,
            "legacy_wall_s": round(legacy_s, 6),
            "core_wall_s": round(core_s, 6),
            "legacy_events_per_sec": round(legacy_events / legacy_s),
            "core_events_per_sec": round(core_events / core_s),
            "speedup": round((legacy_s / legacy_events)
                             / (core_s / core_events), 3),
        }
    return out


def run_figure_benches(samples: int = 10_000,
                       iterations: int = 10) -> Dict[str, Any]:
    """End-to-end wall-clock of one latency and one determinism figure."""
    from repro.experiments.scenario import run_named

    out: Dict[str, Any] = {}
    for name, kwargs in (("fig6", {"samples": samples}),
                         ("fig2", {"iterations": iterations})):
        start = time.perf_counter()
        result = run_named(name, **kwargs)
        elapsed = time.perf_counter() - start
        out[name] = {
            "params": kwargs,
            "wall_s": round(elapsed, 3),
            "recorded_samples": result.recorder.count,
        }
    return out


def measure(quick: bool = False, repeats: int = 3,
            skip_figures: bool = False) -> Dict[str, Any]:
    sizes = QUICK_SIZES if quick else SIZES
    data: Dict[str, Any] = {
        "schema": 1,
        "python": platform.python_version(),
        "quick": quick,
        "micro": run_microbenches(sizes, repeats=repeats),
    }
    if not skip_figures:
        data["figures"] = run_figure_benches()
    return data


def report(data: Dict[str, Any]) -> str:
    lines = ["core perf suite (best-of-N wall clock)", ""]
    for name, row in data["micro"].items():
        lines.append(
            f"  {name:<13s} legacy {row['legacy_events_per_sec']:>10,}/s   "
            f"core {row['core_events_per_sec']:>10,}/s   "
            f"speedup {row['speedup']:.2f}x")
    for name, row in data.get("figures", {}).items():
        lines.append(f"  {name:<13s} {row['wall_s']:.2f}s wall "
                     f"({row['params']})")
    return "\n".join(lines)


def check(path: str, quick: bool = True) -> int:
    """Re-measure and fail if any gated speedup regressed >20%."""
    with open(path, "r", encoding="utf-8") as fh:
        committed = json.load(fh)
    fresh = measure(quick=quick, skip_figures=True)
    print(report(fresh))
    print()
    failed = []
    for name in GATED_ROWS:
        row = committed["micro"].get(name)
        if row is None:
            print(f"{name}: no committed baseline row, skipping gate")
            continue
        committed_speedup = row["speedup"]
        fresh_speedup = fresh["micro"][name]["speedup"]
        floor = committed_speedup * REGRESSION_TOLERANCE
        verdict = "ok" if fresh_speedup >= floor else "FAIL"
        print(f"{name}: committed {committed_speedup:.2f}x, "
              f"measured {fresh_speedup:.2f}x, floor {floor:.2f}x "
              f"[{verdict}]")
        if fresh_speedup < floor:
            failed.append(name)
    if failed:
        print(f"\nFAIL: {', '.join(failed)} regressed more than 20% "
              f"against the committed baseline")
        return 1
    print("\nOK: all gated rows within the regression budget")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m benchmarks.perf")
    parser.add_argument("--output", default="",
                        help="write BENCH_core.json here")
    parser.add_argument("--check", default="",
                        help="regression-gate against this committed file")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes (CI-friendly)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--skip-figures", action="store_true",
                        help="microbenchmarks only")
    args = parser.parse_args(argv)

    if args.check:
        return check(args.check, quick=True)

    data = measure(quick=args.quick, repeats=args.repeats,
                   skip_figures=args.skip_figures)
    print(report(data))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"(wrote {args.output})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
