"""simserve benchmark: HTTP campaign service vs the direct runner.

Times one campaign three ways:

* **direct** -- :func:`~repro.experiments.campaign.run_campaign` in
  process, no service (the pre-simserve baseline);
* **cold**   -- submitted over HTTP to a fresh server on an empty
  store: full queue -> scheduler -> worker-pool -> fold -> artifact
  round trip;
* **warm**   -- re-submitted over HTTP to a *restarted* server on the
  now-populated store (job journal cleared so nothing is remembered
  at the job level): every cell is a content-key hit and the worker
  pool must never be created.

Byte-identity is part of the measurement, not a separate test: the
cold HTTP artifact, the warm HTTP artifact, and the direct CLI export
must all be the same bytes, or the benchmark fails.

Measure and write (committed at the repo root, tracked PR-over-PR)::

    PYTHONPATH=src python -m benchmarks.service_bench \
        --output BENCH_service.json

CI gate (quick sizes; asserts 100% warm hits, no warm workers,
>=MIN_WARM_SPEEDUP, byte-identity)::

    PYTHONPATH=src python -m benchmarks.service_bench --check
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
from typing import Any, Dict

from repro.experiments.campaign import run_campaign
from repro.experiments.export import campaign_to_dict, to_json
from repro.service.client import ServiceClient
from repro.service.http import ServerThread

SEEDS = 16
SAMPLES = 300
QUICK_SAMPLES = 120
WORKERS = 4

#: --check gates (the CI service-smoke job fails on any).
MIN_HIT_RATE = 1.0
MIN_WARM_SPEEDUP = 5.0


def _job(seeds: int, samples: int) -> Dict[str, Any]:
    return {"kind": "campaign", "scenarios": "fig7",
            "seeds": f"1..{seeds}", "samples": samples}


def _submit_and_wait(address: str, job: Dict[str, Any]
                     ) -> Dict[str, Any]:
    client = ServiceClient(address)
    start = time.perf_counter()
    job_id = client.submit(job)["id"]
    final = client.wait(job_id, poll_s=10.0)
    artifact = client.artifact(job_id)
    elapsed = time.perf_counter() - start
    if final["state"] != "done":
        raise RuntimeError(f"job failed: {final.get('error', '?')}")
    return {"elapsed": elapsed, "status": final, "artifact": artifact,
            "health": client.health()}


def measure(seeds: int = SEEDS, samples: int = SAMPLES,
            workers: int = WORKERS) -> Dict[str, Any]:
    job = _job(seeds, samples)
    root = tempfile.mkdtemp(prefix="service-bench-")
    store = f"{root}/store"
    try:
        start = time.perf_counter()
        direct = run_campaign(("fig7",),
                              seeds=tuple(range(1, seeds + 1)),
                              samples=samples)
        direct_s = time.perf_counter() - start
        direct_bytes = (to_json(campaign_to_dict(direct))
                        + "\n").encode("utf-8")

        with ServerThread(store, workers=workers) as address:
            cold = _submit_and_wait(address, job)

        # Restart with an empty journal: the warm leg must rebuild
        # the artifact purely from store hits, pool never created.
        shutil.rmtree(f"{store}/service/jobs")
        with ServerThread(store, workers=workers) as address:
            warm = _submit_and_wait(address, job)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    cells = cold["status"]["cells_total"]
    hit_rate = (warm["status"]["cache_hits"] / cells) if cells else 0.0
    return {
        "schema": 1,
        "python": platform.python_version(),
        "campaign": {"scenario": "fig7", "jobs": cells,
                     "samples": samples, "workers": workers},
        "byte_identical": (cold["artifact"] == warm["artifact"]
                           == direct_bytes),
        "rows": {
            "direct": {"wall_s": round(direct_s, 4)},
            "cold_http": {
                "wall_s": round(cold["elapsed"], 4),
                "cells_computed":
                    cold["health"]["cells_computed"],
                "overhead_vs_direct": round(
                    cold["elapsed"] / direct_s, 2),
            },
            "warm_http": {
                "wall_s": round(warm["elapsed"], 4),
                "hit_rate": round(hit_rate, 4),
                "workers_spawned":
                    warm["health"]["workers_spawned"],
                "speedup_vs_cold": round(
                    cold["elapsed"] / warm["elapsed"], 1),
            },
        },
    }


def report(data: Dict[str, Any]) -> str:
    rows = data["rows"]
    spec = data["campaign"]
    return "\n".join([
        f"service bench: {spec['jobs']}-cell campaign over HTTP "
        f"(fig7, samples={spec['samples']}, "
        f"workers={spec['workers']})",
        "",
        f"  direct     {rows['direct']['wall_s']:>8.3f}s  "
        f"(in-process runner, no service)",
        f"  cold HTTP  {rows['cold_http']['wall_s']:>8.3f}s  "
        f"({rows['cold_http']['cells_computed']} cells computed, "
        f"{rows['cold_http']['overhead_vs_direct']:.2f}x direct)",
        f"  warm HTTP  {rows['warm_http']['wall_s']:>8.3f}s  "
        f"({rows['warm_http']['hit_rate'] * 100:.0f}% hits, "
        f"workers spawned: "
        f"{rows['warm_http']['workers_spawned']}, "
        f"{rows['warm_http']['speedup_vs_cold']:.0f}x vs cold)",
        "",
        f"  artifacts byte-identical "
        f"(direct == cold HTTP == warm HTTP): "
        f"{data['byte_identical']}",
    ])


def check(data: Dict[str, Any]) -> int:
    """Gate the freshly measured numbers (CI service-smoke job)."""
    rows = data["rows"]
    failures = []
    if rows["warm_http"]["hit_rate"] < MIN_HIT_RATE:
        failures.append(
            f"warm hit rate {rows['warm_http']['hit_rate']:.2%} "
            f"< {MIN_HIT_RATE:.0%}")
    if rows["warm_http"]["workers_spawned"]:
        failures.append("warm re-submission spawned a worker pool")
    if rows["warm_http"]["speedup_vs_cold"] <= MIN_WARM_SPEEDUP:
        failures.append(
            f"warm speedup {rows['warm_http']['speedup_vs_cold']:.1f}x"
            f" <= {MIN_WARM_SPEEDUP:.0f}x")
    if not data["byte_identical"]:
        failures.append("direct/cold/warm artifacts differ")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("OK: warm hits, no-worker warm, speedup and byte-identity "
          "gates all passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.service_bench")
    parser.add_argument("--seeds", type=int, default=SEEDS,
                        help="campaign seed count (default 16)")
    parser.add_argument("--samples", type=int, default=SAMPLES)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--quick", action="store_true",
                        help="smaller samples (CI)")
    parser.add_argument("--check", action="store_true",
                        help="assert the hit/no-worker/speedup/"
                             "identity gates (implies --quick)")
    parser.add_argument("--output", default="",
                        help="write BENCH_service.json here")
    args = parser.parse_args(argv)

    samples = args.samples
    if args.quick or args.check:
        samples = min(samples, QUICK_SAMPLES)

    data = measure(seeds=args.seeds, samples=samples,
                   workers=args.workers)
    print(report(data))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.output}")
    if args.check:
        return check(data)
    return 0


if __name__ == "__main__":
    sys.exit(main())
