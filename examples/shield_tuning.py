#!/usr/bin/env python
"""Dynamic shield tuning through the /proc interface.

Demonstrates the administrator's view of shielded processors: writing
hex masks into ``/proc/shield/{procs,irqs,ltmr}`` and
``/proc/irq/N/smp_affinity`` while the system runs, watching
``/proc/interrupts`` and task placement react -- "the ability to
dynamically enable CPU shielding allows a developer to easily make
modifications to system configurations when tuning system
performance" (section 3).

Run:  python examples/shield_tuning.py
"""

from repro import build_bench, interrupt_testbed, redhawk_1_4
from repro.workloads.base import spawn, spawn_all
from repro.workloads.stress_kernel import stress_kernel_suite
from repro.sim.simtime import SEC


def show_state(bench, title):
    kernel = bench.kernel
    print(f"--- {title}")
    print("  /proc/shield/procs =",
          kernel.procfs.read("/proc/shield/procs").strip())
    print("  /proc/shield/irqs  =",
          kernel.procfs.read("/proc/shield/irqs").strip())
    print("  /proc/shield/ltmr  =",
          kernel.procfs.read("/proc/shield/ltmr").strip())
    placement = {}
    for task in kernel.iter_tasks():
        placement.setdefault(task.effective_affinity.to_proc(),
                             []).append(task.name)
    for mask, names in sorted(placement.items()):
        shown = ", ".join(sorted(names)[:5])
        more = f" (+{len(names) - 5})" if len(names) > 5 else ""
        print(f"  affinity {mask}: {shown}{more}")
    print("  cpu1 utilization: "
          f"{bench.machine.cpu(1).utilization() * 100:.1f}%")
    print()


def main():
    bench = build_bench(redhawk_1_4(), interrupt_testbed(), seed=7)
    bench.add_background_broadcast()
    bench.start_devices()
    spawn_all(bench.kernel, stress_kernel_suite(bench.kernel))

    bench.run_for(SEC)
    show_state(bench, "t=1s: no shielding, load everywhere")

    # Shield CPU 1 from processes only.
    bench.kernel.procfs.write("/proc/shield/procs", "2")
    bench.run_for(SEC)
    show_state(bench, "t=2s: /proc/shield/procs <- 2 (process shield)")

    # Add interrupt and local-timer shielding.
    bench.kernel.procfs.write("/proc/shield/irqs", "2")
    bench.kernel.procfs.write("/proc/shield/ltmr", "2")
    bench.run_for(SEC)
    show_state(bench, "t=3s: full shield on CPU 1")

    print(bench.kernel.procfs.read("/proc/interrupts"))
    print("note: per-IRQ CPU1 delivery counts stop growing once the "
          "interrupt shield is up.\n")

    # Tear the shield down again -- dynamically, this time through the
    # shield(1) command the way a RedHawk administrator would.
    from repro.core.shield_cmd import ShieldCommand

    shield_cmd = ShieldCommand(bench.kernel)
    print("$ shield -r")
    print(shield_cmd.run(["-r"]))
    bench.run_for(SEC)
    show_state(bench, "t=4s: shield removed, load returns to CPU 1")
    print("$ shield -c")
    print(shield_cmd.run(["-c"]))


if __name__ == "__main__":
    main()
