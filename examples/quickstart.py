#!/usr/bin/env python
"""Quickstart: guarantee sub-millisecond response with a shielded CPU.

Builds a dual-CPU machine running the RedHawk 1.4 kernel model, puts a
heavy mixed load on it, then compares the interrupt response of a
periodic real-time task before and after shielding CPU 1 through the
``/proc/shield`` interface -- the paper's core demonstration, end to
end, in one script.

Run:  python examples/quickstart.py
"""

from repro import CpuMask, build_bench, redhawk_1_4, interrupt_testbed
from repro.metrics.report import latency_summary
from repro.workloads.base import spawn, spawn_all
from repro.workloads.rcim_response import RcimResponseTest
from repro.workloads.stress_kernel import stress_kernel_suite

SAMPLES = 4_000
MEASURE_CPU = 1


def measure(shielded: bool):
    bench = build_bench(redhawk_1_4(), interrupt_testbed(), seed=42)
    bench.start_devices()
    bench.rcim.enable_timer()

    # Background load: the full Red Hat stress-kernel suite.
    spawn_all(bench.kernel, stress_kernel_suite(bench.kernel))

    # The real-time task: SCHED_FIFO, mlockall, bound to CPU 1,
    # blocking on the RCIM's periodic timer interrupt.
    test = RcimResponseTest(bench.rcim, samples=SAMPLES,
                            affinity=CpuMask.single(MEASURE_CPU))
    spawn(bench.kernel, test.spec())

    if shielded:
        # Exactly what an administrator does on RedHawk:
        bench.kernel.procfs.write("/proc/shield/procs", "2")
        bench.kernel.procfs.write("/proc/shield/irqs", "2")
        bench.kernel.procfs.write("/proc/shield/ltmr", "2")
        bench.kernel.procfs.write(
            f"/proc/irq/{bench.rcim.irq}/smp_affinity", "2")

    bench.run_until_done(test, limit_ns=test.estimated_sim_ns())
    return test.recorder


def main():
    print("Simulating... (two runs of %d samples each)\n" % SAMPLES)
    unshielded = measure(shielded=False)
    shielded = measure(shielded=True)

    print(latency_summary(unshielded, "Unshielded CPU 1 (stress load)"))
    print("  (note: the RCIM count register wraps at the 1 ms period, so")
    print("   unshielded worst cases beyond 1 ms alias into 0..1 ms)")
    print()
    print(latency_summary(shielded, "Shielded CPU 1 (same load)"))
    print()
    factor = unshielded.max() / max(1, shielded.max())
    print(f"Worst-case improvement from shielding: {factor:.1f}x "
          f"({unshielded.max() / 1e3:.0f}us -> {shielded.max() / 1e3:.0f}us)")
    assert shielded.max() < 1_000_000, "sub-millisecond guarantee violated!"
    print("Sub-millisecond guarantee: HOLDS")


if __name__ == "__main__":
    main()
