#!/usr/bin/env python
"""Writing your own real-time application against the library API.

Models a 400 Hz control loop (the class of application the paper's
introduction motivates: "tasks that must be run at very high
frequencies ... tasks that require deterministic execution in order to
meet their deadlines"): an external sensor interrupts through the
RCIM, the control task computes a response and must finish within a
2.5 ms deadline.  Deadline misses are counted with and without a
shielded CPU.

Run:  python examples/custom_rt_application.py
"""

from repro import CpuMask, SchedPolicy, UserApi, build_bench, \
    interrupt_testbed, redhawk_1_4
from repro.sim.simtime import USEC
from repro.workloads.base import WorkloadSpec, spawn, spawn_all
from repro.workloads.stress_kernel import stress_kernel_suite

CYCLES = 2_000
PERIOD_NS = 2_500 * USEC          # 400 Hz
COMPUTE_NS = 900 * USEC           # control-law computation
DEADLINE_NS = 1_400 * USEC        # response must be on the bus in 1.4 ms


def control_loop(bench, stats):
    """The real-time application, written against UserApi."""

    def body(api: UserApi):
        yield from api.mlockall()
        yield from api.sched_setscheduler(SchedPolicy.FIFO, 95)
        yield from api.sched_setaffinity(CpuMask.single(1))
        fd = api.open("/dev/rcim")
        for _cycle in range(CYCLES):
            yield from api.ioctl(fd, "RCIM_WAIT_INTERRUPT")
            start_latency = yield api.call(bench.rcim.read_count)
            # Control law: fixed amount of locked-down computation.
            yield from api.compute(COMPUTE_NS, label="control-law")
            done = yield api.call(bench.rcim.read_count)
            if done < start_latency:
                done += bench.rcim.period_ns  # wrapped into next cycle
            stats["completions"].append(done)
            if done > DEADLINE_NS:
                stats["misses"] += 1
        stats["finished"] = True

    return WorkloadSpec(name="control-loop", body=body,
                        policy=SchedPolicy.FIFO, rt_prio=95,
                        affinity=CpuMask.single(1))


def run(shielded: bool):
    bench = build_bench(redhawk_1_4(), interrupt_testbed(), seed=3,
                        rcim_period_ns=PERIOD_NS)
    bench.start_devices()
    bench.rcim.enable_timer()
    spawn_all(bench.kernel, stress_kernel_suite(bench.kernel))
    stats = {"misses": 0, "completions": [], "finished": False}
    spawn(bench.kernel, control_loop(bench, stats))
    if shielded:
        bench.shield_cpu(1)
        bench.set_irq_affinity(bench.rcim.irq, 1)
    limit = int(CYCLES * PERIOD_NS * 1.5) + 10**9
    deadline = bench.sim.now + limit
    while not stats["finished"] and bench.sim.now < deadline:
        bench.run_for(250_000_000)
    return stats


def main():
    print(f"400 Hz control loop, {CYCLES} cycles, "
          f"{COMPUTE_NS / 1e6:.1f} ms computation, "
          f"{DEADLINE_NS / 1e6:.1f} ms deadline, stress-kernel load\n")
    for shielded in (False, True):
        stats = run(shielded)
        comps = stats["completions"]
        worst = max(comps) / 1e6 if comps else float("nan")
        label = "shielded" if shielded else "unshielded"
        print(f"{label:>11}: {len(comps)} cycles, "
              f"worst completion {worst:.3f} ms, "
              f"deadline misses: {stats['misses']}")
    print("\nA hard 400 Hz deadline holds on the shielded CPU and is "
          "blown repeatedly without it.")


if __name__ == "__main__":
    main()
