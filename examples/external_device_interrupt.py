#!/usr/bin/env python
"""External device interrupts through the RCIM's edge-triggered inputs.

The RCIM "provides the ability to connect external edge-triggered
device interrupts to the system" -- the use case being a lab
instrument or bus adapter whose events must be serviced within a hard
bound.  This example connects a simulated instrument emitting aperiodic
edges to RCIM input line 0 and measures service latency on a shielded
CPU under full stress-kernel load.

Run:  python examples/external_device_interrupt.py
"""

from repro import CpuMask, SchedPolicy, UserApi, build_bench, \
    interrupt_testbed, redhawk_1_4
from repro.metrics.recorder import LatencyRecorder
from repro.metrics.report import latency_summary
from repro.sim.simtime import MSEC
from repro.workloads.base import WorkloadSpec, spawn, spawn_all
from repro.workloads.stress_kernel import stress_kernel_suite

EDGES = 3_000


def main():
    bench = build_bench(redhawk_1_4(), interrupt_testbed(), seed=13)
    bench.start_devices()
    spawn_all(bench.kernel, stress_kernel_suite(bench.kernel))

    rcim = bench.rcim
    recorder = LatencyRecorder("edge-service")
    state = {"served": 0}

    def service_body(api: UserApi):
        yield from api.mlockall()
        yield from api.sched_setscheduler(SchedPolicy.FIFO, 92)
        yield from api.sched_setaffinity(CpuMask.single(1))
        fd = api.open("/dev/rcim")
        while state["served"] < EDGES:
            yield from api.ioctl(fd, "RCIM_WAIT_EDGE:0")
            t = yield api.tsc()
            recorder.record_latency(t - rcim.last_edge_ns[0])
            state["served"] += 1
            # Service the instrument: read its FIFO (user-mode work).
            yield from api.compute(15_000, label="instrument:read")

    spawn(bench.kernel, WorkloadSpec("edge-service", service_body,
                                     policy=SchedPolicy.FIFO, rt_prio=92,
                                     affinity=CpuMask.single(1)))

    # Shield CPU 1 and steer the RCIM interrupt to it.
    bench.shield_cpu(1)
    bench.set_irq_affinity(rcim.irq, 1)

    # The instrument: aperiodic edges, mean rate 700 Hz.
    rng = bench.sim.rng.stream("instrument")

    def emit():
        if state["served"] >= EDGES:
            return
        rcim.trigger_external(0)
        bench.sim.after(max(1, int(rng.exponential(1.4 * MSEC))), emit)

    bench.sim.after(1 * MSEC, emit)

    while state["served"] < EDGES:
        bench.run_for(500 * MSEC)

    print(latency_summary(
        recorder, f"External edge service latency ({EDGES} edges, "
                  f"stress-kernel load, shielded CPU 1)"))
    assert recorder.max() < 100_000
    print("\nAperiodic external interrupts get the same tens-of-"
          "microseconds guarantee as the periodic timer (Figure 7).")


if __name__ == "__main__":
    main()
