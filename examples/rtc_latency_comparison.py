#!/usr/bin/env python
"""Reproduce the realfeel experiment: Figures 5 and 6, side by side.

Runs Andrew Morton's realfeel benchmark (as modelled in
:mod:`repro.workloads.realfeel`) under the stress-kernel load on the
stock 2.4.21 kernel and on RedHawk 1.4 with a shielded CPU, and prints
the same cumulative bucket tables the paper shows under its figures.
The two configurations are the registered scenarios ``fig5`` and
``fig6``.

Run:  python examples/rtc_latency_comparison.py  [samples]
"""

import sys

from repro.experiments.scenario import run_named
from repro.metrics.histogram import LogHistogram


def main():
    samples = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000

    print(f"realfeel @2048 Hz, {samples} samples, stress-kernel load\n")

    fig5 = run_named("fig5", samples=samples)
    print(fig5.report("buckets"))
    print()
    hist = LogHistogram(10_000.0, 100_000_000.0)
    hist.add_many([max(s, 10_001) for s in fig5.recorder.samples])
    print(hist.render_ascii(unit="ms", scale=1e6))
    print()

    fig6 = run_named("fig6", samples=samples)
    print(fig6.report("fine-buckets"))
    print()

    ratio = fig5.max_ns() / max(1, fig6.max_ns())
    print(f"worst case: {fig5.max_ns() / 1e6:.2f} ms (stock) vs "
          f"{fig6.max_ns() / 1e6:.3f} ms (shielded RedHawk)  "
          f"[{ratio:.0f}x]")
    print("paper:      92.3 ms vs 0.565 ms  [163x]")


if __name__ == "__main__":
    main()
