#!/usr/bin/env python
"""Reproduce the execution-determinism experiment: Figures 1-4.

Times the sine-wave computation loop (section 5.1) under the scp +
disknoise load on all four configurations and prints the paper-style
legends plus a variance histogram per run.  Each figure is a
registered scenario (``fig1`` .. ``fig4``) run through the declarative
scenario layer.

Run:  python examples/determinism_comparison.py  [iterations]
"""

import sys

from repro.experiments.scenario import run_named
from repro.metrics.histogram import Histogram

PAPER = {
    "fig1": 26.17,
    "fig2": 1.87,
    "fig3": 14.82,
    "fig4": 13.15,
}


def render_variances(result, width=56):
    hist = Histogram(0.0, max(1.0, max(result.recorder.variances_ms()) * 1.1),
                     12)
    hist.add_many(result.recorder.variances_ms())
    lines = []
    peak = max((b.count for b in hist.bins()), default=1)
    for b in hist.bins():
        if b.count:
            bar = "#" * max(1, int(width * b.count / peak))
            lines.append(f"  {b.lo:8.1f}-{b.hi:<8.1f}ms |{bar} {b.count}")
    return "\n".join(lines)


def main():
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 10

    for name, paper_pct in PAPER.items():
        result = run_named(name, iterations=iterations).to_determinism()
        print(result.report())
        print(render_variances(result))
        print(f"  paper jitter: {paper_pct}%   "
              f"measured: {result.jitter_percent:.2f}%")
        print()


if __name__ == "__main__":
    main()
