#!/usr/bin/env python
"""Frequency-based scheduling on a shielded processor.

A classic hardware-in-the-loop simulation structure (the application
domain RedHawk/FBS targets): three processes at harmonic rates driven
by one RCIM timing source --

* ``servo``   at 400 Hz (every cycle)      -- tight control law
* ``dynamics`` at 100 Hz (every 4th cycle) -- vehicle model update
* ``logger``  at 20 Hz (every 20th cycle)  -- telemetry

All three run FIFO on shielded CPU 1 while stress-kernel hammers the
rest of the machine.  The FBS performance monitor reports per-process
cycle times and overruns; the frame structure only holds because the
shield keeps the CPU deterministic.

Run:  python examples/frequency_based_scheduling.py
"""

from repro import CpuMask, SchedPolicy, UserApi, build_bench, \
    interrupt_testbed, redhawk_1_4
from repro.fbs import FrequencyBasedScheduler
from repro.sim.simtime import MSEC, SEC, USEC
from repro.workloads.base import WorkloadSpec, spawn, spawn_all
from repro.workloads.stress_kernel import stress_kernel_suite

CYCLE_NS = 2_500 * USEC          # 400 Hz minor cycle
FRAME_CYCLES = 20                # 50 ms major frame
RUN_SECONDS = 4


def fbs_process(kernel, fbs, name, period, work_ns, jitter_log):
    proc = fbs.register(name, period=period)
    api = UserApi(kernel)

    def body(api_unused):
        yield from api.mlockall()
        yield from api.sched_setscheduler(SchedPolicy.FIFO, 80)
        yield from api.sched_setaffinity(CpuMask.single(1))
        expected = None
        while True:
            yield from fbs.wait(api, proc)
            now = kernel.sim.now
            if expected is not None:
                jitter_log.append(abs(now - expected))
            expected = now + period * CYCLE_NS
            yield from api.compute(work_ns, label=f"{name}:frame")

    return WorkloadSpec(name=name, body=body, policy=SchedPolicy.FIFO,
                        rt_prio=80, affinity=CpuMask.single(1))


def main():
    bench = build_bench(redhawk_1_4(), interrupt_testbed(), seed=23,
                        rcim_period_ns=CYCLE_NS)
    bench.start_devices()
    spawn_all(bench.kernel, stress_kernel_suite(bench.kernel))

    fbs = FrequencyBasedScheduler(bench.kernel, cycle_ns=CYCLE_NS,
                                  cycles_per_frame=FRAME_CYCLES,
                                  rcim=bench.rcim)
    jitter = {"servo": [], "dynamics": [], "logger": []}
    spawn(bench.kernel, fbs_process(bench.kernel, fbs, "servo", 1,
                                    600 * USEC, jitter["servo"]))
    spawn(bench.kernel, fbs_process(bench.kernel, fbs, "dynamics", 4,
                                    900 * USEC, jitter["dynamics"]))
    spawn(bench.kernel, fbs_process(bench.kernel, fbs, "logger", 20,
                                    400 * USEC, jitter["logger"]))

    # Shield CPU 1 and steer the timing source at it.
    bench.shield_cpu(1)
    bench.set_irq_affinity(bench.rcim.irq, 1)
    bench.run_for(2 * MSEC)  # let processes park in fbs_wait
    fbs.start()
    bench.run_for(RUN_SECONDS * SEC)

    print(fbs.report())
    print()
    for name, values in jitter.items():
        if values:
            print(f"{name:>9} wakeup jitter: mean "
                  f"{sum(values) / len(values) / 1e3:6.1f} us   "
                  f"max {max(values) / 1e3:6.1f} us")
    total_overruns = sum(
        fbs.monitor.stats_for(n).overruns for n in jitter)
    print(f"\ntotal frame overruns: {total_overruns}")


if __name__ == "__main__":
    main()
