#!/usr/bin/env python
"""Diagnosing latency: where does the 2.4 kernel's tail come from?

Attaches a :class:`~repro.analysis.WakeLatencyProbe` to realfeel on
the stock kernel under stress-kernel load and prints the attribution
of every slow wakeup -- showing directly that the tail is caused by
tasks stuck inside non-preemptible kernel sections (and which
workloads those are), the paper's section 6 diagnosis.

Run:  python examples/latency_diagnosis.py
"""

from repro.analysis import WakeLatencyProbe
from repro.configs.kernels import redhawk_1_4, vanilla_2_4_21
from repro.experiments.harness import build_bench
from repro.hw.machine import interrupt_testbed
from repro.workloads.base import spawn, spawn_all
from repro.workloads.realfeel import Realfeel
from repro.workloads.stress_kernel import stress_kernel_suite

SAMPLES = 6_000


def diagnose(config_factory, title):
    bench = build_bench(config_factory(), interrupt_testbed(), seed=17)
    bench.add_background_broadcast()
    bench.start_devices()
    bench.rtc.enable_periodic()
    spawn_all(bench.kernel, stress_kernel_suite(bench.kernel))
    test = Realfeel(bench.rtc, samples=SAMPLES)
    spawn(bench.kernel, test.spec())
    probe = WakeLatencyProbe(bench.kernel, "realfeel").install()
    bench.run_until_done(test, limit_ns=test.estimated_sim_ns())
    print(f"=== {title}")
    print(probe.report(threshold_ns=100_000))
    print()


def main():
    diagnose(vanilla_2_4_21, "kernel.org 2.4.21 (no preemption)")
    diagnose(redhawk_1_4, "RedHawk 1.4 (preemption + low-latency)")
    print("Reading the attributions: on stock 2.4 the slow wakeups "
          "coincide with\nstress tasks executing kernel-mode sections "
          "(fs:blockmap, nfsd:fs, ...) --\nmulti-tens-of-ms worst "
          "case.  On RedHawk those sections are preemptible;\nwhat "
          "remains is bounded bottom-half processing (the "
          "'bh-backlog' states,\n<= the softirq budget) -- which is "
          "exactly why the paper adds CPU shielding\nfor the final "
          "step to a guaranteed sub-millisecond response.")


if __name__ == "__main__":
    main()
