#!/usr/bin/env python
"""Run a multi-seed campaign over registered scenarios, in parallel.

The scenario registry holds every figure and ablation as declarative
data; a :class:`~repro.experiments.campaign.CampaignSpec` expands a
scenario x seed matrix into independent jobs and the runner executes
them across worker processes.  Merged results are byte-identical
whatever the worker count, so a sweep is just::

    python examples/campaign_sweep.py [workers [samples]]

The same sweep is available from the command line::

    python -m repro.experiments campaign \\
        --scenarios fig5,fig6,fig7 --seeds 1..4 --workers 4

Seeds only perturb the background load and device timing -- the paper's
qualitative claims (sub-millisecond shielded response, unbounded stock
tails) must hold for every seed, which is exactly what sweeping shows.
"""

import sys

from repro.experiments.campaign import CampaignRunner, CampaignSpec


def main():
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    samples = int(sys.argv[2]) if len(sys.argv) > 2 else 2_000

    campaign = CampaignSpec(
        scenarios=("fig5", "fig6", "fig7"),
        seeds=(1, 2, 3, 4),
        samples=samples,
    )
    jobs = campaign.expand()
    print(f"{len(jobs)} jobs ({len(campaign.scenarios)} scenarios x "
          f"{len(campaign.seeds)} seeds), {workers} workers\n")

    result = CampaignRunner(campaign, workers=workers).run()
    print(result.summary())
    print()

    # The merged recorders aggregate every seed's samples per scenario:
    # worst case over the whole sweep, not one lucky run.
    fig5, fig6 = result.merged["fig5"], result.merged["fig6"]
    print(f"stock worst case over {len(campaign.seeds)} seeds: "
          f"{fig5.max() / 1e6:.2f} ms")
    print(f"shielded worst case over {len(campaign.seeds)} seeds: "
          f"{fig6.max() / 1e6:.3f} ms")


if __name__ == "__main__":
    main()
