#!/usr/bin/env python
"""Regenerate the committed semantic-golden trace recordings.

The baselines under ``goldens/recordings/`` are RTRACE1 files checked
by the ``trace-diff`` CI job (and ``tests/observe/
test_semantic_goldens.py``): each is re-recorded under the current
code tree and *diffed*, so an intentional behaviour change fails with
a mechanism-level report instead of a CRC mismatch.  After such an
intentional change, re-baseline with::

    PYTHONPATH=src python tools/record_goldens.py [name ...]

and commit the rewritten files together with the change that moved
them.  This is deliberately the same code path as
``python -m repro.experiments diff golden --record``.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))


def main(argv=None) -> int:
    from repro.observe.diff import (GOLDEN_SPECS, golden_dir,
                                    golden_names, golden_path,
                                    record_golden)

    names = list(sys.argv[1:] if argv is None else argv)
    unknown = [n for n in names if n not in GOLDEN_SPECS]
    if unknown:
        print(f"unknown golden(s): {', '.join(unknown)} "
              f"(have: {', '.join(golden_names())})", file=sys.stderr)
        return 2
    names = names or golden_names()
    os.makedirs(golden_dir(), exist_ok=True)
    for name in names:
        path = record_golden(name).save(golden_path(name))
        print(f"recorded {name} -> {path} "
              f"({os.path.getsize(path)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
