#!/usr/bin/env python
"""Build the optional compiled simulation backend.

Copies the pure-Python batched backend
(``src/repro/sim/backends/batched.py``) to ``_batched_c.py`` in the
same package and compiles it in place with Cython.  The compiled
module is byte-for-byte the same *algorithm* -- Cython merely removes
interpreter dispatch from the fused loop -- so event order (and hence
every golden output) is identical by construction; the loader
(``repro.sim.backends.compiled``) exposes it as backend name
``compiled`` and falls back to the pure-Python batched backend when
the extension has not been built.

The build is strictly optional.  Without a Cython toolchain this
script prints a skip message and exits 0, so it is safe to run
unconditionally in CI and in dev setups.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
PKG = ROOT / "src" / "repro" / "sim" / "backends"
SRC = PKG / "batched.py"
DST = PKG / "_batched_c.py"

_HEADER = (
    "# cython: language_level=3\n"
    "# AUTO-GENERATED from batched.py by tools/build_backend.py; "
    "do not edit.\n"
)


def main() -> int:
    try:
        import Cython  # noqa: F401
    except ImportError:
        print("build_backend: Cython is not installed; skipping the "
              "compiled backend build.  The pure-Python batched backend "
              "is the supported fallback (REPRO_SIM_BACKEND=compiled "
              "will warn and use it).")
        return 0

    DST.write_text(_HEADER + SRC.read_text(encoding="utf-8"),
                   encoding="utf-8")
    print(f"build_backend: generated {DST.relative_to(ROOT)}")
    proc = subprocess.run(
        [sys.executable, "-m", "Cython.Build.Cythonize", "-3", "-i",
         str(DST)],
        cwd=str(ROOT))
    if proc.returncode != 0:
        print("build_backend: cythonize failed; removing the generated "
              "source so the loader falls back cleanly")
        DST.unlink(missing_ok=True)
        return proc.returncode

    # Smoke-check: the extension must import and fire events in the
    # same order as the reference loop.
    check = subprocess.run(
        [sys.executable, "-c",
         "import sys; sys.path.insert(0, 'src')\n"
         "from repro.sim.backends import resolve\n"
         "from repro.sim.engine import Simulator\n"
         "backend = resolve('compiled')\n"
         "assert backend.name == 'compiled', backend.name\n"
         "log = []\n"
         "sim = Simulator(seed=1, backend=backend)\n"
         "sim.periodic(100, lambda: log.append(('p', sim.now)))\n"
         "sim.at(100, lambda: log.append(('a', sim.now)))\n"
         "sim.run_until(300)\n"
         "assert log == [('p', 100), ('a', 100), ('p', 200), "
         "('p', 300)], log\n"
         "print('build_backend: compiled backend OK:', log)\n"],
        cwd=str(ROOT))
    if check.returncode != 0:
        print("build_backend: compiled backend failed its smoke check")
        return check.returncode
    return 0


if __name__ == "__main__":
    sys.exit(main())
