"""The batched (default) simulation backend: fused event-run dispatch.

Instead of merging the heap head against the wheel head once *per
event*, each advance works in windows:

1. **Stage** -- every wheel entry due inside the window is extracted
   (:meth:`TimerWheel.extract_upto`) into ``sim._active_run``, a flat
   sorted ``(key, handle)`` list.  The wheel's bitmap scans and
   cascades are paid once per window, not once per fire.
2. **Fused one-shot run** -- heap keys below the staged head are popped
   and dispatched in a tight loop with no wheel comparison at all.
   The only event that can invalidate the boundary is a callback
   arming a *new* periodic; that is detected by comparing the wheel's
   monotone insertion generation (``wheel._ins``) around the callback
   -- two int reads -- after which the window is re-staged.  One-shots
   scheduled by callbacks need no special casing: they enter the heap
   and the loop re-reads ``heap[0]`` every iteration.
3. **Staged dispatch** -- the run head fires and re-arms by ``insort``
   into the run (still inside the window) or back onto the wheel
   (beyond it).  Cancelled staged entries are skipped at dispatch;
   they remain visible to the engine's introspection until then.

Firing order stays strict packed-key order -- the staging is a
reordering of *bookkeeping*, never of callbacks -- which is what keeps
the 26-scenario golden sweep byte-identical under this backend.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import TYPE_CHECKING

from repro.sim.backends.base import unstage
from repro.sim.events import SEQ_BITS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

_heappop = heapq.heappop

#: A key bound larger than any schedulable one.  Packed keys are
#: unbounded Python ints (``when << SEQ_BITS``), so the only safe
#: universal bound is +inf -- int/float comparisons are exact here.
_INF_KEY = float("inf")


def _advance(sim: "Simulator", limit: int) -> None:
    """Fire every event with packed key <= *limit* in key order."""
    heap = sim._heap
    handles = sim._handles
    wheel = sim._wheel
    run = sim._active_run
    if run and run[-1][0] > limit:
        # A previous advance exited exceptionally with entries staged
        # beyond this window; refile them so the boundary stays honest.
        unstage(sim)
    pop = _heappop
    get = handles.pop
    fired = 0
    try:
        while True:
            # Stage the window: pull due wheel entries into the run.
            if wheel._count:
                w = wheel._min_cache
                if w is None:
                    w = wheel.peek()
                if w.key <= limit:
                    wheel.extract_upto(limit, run)
            if run:
                boundary = run[0][0]
            else:
                boundary = limit
            # Fused one-shot run up to the staged head.
            restage = False
            while heap:
                key = heap[0]
                if key > boundary:
                    break
                pop(heap)
                cb = get(key, None)
                if cb is None:
                    sim._dead -= 1
                    continue
                sim.now = key >> SEQ_BITS
                fired += 1
                gen = wheel._ins
                cb()
                if wheel._ins != gen:
                    # A new periodic was armed; it may be due before
                    # the current boundary.  Re-stage the window.
                    restage = True
                    break
            if restage:
                continue
            if not run:
                break
            # Dispatch the staged head; every remaining heap key is
            # larger, so key order is preserved.
            key, handle = run[0]
            del run[0]
            if not handle._alive:
                continue  # cancelled while staged
            sim.now = key >> SEQ_BITS
            fired += 1
            handle.callback()
            if handle._alive:
                # Fresh seq *after* the callback returns -- the re-arm
                # point of the self-rescheduling idiom this replaces,
                # which is what keeps (when, seq) ties byte-identical.
                seq = sim._seq
                sim._seq = seq + 1
                handle.fires += 1
                nxt = handle.when + handle.period
                handle.when = nxt
                handle.seq = seq
                nkey = (nxt << SEQ_BITS) | seq
                handle.key = nkey
                if nkey <= limit:
                    insort(run, (nkey, handle))
                else:
                    wheel.insert(handle)
    finally:
        sim._events_fired += fired


class BatchedBackend:
    """Windowed staging + fused dispatch; the default backend."""

    name = "batched"

    def step(self, sim: "Simulator") -> bool:
        # Single-step semantics are inherently unbatched: refile any
        # staged run (left by an aborted advance) and dispatch one.
        unstage(sim)
        heap = sim._heap
        handles = sim._handles
        wheel = sim._wheel
        while True:
            w = wheel._min_cache
            if w is None and wheel._count:
                w = wheel.peek()
            if heap:
                key = heap[0]
                if w is None or key < w.key:
                    _heappop(heap)
                    cb = handles.pop(key, None)
                    if cb is None:
                        sim._dead -= 1
                        continue
                    sim.now = key >> SEQ_BITS
                    sim._events_fired += 1
                    cb()
                    return True
            if w is None:
                return False
            sim._fire_periodic(w)
            return True

    def run_until(self, sim: "Simulator", when: int) -> None:
        _advance(sim, ((when + 1) << SEQ_BITS) - 1)
        if when > sim.now:
            sim.now = when

    def run(self, sim: "Simulator") -> None:
        _advance(sim, _INF_KEY)
