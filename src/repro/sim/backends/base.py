"""The ``SimBackend`` seam: the engine's inner loop as a protocol.

:class:`~repro.sim.engine.Simulator` owns all simulation *state* (the
clock, the packed-key heap, the liveness dict, the timer wheel, the
staged batch run) while a backend owns only the dequeue/dispatch/re-arm
*loop* over that state.  Backends are therefore stateless singletons,
interchangeable mid-life, and -- because the loop never closes over
engine internals beyond documented attributes -- compilable as a unit
(see ``tools/build_backend.py``) without touching any call site.

Contract highlights every backend must honour:

* Firing order is strict packed-key order ``(when << SEQ_BITS) | seq``
  across the heap and the wheel; ties are impossible (seq is unique).
* Periodics draw their re-arm seq *after* the callback returns (the
  self-rescheduling ``after()`` idiom this replaces).
* ``sim._events_fired`` is updated even when a callback raises.
* Entries staged in ``sim._active_run`` (a sorted ``(key, handle)``
  list) are live events: backends must either dispatch them or leave
  them staged for the engine's introspection helpers to report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


@runtime_checkable
class SimBackend(Protocol):
    """Dequeue/dispatch/re-arm inner loop over a :class:`Simulator`."""

    #: Short identifier reported by ``Simulator.backend_name``.
    name: str

    def step(self, sim: "Simulator") -> bool:
        """Fire exactly one event; False if none remain."""

    def run(self, sim: "Simulator") -> None:
        """Fire events until both queues drain."""

    def run_until(self, sim: "Simulator", when: int) -> None:
        """Fire events with ``when_event <= when``; leave clock at *when*."""


def unstage(sim: "Simulator") -> None:
    """Refile staged batch-run entries back onto the wheel.

    A batched loop that exits through an exception (kernel panic,
    harness abort) may leave extracted periodics in ``sim._active_run``.
    Loop entry points call this so every backend starts from the
    canonical heap+wheel state regardless of how the previous loop
    ended or which backend ran it.
    """
    run = sim._active_run
    if run:
        wheel = sim._wheel
        for _, handle in run:
            if handle._alive:
                wheel.insert(handle)
        run.clear()
