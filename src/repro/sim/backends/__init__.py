"""Swappable simulation engine backends.

The :class:`~repro.sim.engine.Simulator` keeps all queue state; a
*backend* supplies the dequeue/dispatch/re-arm inner loop over it (see
:mod:`repro.sim.backends.base` for the contract).  Three are provided:

``batched`` (default)
    Windowed staging plus fused dispatch
    (:mod:`repro.sim.backends.batched`).
``simple``
    The historical event-at-a-time reference loop, kept as the
    batched backend's A/B oracle (:mod:`repro.sim.backends.simple`).
``compiled``
    The batched loop compiled to an extension module when built
    (``tools/build_backend.py``); falls back to pure-Python ``batched``
    with a warning otherwise (:mod:`repro.sim.backends.compiled`).

Selection: the ``backend=`` argument of ``Simulator`` wins, then the
``REPRO_SIM_BACKEND`` environment variable, then the default.  All
backends fire callbacks in identical packed-key order -- swapping them
never changes simulation output, only wall-clock.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.sim.backends.base import SimBackend, unstage
from repro.sim.backends.batched import BatchedBackend
from repro.sim.backends.simple import SimpleBackend

#: Environment switch: ``REPRO_SIM_BACKEND=simple`` (or ``batched`` /
#: ``compiled``) selects the engine inner loop for Simulators that do
#: not pass an explicit ``backend=``.
BACKEND_ENV = "REPRO_SIM_BACKEND"

_batched = BatchedBackend()
_simple = SimpleBackend()
_compiled = None


def resolve(backend: Union[None, str, SimBackend] = None) -> SimBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` consults :data:`BACKEND_ENV`, defaulting to ``batched``.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "batched"
    if not isinstance(backend, str):
        return backend
    name = backend.strip().lower()
    if name in ("batched", "python", "default"):
        return _batched
    if name == "simple":
        return _simple
    if name == "compiled":
        global _compiled
        if _compiled is None:
            from repro.sim.backends.compiled import load_compiled
            _compiled = load_compiled()
        return _compiled
    raise ValueError(
        f"unknown simulation backend {backend!r}; expected one of "
        f"'batched', 'simple', 'compiled'")


def available() -> list:
    """Names accepted by :func:`resolve` (build-independent)."""
    return ["batched", "simple", "compiled"]


__all__ = ["SimBackend", "BatchedBackend", "SimpleBackend", "BACKEND_ENV",
           "resolve", "available", "unstage"]
