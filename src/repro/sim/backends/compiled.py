"""Loader for the optional compiled simulation backend.

``tools/build_backend.py`` compiles the batched backend's dispatch
loop (``batched.py``) into an extension module
``repro.sim.backends._batched_c`` when a Cython toolchain is present.
The build is strictly optional: this loader falls back to the
pure-Python batched backend -- same loop, same byte-identical event
order -- with a one-time warning when the extension is absent, so
selecting ``REPRO_SIM_BACKEND=compiled`` is always safe.
"""

from __future__ import annotations

import warnings

from repro.sim.backends.batched import BatchedBackend


def load_compiled():
    """The compiled backend instance, or the pure-Python fallback."""
    try:
        from repro.sim.backends import _batched_c  # type: ignore
    except ImportError:
        warnings.warn(
            "compiled simulation backend is not built; falling back to "
            "the pure-Python batched backend (build it with "
            "`python tools/build_backend.py`)",
            RuntimeWarning, stacklevel=3)
        return BatchedBackend()
    backend = _batched_c.BatchedBackend()
    try:
        backend.name = "compiled"
    except (AttributeError, TypeError):  # pragma: no cover - frozen class
        pass
    return backend
