"""The reference (unbatched) simulation backend.

One event per loop iteration, merging the heap head and the wheel head
with a fresh comparison each time -- the engine's historical inner
loop, kept verbatim as (a) the oracle the batched backend is
A/B-tested against in ``tests/sim/test_backends.py`` and (b) the
simplest statement of the dispatch contract.  Select it with
``REPRO_SIM_BACKEND=simple`` or ``Simulator(backend="simple")``.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.sim.backends.base import unstage
from repro.sim.events import SEQ_BITS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

_heappop = heapq.heappop


class SimpleBackend:
    """Event-at-a-time dispatch; the batched backend's oracle."""

    name = "simple"

    def step(self, sim: "Simulator") -> bool:
        unstage(sim)
        heap = sim._heap
        handles = sim._handles
        wheel = sim._wheel
        while True:
            w = wheel._min_cache
            if w is None and wheel._count:
                w = wheel.peek()
            if heap:
                key = heap[0]
                if w is None or key < w.key:
                    _heappop(heap)
                    cb = handles.pop(key, None)
                    if cb is None:
                        sim._dead -= 1
                        continue
                    sim.now = key >> SEQ_BITS
                    sim._events_fired += 1
                    cb()
                    return True
            if w is None:
                return False
            sim._fire_periodic(w)
            return True

    def run_until(self, sim: "Simulator", when: int) -> None:
        unstage(sim)
        heap = sim._heap
        handles = sim._handles
        wheel = sim._wheel
        pop = _heappop
        get = handles.pop
        limit = ((when + 1) << SEQ_BITS) - 1  # largest key firing <= when
        fired = 0
        try:
            while True:
                w = wheel._min_cache
                if w is None and wheel._count:
                    w = wheel.peek()
                if heap:
                    key = heap[0]
                    if w is None or key < w.key:
                        if key > limit:
                            break
                        pop(heap)
                        cb = get(key, None)
                        if cb is None:
                            sim._dead -= 1
                            continue
                        sim.now = key >> SEQ_BITS
                        fired += 1
                        cb()
                        continue
                if w is None or w.key > limit:
                    break
                fired += 1
                # Inlined _fire_one_periodic (hot: every wheel tick).
                # w is the wheel minimum here, so take the fused pop.
                wheel.pop_min()
                sim.now = w.when
                w.callback()
                if w._alive:
                    seq = sim._seq
                    sim._seq = seq + 1
                    w.fires += 1
                    nxt = w.when + w.period
                    w.when = nxt
                    w.seq = seq
                    w.key = (nxt << SEQ_BITS) | seq
                    wheel.insert(w)
        finally:
            sim._events_fired += fired
        if when > sim.now:
            sim.now = when

    def run(self, sim: "Simulator") -> None:
        unstage(sim)
        heap = sim._heap
        handles = sim._handles
        wheel = sim._wheel
        pop = _heappop
        get = handles.pop
        fired = 0
        try:
            while True:
                if wheel._count == 0:
                    # Pure one-shot fast path: pop straight off the heap.
                    if not heap:
                        return
                    key = pop(heap)
                    cb = get(key, None)
                    if cb is None:
                        sim._dead -= 1
                        continue
                    sim.now = key >> SEQ_BITS
                    fired += 1
                    cb()
                    continue
                if heap:
                    w = wheel._min_cache
                    if w is None:
                        w = wheel.peek()
                    key = heap[0]
                    if key < w.key:
                        pop(heap)
                        cb = get(key, None)
                        if cb is None:
                            sim._dead -= 1
                            continue
                        sim.now = key >> SEQ_BITS
                        fired += 1
                        cb()
                        continue
                    wheel.remove(w)
                else:
                    # Only wheel events remain: one fused call per tick.
                    w = wheel.pop_min()
                fired += 1
                # Inlined _fire_one_periodic (hot: every wheel tick).
                sim.now = w.when
                w.callback()
                if w._alive:
                    seq = sim._seq
                    sim._seq = seq + 1
                    w.fires += 1
                    nxt = w.when + w.period
                    w.when = nxt
                    w.seq = seq
                    w.key = (nxt << SEQ_BITS) | seq
                    wheel.insert(w)
        finally:
            sim._events_fired += fired
