"""Cancellable events for the simulation heap.

Events are not physically removed from the heap on cancellation;
instead each :class:`EventHandle` carries a liveness flag that the
engine checks when the entry is popped.  This is the standard "lazy
deletion" scheme: O(1) cancellation, O(log n) scheduling, and the
stale entries are discarded as they surface.  Cancellation notifies
the owning simulator so it can keep exact live/dead counts and compact
the heap when cancelled entries start to dominate it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class EventHandle:
    """A scheduled callback that may be cancelled before it fires.

    Attributes
    ----------
    when:
        Absolute simulation time (ns) at which the event fires.
    callback:
        Zero-argument callable invoked when the event fires.
    label:
        Optional human-readable tag used by traces and error messages.
    """

    __slots__ = ("when", "seq", "callback", "label", "_alive", "_owner")

    def __init__(self, when: int, seq: int, callback: Callable[[], Any],
                 label: Optional[str] = None) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.label = label
        self._alive = True
        self._owner = None  # set by the scheduling Simulator

    @property
    def alive(self) -> bool:
        """True until the event fires or is cancelled."""
        return self._alive

    def cancel(self) -> bool:
        """Cancel the event.  Returns True if it had not yet fired."""
        was_alive = self._alive
        self._alive = False
        if was_alive and self._owner is not None:
            self._owner._note_cancelled(self)
        return was_alive

    def _consume(self) -> bool:
        """Mark the event as fired (engine-internal)."""
        was_alive = self._alive
        self._alive = False
        return was_alive

    def __lt__(self, other: "EventHandle") -> bool:
        # heapq tie-break: identical timestamps fire in scheduling order.
        if self.when != other.when:
            return self.when < other.when
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "dead"
        return f"<EventHandle t={self.when} {self.label or self.callback} {state}>"
