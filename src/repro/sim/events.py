"""Cancellable events for the simulation core.

The engine's one-shot heap holds *packed integer keys* -- ``(when <<
44) | seq`` -- never handle objects, so ``heapq`` comparisons are
single C ``int`` compares with no tuple indirection and no Python
``__lt__`` dispatch.  Packing preserves the exact ``(when, seq)``
ordering contract as long as fewer than 2**44 (~1.7e13) events are
ever scheduled in one simulation, which is more than six orders of
magnitude beyond the largest campaign run.

Liveness lives in an external table (``Simulator._handles``: key ->
callback); a key absent from the table is dead and is discarded when
it surfaces.  This keeps the classic lazy-deletion contract (O(1)
cancel, O(log n) schedule) while removing both per-event comparison
dispatch and per-fire liveness stores from the hot loop.

:class:`EventHandle` is the caller-facing receipt for a one-shot;
:class:`PeriodicHandle` is the recurring-event handle managed by the
hierarchical timer wheel (:mod:`repro.sim.wheel`) -- it is re-armed in
place on every fire, allocating nothing per tick.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

#: Low bits of a packed key hold the schedule sequence number; high
#: bits the timestamp.  Key order == (when, seq) lexicographic order.
SEQ_BITS = 44
SEQ_MASK = (1 << SEQ_BITS) - 1

#: Compact the one-shot heap only once it is at least this large;
#: below that the lazy-deletion overhead is noise and compaction would
#: just churn.
COMPACT_FLOOR = 64


class EventHandle:
    """A scheduled one-shot callback that may be cancelled before firing.

    The handle does not carry its own liveness: an engine-owned handle
    is alive iff its key is still present in the owner's table, so
    firing an event is a single dict pop with no handle write-back.  A
    handle constructed without an owner (unit tests, ad-hoc use) tracks
    liveness by flipping its key's sign instead.
    """

    __slots__ = ("key", "callback", "label", "_owner")

    def __init__(self, when: int, seq: int, callback: Callable[[], Any],
                 label: Optional[str] = None) -> None:
        self.key = (when << SEQ_BITS) | seq
        self.callback = callback
        self.label = label
        self._owner = None  # set by the scheduling Simulator

    @property
    def when(self) -> int:
        """Absolute simulation time (ns) at which the event fires."""
        key = self.key
        if key < 0:
            key = ~key
        return key >> SEQ_BITS

    @property
    def seq(self) -> int:
        """Schedule sequence number (tie-break within a timestamp)."""
        key = self.key
        if key < 0:
            key = ~key
        return key & SEQ_MASK

    @property
    def alive(self) -> bool:
        """True until the event fires or is cancelled."""
        owner = self._owner
        if owner is not None:
            return self.key in owner._handles
        return self.key >= 0

    def cancel(self) -> bool:
        """Cancel the event.  Returns True if it had not yet fired."""
        owner = self._owner
        if owner is not None:
            # Inlined Simulator._cancel_oneshot: timeout-style
            # workloads cancel most of what they schedule, so this is
            # a hot path worth a frame.  The compaction test runs every
            # 32nd dead entry -- the bound only loosens by a constant,
            # and mass-cancel storms skip 31 len() calls out of 32.
            if owner._handles.pop(self.key, None) is None:
                return False  # already fired or already cancelled
            dead = owner._dead + 1
            owner._dead = dead
            if not dead & 31:
                heap = owner._heap
                if dead > len(heap) // 2 and len(heap) >= COMPACT_FLOOR:
                    owner._compact()
            return True
        if self.key < 0:
            return False
        self.key = ~self.key
        return True

    def _consume(self) -> bool:
        """Mark an *unowned* handle as fired (test aid)."""
        if self.key < 0:
            return False
        self.key = ~self.key
        return True

    def __lt__(self, other: "EventHandle") -> bool:
        # Retained for callers that sort handles; the engine's heap
        # compares bare packed keys instead.
        return self.key < other.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"<EventHandle t={self.when} {self.label or self.callback} {state}>"


class PeriodicHandle:
    """A recurring callback re-armed in place by the timer wheel.

    After each fire the engine assigns the handle a fresh sequence
    number from the same counter one-shots draw from and advances
    ``when`` by ``period`` -- so a wheel periodic interleaves with
    one-shot events at equal timestamps exactly as the naive
    self-rescheduling ``after()`` loop it replaces did (the byte-
    identity contract the golden tests pin down).
    """

    __slots__ = ("when", "seq", "key", "period", "callback", "label",
                 "fires", "_alive", "_owner", "_bucket")

    def __init__(self, when: int, seq: int, period: int,
                 callback: Callable[[], Any],
                 label: Optional[str] = None) -> None:
        self.when = when
        self.seq = seq
        self.key = (when << SEQ_BITS) | seq
        self.period = period
        self.callback = callback
        self.label = label
        self.fires = 0
        self._alive = True
        self._owner = None   # set by the scheduling Simulator
        self._bucket = None  # wheel container, for O(1) removal

    @property
    def alive(self) -> bool:
        """True until the periodic is cancelled."""
        return self._alive

    def cancel(self) -> bool:
        """Stop the stream.  Safe to call from inside the callback."""
        if not self._alive:
            return False
        self._alive = False
        if self._owner is not None:
            self._owner._note_periodic_cancelled(self)
        return True

    def set_period(self, period_ns: int) -> None:
        """Change the period; takes effect at the next re-arm, like
        reprogramming a hardware reload register mid-cycle."""
        if period_ns <= 0:
            raise ValueError(f"periodic {self.label or self.callback}: "
                             f"period must be positive, got {period_ns}")
        self.period = period_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "dead"
        return (f"<PeriodicHandle t={self.when} period={self.period} "
                f"{self.label or self.callback} {state}>")
