"""Bounded trace buffer for simulator diagnostics.

Tracing is off by default (the hot paths check a single boolean).  When
enabled it records ``(time, category, message)`` tuples into a ring
buffer, which tests and debugging sessions can inspect to understand
why a latency sample came out the way it did -- the simulated analogue
of a kernel ftrace ring buffer.

The ring is a plain list plus a rotating start index rather than a
``deque``: simulated time is monotone, so keeping the storage
indexable lets :meth:`TraceBuffer.since` binary-search for its cutoff
and :meth:`TraceBuffer.tail` slice the newest *n* records directly
instead of walking the whole buffer.

This buffer carries free-form strings for ad-hoc debugging; the typed,
per-CPU tracepoint rings used by the observability stack live in
:mod:`repro.observe.tracepoints`.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, List, Optional


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry."""

    time: int
    category: str
    message: str

    def __str__(self) -> str:
        return f"[{self.time:>14d}] {self.category:<12} {self.message}"


class TraceBuffer:
    """Fixed-capacity ring buffer of :class:`TraceRecord`."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.enabled = False
        self._buf: List[TraceRecord] = []
        self._start = 0  # index of the oldest record once wrapped
        self._dropped = 0

    def emit(self, time: int, category: str, message: str) -> None:
        """Record one entry (no-op unless enabled)."""
        if not self.enabled:
            return
        record = TraceRecord(time, category, message)
        if len(self._buf) < self.capacity:
            self._buf.append(record)
        else:
            self._buf[self._start] = record
            self._start += 1
            if self._start == self.capacity:
                self._start = 0
            self._dropped += 1

    def clear(self) -> None:
        self._buf.clear()
        self._start = 0
        self._dropped = 0

    @property
    def dropped(self) -> int:
        """Entries evicted because the buffer wrapped."""
        return self._dropped

    def _ordered(self) -> List[TraceRecord]:
        """The buffer contents oldest-first."""
        if self._start == 0:
            return list(self._buf)
        return self._buf[self._start:] + self._buf[:self._start]

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """Snapshot of buffered records, optionally filtered by category."""
        ordered = self._ordered()
        if category is None:
            return ordered
        return [r for r in ordered if r.category == category]

    def categories(self) -> List[str]:
        """The distinct categories currently buffered, sorted."""
        return sorted({r.category for r in self._buf})

    def tail(self, n: int) -> List[TraceRecord]:
        """The newest *n* records, oldest-first (all if *n* exceeds
        the buffer)."""
        if n <= 0:
            return []
        return self._ordered()[-n:]

    def since(self, time: int) -> List[TraceRecord]:
        """Records with timestamp >= *time*.

        Timestamps are monotone non-decreasing (simulated time never
        runs backwards), so the cutoff is found by binary search.
        """
        ordered = self._ordered()
        lo = bisect_left(ordered, time, key=lambda r: r.time)
        return ordered[lo:]

    def format(self, records: Optional[Iterable[TraceRecord]] = None) -> str:
        """Render records one per line (for assertion messages)."""
        recs = self._ordered() if records is None else list(records)
        return "\n".join(str(r) for r in recs)

    def __len__(self) -> int:
        return len(self._buf)
