"""Bounded trace buffer for simulator diagnostics.

Tracing is off by default (the hot paths check a single boolean).  When
enabled it records ``(time, category, message)`` tuples into a ring
buffer, which tests and debugging sessions can inspect to understand
why a latency sample came out the way it did -- the simulated analogue
of a kernel ftrace ring buffer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry."""

    time: int
    category: str
    message: str

    def __str__(self) -> str:
        return f"[{self.time:>14d}] {self.category:<12} {self.message}"


class TraceBuffer:
    """Fixed-capacity ring buffer of :class:`TraceRecord`."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.enabled = False
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._dropped = 0

    def emit(self, time: int, category: str, message: str) -> None:
        """Record one entry (no-op unless enabled)."""
        if not self.enabled:
            return
        if len(self._records) == self.capacity:
            self._dropped += 1
        self._records.append(TraceRecord(time, category, message))

    def clear(self) -> None:
        self._records.clear()
        self._dropped = 0

    @property
    def dropped(self) -> int:
        """Entries evicted because the buffer wrapped."""
        return self._dropped

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """Snapshot of buffered records, optionally filtered by category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def since(self, time: int) -> List[TraceRecord]:
        """Records with timestamp >= *time*."""
        return [r for r in self._records if r.time >= time]

    def format(self, records: Optional[Iterable[TraceRecord]] = None) -> str:
        """Render records one per line (for assertion messages)."""
        recs = self._records if records is None else records
        return "\n".join(str(r) for r in recs)

    def __len__(self) -> int:
        return len(self._records)
