"""Named deterministic random substreams with block-prefetched draw planes.

Every stochastic element of the simulation (device arrival processes,
critical-section lengths, memory-bus noise, ...) draws from its own
named stream derived from a single master seed.  This keeps experiments
reproducible while decoupling the streams: adding one more draw to the
NIC model does not perturb the disk model.

Streams are ``numpy.random.Generator`` instances seeded through
``numpy.random.SeedSequence.spawn``-style child derivation keyed on the
stream name, so the mapping name -> stream is stable across runs and
insensitive to creation order.

Draw planes
-----------

Scalar ``Generator`` draws dominate the cost model's profile: one
``rng.integers(lo, hi)`` call is ~30x the per-draw cost of a block
draw, and figure runs make hundreds of thousands of them.
:meth:`RngStreams.stream` therefore returns a :class:`PlanedGenerator`
-- a facade that serves the same scalar-draw API but, once a call site
shows a streak of identical draws (same method, same parameters),
pre-generates a whole *plane* of values in one vectorised call and
serves them one by one.

The bit-stream contract is absolute: a planed stream must consume the
underlying ``BitGenerator`` exactly as the equivalent sequence of
scalar draws would (NumPy fills arrays element-by-element with the
same per-element algorithm, so a size-``n`` block draw advances the
state identically to ``n`` scalar draws -- property-tested in
``tests/sim/test_rng_planes.py``).  When the draw pattern changes
mid-plane, the wrapper rewinds the generator to the state saved before
the block and replays only the draws actually consumed, leaving the
stream bit-for-bit where a scalar-only consumer would have left it.
"""

from __future__ import annotations

import os
import zlib
from typing import Dict, Optional, Tuple

import numpy as np

#: The repo-wide default master seed.  Every layer that needs a seed
#: (``Simulator``, ``build_bench``, ``ScenarioSpec``) defaults to this
#: one value, so a run's seed is stated in exactly one place.
DEFAULT_SEED = 1

#: Environment switch: set ``REPRO_RNG_PLANES=0`` to hand out raw
#: ``numpy.random.Generator`` objects (debugging / perf A-B only; the
#: sequences are bit-identical either way).
PLANES_ENV = "REPRO_RNG_PLANES"

#: Consecutive same-signature scalar draws before the first prefetch.
PLANE_THRESHOLD = 4
#: First plane size; planes double on exhaustion within one streak.
PLANE_START = 8
#: Planes never exceed this many draws.
PLANE_MAX = 4096


def _planes_enabled_default() -> bool:
    return os.environ.get(PLANES_ENV, "1") not in ("0", "false", "no")


class PlanedGenerator:
    """Scalar-draw facade over a ``Generator`` with block prefetching.

    The wrapper watches the *signature* of each scalar draw (method
    name plus parameters).  A streak of identical signatures -- a
    device drawing inter-arrival gaps, the cost model sampling one
    ``Uniform`` -- is served from a pre-generated plane; heterogeneous
    patterns (e.g. ``Choice``'s ``random()`` / sub-dist interleave)
    stay on direct scalar draws and pay only a tuple compare.

    Per-signature run lengths are remembered, so a stream that
    alternates between a long homogeneous phase and a short noisy one
    sizes its planes to the phase and does not thrash the
    rewind-and-replay path.
    """

    __slots__ = ("_gen", "_sig", "_buf", "_pos", "_len", "_run",
                 "_predict", "_saved_state", "_block", "_direct",
                 "_hits", "_misses")

    def __init__(self, gen: np.random.Generator) -> None:
        self._gen = gen
        self._sig: Optional[Tuple] = None   # signature of the current streak
        self._buf: Optional[list] = None    # active plane (Python scalars)
        self._pos = 0                       # next unserved index in _buf
        self._len = 0                       # len(_buf)
        self._run = 0                       # draws served in this streak
        self._predict: Dict[Tuple, int] = {}  # sig -> last full streak length
        self._saved_state = None            # bitgen state before the plane
        self._block = 0                     # plane size for this streak
        #: Streams whose draw pattern never settles (the kernel cost
        #: model interleaves per-key distributions on one stream, so
        #: signatures alternate nearly every call) drop to permanent
        #: passthrough once the plane hit rate proves hopeless -- one
        #: flag test per draw instead of streak bookkeeping.
        self._direct = False
        self._hits = 0                      # draws served from planes
        self._misses = 0                    # signature switches seen

    # ------------------------------------------------------------------
    # The planed scalar-draw API (everything the simulation uses hot)
    # ------------------------------------------------------------------
    def integers(self, low, high=None, size=None):
        if self._direct:
            return self._gen.integers(low, high, size)
        if size is not None or high is None:
            return self._bulk("integers", (low,) if high is None else
                              (low, high), size)
        sig = ("integers", low, high)
        if sig == self._sig and self._pos < self._len:
            pos = self._pos
            self._pos = pos + 1
            return self._buf[pos]
        return self._slow(sig)

    def random(self, size=None):
        if self._direct:
            return self._gen.random(size)
        if size is not None:
            return self._bulk("random", (), size)
        sig = ("random",)
        if sig == self._sig and self._pos < self._len:
            pos = self._pos
            self._pos = pos + 1
            return self._buf[pos]
        return self._slow(sig)

    def uniform(self, low=0.0, high=1.0, size=None):
        if self._direct:
            return self._gen.uniform(low, high, size)
        if size is not None:
            return self._bulk("uniform", (low, high), size)
        sig = ("uniform", low, high)
        if sig == self._sig and self._pos < self._len:
            pos = self._pos
            self._pos = pos + 1
            return self._buf[pos]
        return self._slow(sig)

    def exponential(self, scale=1.0, size=None):
        if self._direct:
            return self._gen.exponential(scale, size)
        if size is not None:
            return self._bulk("exponential", (scale,), size)
        sig = ("exponential", scale)
        if sig == self._sig and self._pos < self._len:
            pos = self._pos
            self._pos = pos + 1
            return self._buf[pos]
        return self._slow(sig)

    def lognormal(self, mean=0.0, sigma=1.0, size=None):
        if self._direct:
            return self._gen.lognormal(mean, sigma, size)
        if size is not None:
            return self._bulk("lognormal", (mean, sigma), size)
        sig = ("lognormal", mean, sigma)
        if sig == self._sig and self._pos < self._len:
            pos = self._pos
            self._pos = pos + 1
            return self._buf[pos]
        return self._slow(sig)

    def normal(self, loc=0.0, scale=1.0, size=None):
        if self._direct:
            return self._gen.normal(loc, scale, size)
        if size is not None:
            return self._bulk("normal", (loc, scale), size)
        sig = ("normal", loc, scale)
        if sig == self._sig and self._pos < self._len:
            pos = self._pos
            self._pos = pos + 1
            return self._buf[pos]
        return self._slow(sig)

    def poisson(self, lam=1.0, size=None):
        if self._direct:
            return self._gen.poisson(lam, size)
        if size is not None:
            return self._bulk("poisson", (lam,), size)
        sig = ("poisson", lam)
        if sig == self._sig and self._pos < self._len:
            pos = self._pos
            self._pos = pos + 1
            return self._buf[pos]
        return self._slow(sig)

    # ------------------------------------------------------------------
    # Streak machinery
    # ------------------------------------------------------------------
    def _slow(self, sig: Tuple):
        """Cache miss: streak continues past the plane, or a new sig."""
        if sig == self._sig:
            return self._extend(sig)
        return self._switch(sig)

    def _extend(self, sig: Tuple):
        """Same signature, no plane value left: prefetch or draw direct.

        ``_run`` counts the draws served in this streak *before* the
        currently active plane; plane serves are implicit in ``_pos``
        and folded in when the plane closes.
        """
        if self._buf is not None:
            # A plane was exhausted mid-streak: the streak is longer
            # than predicted, so absorb it and double the next plane.
            self._run += self._len
            self._hits += self._len
            self._buf = None
            self._len = 0
            block = self._block * 2
            if block > PLANE_MAX:
                block = PLANE_MAX
            return self._prefetch(sig, block)
        run = self._run
        if run >= PLANE_THRESHOLD:
            expected = self._predict.get(sig)
            if expected is None or expected <= run:
                # Unknown pattern, or the streak outgrew its last
                # length: start small and double on demand.
                return self._prefetch(sig, PLANE_START)
            remaining = expected - run
            if remaining >= PLANE_START:
                block = remaining if remaining <= PLANE_MAX else PLANE_MAX
                return self._prefetch(sig, block)
            # Predicted tail too short to amortise a plane.
        self._run = run + 1
        return getattr(self._gen, sig[0])(*sig[1:])

    def _prefetch(self, sig: Tuple, block: int):
        gen = self._gen
        self._saved_state = gen.bit_generator.state
        values = getattr(gen, sig[0])(*sig[1:], size=block)
        buf = values.tolist()
        self._buf = buf
        self._len = block
        self._pos = 1
        self._block = block
        return buf[0]

    def _switch(self, sig: Tuple):
        """The draw pattern changed: close out the old streak.

        Prediction entries are only worth storing for streaks that
        reached :data:`PLANE_THRESHOLD` (shorter ones never prefetch),
        which keeps this path to a couple of slot writes for streams
        that alternate signatures on every draw.  If such a stream
        racks up switches without ever amortising them through plane
        hits, it is declared hopeless and dropped to direct
        passthrough for the rest of its life.
        """
        old = self._sig
        if old is not None:
            if self._buf is not None:
                self._hits += self._pos
                self._predict[old] = self._run + self._pos
                self._resync(old)
            elif self._run >= PLANE_THRESHOLD:
                self._predict[old] = self._run
            misses = self._misses + 1
            self._misses = misses
            if misses >= 512 and self._hits < (misses >> 2):
                self._direct = True
                self._sig = None
                self._run = 0
                self._block = 0
                return getattr(self._gen, sig[0])(*sig[1:])
        self._sig = sig
        self._run = 1
        self._block = 0
        return getattr(self._gen, sig[0])(*sig[1:])

    def _resync(self, sig: Tuple) -> None:
        """Discard unserved plane values, leaving the underlying stream
        exactly where the equivalent scalar-only draws would have.

        The plane consumed bits for every element when it was
        generated; rewinding to the saved pre-plane state and redrawing
        only the served prefix (one vectorised call) re-lands the
        ``BitGenerator`` on the scalar-equivalent state.
        """
        buf = self._buf
        if buf is None:
            return
        pos = self._pos
        self._buf = None
        self._len = 0
        if pos < len(buf):
            gen = self._gen
            gen.bit_generator.state = self._saved_state
            if pos:
                getattr(gen, sig[0])(*sig[1:], size=pos)
        self._saved_state = None

    def _bulk(self, name: str, args: Tuple, size):
        """An explicitly sized (array) draw: sync, then delegate."""
        self.sync()
        method = getattr(self._gen, name)
        if size is None:
            return method(*args)
        return method(*args, size=size)

    # ------------------------------------------------------------------
    # Escape hatches
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush plane state so ``generator`` is scalar-equivalent."""
        sig = self._sig
        if sig is not None:
            total = self._run
            if self._buf is not None:
                total += self._pos
            self._predict[sig] = total
            self._resync(sig)
            self._sig = None
            self._run = 0
            self._block = 0

    @property
    def generator(self) -> np.random.Generator:
        """The underlying ``Generator``, synced to the scalar-equivalent
        state.  Draws made directly on it interleave correctly with
        later planed draws."""
        self.sync()
        return self._gen

    def __getattr__(self, name: str):
        # Any Generator API the facade does not accelerate (choice,
        # shuffle, bit_generator, ...) falls through to the synced
        # generator, so mixed usage stays bit-identical.
        self.sync()
        return getattr(self._gen, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PlanedGenerator sig={self._sig} run={self._run}>"


class RngStreams:
    """Factory and registry for named random substreams."""

    def __init__(self, master_seed: Optional[int] = None, *,
                 planes: Optional[bool] = None) -> None:
        if master_seed is None:
            master_seed = DEFAULT_SEED
        self._master_seed = int(master_seed)
        self._streams: Dict[str, object] = {}
        self._planes = (_planes_enabled_default()
                        if planes is None else bool(planes))

    @property
    def master_seed(self) -> int:
        return self._master_seed

    @property
    def planes_enabled(self) -> bool:
        return self._planes

    def _derive(self, name: str) -> np.random.Generator:
        # Derive a child seed from the master seed and a stable hash
        # of the name.  crc32 is stable across processes and Python
        # versions (unlike hash()).
        child = np.random.SeedSequence(
            entropy=self._master_seed,
            spawn_key=(zlib.crc32(name.encode("utf-8")),),
        )
        return np.random.Generator(np.random.PCG64(child))

    def stream(self, name: str):
        """Return the generator for *name*, creating it on first use.

        The same name always maps to the same stream object (and, for a
        given master seed, the same sequence) regardless of when or in
        what order streams are requested.  With planes enabled (the
        default) the returned object is a :class:`PlanedGenerator`
        serving the bit-identical sequence with block prefetching.
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = self._derive(name)
            if self._planes:
                gen = PlanedGenerator(gen)
            self._streams[name] = gen
        return gen

    def raw_stream(self, name: str) -> np.random.Generator:
        """The underlying ``Generator`` for *name* (synced if planed)."""
        stream = self.stream(name)
        if isinstance(stream, PlanedGenerator):
            return stream.generator
        return stream

    def names(self) -> list:
        """Names of all streams created so far (sorted)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngStreams seed={self._master_seed} streams={len(self._streams)}>"
