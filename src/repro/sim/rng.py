"""Named deterministic random substreams.

Every stochastic element of the simulation (device arrival processes,
critical-section lengths, memory-bus noise, ...) draws from its own
named stream derived from a single master seed.  This keeps experiments
reproducible while decoupling the streams: adding one more draw to the
NIC model does not perturb the disk model.

Streams are ``numpy.random.Generator`` instances seeded through
``numpy.random.SeedSequence.spawn``-style child derivation keyed on the
stream name, so the mapping name -> stream is stable across runs and
insensitive to creation order.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

import numpy as np

#: The repo-wide default master seed.  Every layer that needs a seed
#: (``Simulator``, ``build_bench``, ``ScenarioSpec``) defaults to this
#: one value, so a run's seed is stated in exactly one place.
DEFAULT_SEED = 1


class RngStreams:
    """Factory and registry for named random substreams."""

    def __init__(self, master_seed: Optional[int] = None) -> None:
        if master_seed is None:
            master_seed = DEFAULT_SEED
        self._master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        The same name always maps to the same stream object (and, for a
        given master seed, the same sequence) regardless of when or in
        what order streams are requested.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from the master seed and a stable hash
            # of the name.  crc32 is stable across processes and Python
            # versions (unlike hash()).
            child = np.random.SeedSequence(
                entropy=self._master_seed,
                spawn_key=(zlib.crc32(name.encode("utf-8")),),
            )
            gen = np.random.Generator(np.random.PCG64(child))
            self._streams[name] = gen
        return gen

    def names(self) -> list:
        """Names of all streams created so far (sorted)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngStreams seed={self._master_seed} streams={len(self._streams)}>"
