"""The discrete-event simulation core.

:class:`Simulator` owns the clock, the event heap, the master RNG
registry and the trace buffer.  Hardware and kernel objects schedule
zero-argument callbacks at absolute or relative times and may cancel
them through the returned :class:`~repro.sim.events.EventHandle`.

The engine is intentionally minimal: all *semantics* (preemption,
interrupts, locking) live in the hardware/kernel layers.  Keeping the
engine dumb makes its behaviour easy to verify exhaustively, which the
rest of the system then inherits.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.sim.errors import SchedulingInPastError, SimulationStalledError
from repro.sim.events import EventHandle
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBuffer


class Simulator:
    """Event heap plus clock.

    Parameters
    ----------
    seed:
        Master seed for all named random substreams.
    trace_capacity:
        Ring-buffer size for the (normally disabled) trace facility.
    """

    def __init__(self, seed: int = 0, trace_capacity: int = 65536) -> None:
        self.now: int = 0
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._events_fired = 0
        self.rng = RngStreams(seed)
        self.trace = TraceBuffer(trace_capacity)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, when: int, callback: Callable[[], None],
           label: Optional[str] = None) -> EventHandle:
        """Schedule *callback* at absolute time *when* (ns)."""
        if when < self.now:
            raise SchedulingInPastError(
                f"cannot schedule {label or callback} at t={when} < now={self.now}")
        handle = EventHandle(when, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def after(self, delay: int, callback: Callable[[], None],
              label: Optional[str] = None) -> EventHandle:
        """Schedule *callback* *delay* ns from now (delay >= 0)."""
        if delay < 0:
            raise SchedulingInPastError(
                f"negative delay {delay} for {label or callback}")
        return self.at(self.now + delay, callback, label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pop_live(self) -> Optional[EventHandle]:
        """Pop the next live event, discarding cancelled entries."""
        heap = self._heap
        while heap:
            handle = heapq.heappop(heap)
            if handle._consume():
                return handle
        return None

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or None if the heap is empty."""
        heap = self._heap
        while heap and not heap[0].alive:
            heapq.heappop(heap)
        return heap[0].when if heap else None

    def step(self) -> bool:
        """Fire the next event.  Returns False if none remain."""
        handle = self._pop_live()
        if handle is None:
            return False
        self.now = handle.when
        self._events_fired += 1
        handle.callback()
        return True

    def run_until(self, when: int) -> None:
        """Fire events up to and including time *when*.

        The clock is left at *when* even if the last event fired
        earlier; this gives callers a consistent "the simulated world
        has reached t" view.
        """
        heap = self._heap
        while True:
            while heap and not heap[0].alive:
                heapq.heappop(heap)
            if not heap or heap[0].when > when:
                break
            self.step()
        if when > self.now:
            self.now = when

    def run(self) -> None:
        """Fire events until the heap drains."""
        while self.step():
            pass

    def run_steps(self, count: int) -> int:
        """Fire at most *count* events; returns the number fired."""
        fired = 0
        while fired < count and self.step():
            fired += 1
        return fired

    def require_events(self) -> None:
        """Raise if the simulation has no future events (deadlock guard)."""
        if self.peek_time() is None:
            raise SimulationStalledError(f"no events pending at t={self.now}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def events_pending(self) -> int:
        """Number of live events still scheduled."""
        return sum(1 for h in self._heap if h.alive)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self.now} fired={self._events_fired} "
                f"pending={self.events_pending}>")
