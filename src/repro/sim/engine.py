"""The discrete-event simulation core.

:class:`Simulator` owns the clock, the event queues, the master RNG
registry and the trace buffer.  Hardware and kernel objects schedule
zero-argument callbacks at absolute or relative times and may cancel
them through the returned :class:`~repro.sim.events.EventHandle`, or
install recurring callbacks via :meth:`Simulator.periodic`, which are
managed by a hierarchical timer wheel and re-armed in place with no
per-tick allocation.

The engine is intentionally minimal: all *semantics* (preemption,
interrupts, locking) live in the hardware/kernel layers.  Keeping the
engine dumb makes its behaviour easy to verify exhaustively, which the
rest of the system then inherits.

Hot-path design (the perf suite in ``benchmarks/perf`` tracks this):

* The one-shot heap holds packed ``(when << 44) | seq`` integer keys,
  so ``heapq`` comparisons are single C int compares -- no handle
  objects on the heap, no tuple indirection, no Python ``__lt__``.
  Liveness is an external dict (key -> handle); absence means
  cancelled, so firing needs no handle write-back at all.
* The dequeue/dispatch/re-arm inner loop lives behind the
  :class:`~repro.sim.backends.base.SimBackend` seam
  (``repro.sim.backends``): the default ``batched`` backend stages due
  wheel entries into a flat sorted run (``_active_run``) and dispatches
  fused one-shot runs between staged heads; the ``simple`` backend is
  the historical event-at-a-time loop kept as its oracle; ``compiled``
  is the batched loop built as an extension module when available.
* Firing order is strict ``(when, seq)`` across both queues, with
  periodics drawing a fresh seq from the same counter at each re-arm:
  exactly the order the naive self-rescheduling ``after()`` idiom
  produced, which is what keeps figure outputs byte-identical --
  under every backend.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Union

from repro.observe.tracepoints import Tracepoints
from repro.sim.backends import SimBackend, resolve as _resolve_backend
from repro.sim.errors import SchedulingInPastError, SimulationStalledError
from repro.sim.events import (COMPACT_FLOOR, EventHandle, PeriodicHandle,
                              SEQ_BITS)
from repro.sim.rng import DEFAULT_SEED, RngStreams
from repro.sim.trace import TraceBuffer
from repro.sim.wheel import TimerWheel

#: Compact the heap only once it is at least this large (see
#: :data:`repro.sim.events.COMPACT_FLOOR`, shared with the inlined
#: cancel path in EventHandle.cancel).
_COMPACT_FLOOR = COMPACT_FLOOR

_heappush = heapq.heappush
_heappop = heapq.heappop
_new_handle = EventHandle.__new__


class Simulator:
    """Event queues plus clock.

    Parameters
    ----------
    seed:
        Master seed for all named random substreams.  ``None`` uses the
        repo-wide :data:`repro.sim.rng.DEFAULT_SEED` so that a run's
        seed is stated in exactly one place (normally the
        ``ScenarioSpec`` driving the experiment).
    trace_capacity:
        Ring-buffer size for the (normally disabled) trace facility.
    backend:
        Inner-loop implementation: ``"batched"`` (default),
        ``"simple"``, ``"compiled"``, or a :class:`SimBackend`
        instance.  ``None`` consults the ``REPRO_SIM_BACKEND``
        environment variable.  All backends fire events in identical
        order; the choice affects wall-clock only.
    """

    def __init__(self, seed: Optional[int] = None,
                 trace_capacity: int = 65536,
                 backend: Union[None, str, SimBackend] = None) -> None:
        self.now: int = 0
        self._heap: List[int] = []
        self._handles: dict = {}  # packed key -> callback (presence = alive)
        self._wheel = TimerWheel()
        self._seq = 0
        self._events_fired = 0
        self._dead = 0   # cancelled entries not yet popped or compacted
        # Wheel entries staged for batched dispatch: a sorted list of
        # (key, PeriodicHandle).  Normally drained by the advance that
        # staged it; introspection helpers below fold it in so staged
        # events are never invisible.
        self._active_run: list = []
        self._backend: SimBackend = _resolve_backend(backend)
        self.rng = RngStreams(DEFAULT_SEED if seed is None else seed)
        self.trace = TraceBuffer(trace_capacity)
        # Typed tracepoint registry (disabled; the machine sizes its
        # per-CPU rings via tp.configure() once the CPU count is known).
        self.tp = Tracepoints()

    @property
    def backend_name(self) -> str:
        """Name of the active inner-loop backend."""
        return self._backend.name

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, when: int, callback: Callable[[], None],
           label: Optional[str] = None) -> EventHandle:
        """Schedule *callback* at absolute time *when* (ns)."""
        if when < self.now:
            raise SchedulingInPastError(
                f"cannot schedule {label or callback} at t={when} < now={self.now}")
        seq = self._seq
        self._seq = seq + 1
        key = (when << SEQ_BITS) | seq
        # Inlined EventHandle construction: this is the hottest
        # allocation in the simulator, worth skipping a stack frame.
        handle = _new_handle(EventHandle)
        handle.key = key
        handle.callback = callback
        handle.label = label
        handle._owner = self
        self._handles[key] = callback
        _heappush(self._heap, key)
        return handle

    def after(self, delay: int, callback: Callable[[], None],
              label: Optional[str] = None) -> EventHandle:
        """Schedule *callback* *delay* ns from now (delay >= 0)."""
        if delay < 0:
            raise SchedulingInPastError(
                f"negative delay {delay} for {label or callback}")
        # Inlined at(): delay >= 0 already implies when >= now, and
        # relative scheduling is the kernel/hw layers' hottest idiom.
        seq = self._seq
        self._seq = seq + 1
        key = ((self.now + delay) << SEQ_BITS) | seq
        handle = _new_handle(EventHandle)
        handle.key = key
        handle.callback = callback
        handle.label = label
        handle._owner = self
        self._handles[key] = callback
        _heappush(self._heap, key)
        return handle

    def periodic(self, period: int, callback: Callable[[], None], *,
                 first_delay: Optional[int] = None,
                 first_at: Optional[int] = None,
                 label: Optional[str] = None) -> PeriodicHandle:
        """Install a recurring callback on the timer wheel.

        Fires first at ``first_at`` (absolute), or ``now + first_delay``
        if given, else ``now + period``; then every ``period`` ns until
        :meth:`PeriodicHandle.cancel`.  Each fire advances the handle
        in place -- no allocation, no heap churn -- while drawing a
        fresh sequence number so ties against one-shots resolve exactly
        as if the callback had re-scheduled itself with :meth:`after`.
        """
        if period <= 0:
            raise ValueError(
                f"periodic {label or callback}: period must be positive, "
                f"got {period}")
        if first_at is not None:
            first = first_at
        elif first_delay is not None:
            first = self.now + first_delay
        else:
            first = self.now + period
        if first < self.now:
            raise SchedulingInPastError(
                f"cannot schedule {label or callback} at t={first} "
                f"< now={self.now}")
        seq = self._seq
        self._seq = seq + 1
        handle = PeriodicHandle(first, seq, period, callback, label)
        handle._owner = self
        self._wheel.insert(handle)
        return handle

    # ------------------------------------------------------------------
    # Queue hygiene
    # ------------------------------------------------------------------
    def _cancel_oneshot(self, handle: EventHandle) -> bool:
        """Cancel a one-shot.

        Kept as the documented seam even though
        :meth:`EventHandle.cancel` inlines this logic on the hot path;
        policy here must mirror the inlined copy.
        """
        if self._handles.pop(handle.key, None) is None:
            return False  # already fired or already cancelled
        dead = self._dead + 1
        self._dead = dead
        if not dead & 31:
            heap = self._heap
            if dead > len(heap) // 2 and len(heap) >= _COMPACT_FLOOR:
                self._compact()
        return True

    def _note_periodic_cancelled(self, handle: PeriodicHandle) -> None:
        """A periodic was cancelled (handle hook); unlink from wheel."""
        self._wheel.remove(handle)

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        heapify preserves the key-ordering contract, so firing order is
        unaffected; only the dead weight goes away.  The list is
        filtered *in place*: the run loops hold a local reference to
        it, so its identity must survive a compaction triggered from
        inside a callback.
        """
        heap = self._heap
        handles = self._handles
        heap[:] = [k for k in heap if k in handles]
        heapq.heapify(heap)
        self._dead = 0

    def _discard_dead_head(self) -> None:
        """Pop cancelled entries sitting at the top of the heap."""
        heap = self._heap
        handles = self._handles
        while heap and heap[0] not in handles:
            _heappop(heap)
            self._dead -= 1

    def cancel_pending(self) -> int:
        """Cancel every scheduled one-shot and periodic.

        A teardown aid for harness code and tests that want to drain a
        bench without firing whatever device timers remain; returns the
        number of events cancelled.
        """
        count = len(self._handles)
        self._handles.clear()
        self._heap.clear()
        self._dead = 0
        for phandle in list(self._wheel.handles()):
            if phandle.cancel():
                count += 1
        run = self._active_run
        if run:
            for _, phandle in run:
                if phandle.cancel():
                    count += 1
            run.clear()
        return count

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or None if none remain.

        Considers all three holding areas: the one-shot heap, the timer
        wheel, and any batch run still staged by an (aborted) advance.
        """
        self._discard_dead_head()
        best: Optional[int] = None  # packed key
        heap = self._heap
        if heap:
            best = heap[0]
        for key, handle in self._active_run:
            if handle._alive:
                if best is None or key < best:
                    best = key
                break
        wheel = self._wheel
        if wheel._count:
            w = wheel.peek()
            if best is None or w.key < best:
                best = w.key
        return (best >> SEQ_BITS) if best is not None else None

    def pending_summary(self, max_labels: int = 8) -> str:
        """Human-readable snapshot of what is still scheduled.

        Names the live periodic callbacks (timer ticks, device pacers,
        fault-injector pacers -- anything armed with a label) and
        counts the live one-shots; one-shot labels are not retained on
        the hot path, so they can only be counted.  Periodics staged in
        an in-flight batch run are folded in and reported separately --
        before the batched core, an advance aborted mid-run made these
        events invisible to stall diagnostics.  Used by stall
        diagnostics to say *what* was (or was not) left running.
        """
        staged = [h for _, h in self._active_run if h._alive]
        labels = sorted({h.label or "<unlabelled>"
                         for h in self._wheel.handles() if h.alive}
                        | {h.label or "<unlabelled>" for h in staged})
        shown = ", ".join(labels[:max_labels])
        if len(labels) > max_labels:
            shown += f", ... ({len(labels) - max_labels} more)"
        periodics = shown if labels else "none"
        summary = (f"{len(labels)} periodic ({periodics}); "
                   f"{len(self._handles)} one-shot")
        if staged:
            summary += f"; {len(staged)} staged in an in-flight batch run"
        return summary

    def step(self) -> bool:
        """Fire the next event.  Returns False if none remain."""
        return self._backend.step(self)

    def _fire_periodic(self, handle: PeriodicHandle) -> None:
        """Fire the wheel head; counts the event (step() path)."""
        self._events_fired += 1
        self._fire_one_periodic(handle)

    def _fire_one_periodic(self, handle: PeriodicHandle) -> None:
        """Fire the wheel head and re-arm it in place (if still alive).

        Does not touch ``_events_fired``; the batched run loops account
        for fired events themselves.
        """
        wheel = self._wheel
        wheel.remove(handle)
        self.now = handle.when
        handle.callback()
        if handle._alive:
            # Fresh seq *after* the callback returns -- the re-arm point
            # of the self-rescheduling idiom this replaces, which is
            # what keeps (when, seq) ties byte-identical.
            seq = self._seq
            self._seq = seq + 1
            handle.fires += 1
            when = handle.when + handle.period
            handle.when = when
            handle.seq = seq
            handle.key = (when << SEQ_BITS) | seq
            wheel.insert(handle)

    def run_until(self, when: int) -> None:
        """Fire events up to and including time *when*.

        The clock is left at *when* even if the last event fired
        earlier; this gives callers a consistent "the simulated world
        has reached t" view.  The loop itself is supplied by the
        active :class:`SimBackend`.
        """
        self._backend.run_until(self, when)

    def run(self) -> None:
        """Fire events until both queues drain (backend-supplied loop)."""
        self._backend.run(self)

    def run_steps(self, count: int) -> int:
        """Fire at most *count* events; returns the number fired."""
        fired = 0
        while fired < count and self.step():
            fired += 1
        return fired

    def require_events(self) -> None:
        """Raise if the simulation has no future events (deadlock guard)."""
        if self.peek_time() is None:
            raise SimulationStalledError(f"no events pending at t={self.now}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def events_pending(self) -> int:
        """Number of live events still scheduled.

        O(1) plus the (normally empty) staged batch run: entries a
        batched advance extracted but had not dispatched when it
        exited are still pending events and are counted here.
        """
        pending = len(self._handles) + self._wheel._count
        run = self._active_run
        if run:
            pending += sum(1 for _, h in run if h._alive)
        return pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self.now} fired={self._events_fired} "
                f"pending={self.events_pending}>")
