"""The discrete-event simulation core.

:class:`Simulator` owns the clock, the event heap, the master RNG
registry and the trace buffer.  Hardware and kernel objects schedule
zero-argument callbacks at absolute or relative times and may cancel
them through the returned :class:`~repro.sim.events.EventHandle`.

The engine is intentionally minimal: all *semantics* (preemption,
interrupts, locking) live in the hardware/kernel layers.  Keeping the
engine dumb makes its behaviour easy to verify exhaustively, which the
rest of the system then inherits.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.sim.errors import SchedulingInPastError, SimulationStalledError
from repro.sim.events import EventHandle
from repro.sim.rng import DEFAULT_SEED, RngStreams
from repro.sim.trace import TraceBuffer

#: Compact the heap only once it is at least this large; below that the
#: lazy-deletion overhead is noise and compaction would just churn.
_COMPACT_FLOOR = 64


class Simulator:
    """Event heap plus clock.

    Parameters
    ----------
    seed:
        Master seed for all named random substreams.  ``None`` uses the
        repo-wide :data:`repro.sim.rng.DEFAULT_SEED` so that a run's
        seed is stated in exactly one place (normally the
        ``ScenarioSpec`` driving the experiment).
    trace_capacity:
        Ring-buffer size for the (normally disabled) trace facility.
    """

    def __init__(self, seed: Optional[int] = None,
                 trace_capacity: int = 65536) -> None:
        self.now: int = 0
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._events_fired = 0
        self._live = 0   # alive entries currently in the heap
        self._dead = 0   # cancelled entries not yet popped or compacted
        self.rng = RngStreams(DEFAULT_SEED if seed is None else seed)
        self.trace = TraceBuffer(trace_capacity)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, when: int, callback: Callable[[], None],
           label: Optional[str] = None) -> EventHandle:
        """Schedule *callback* at absolute time *when* (ns)."""
        if when < self.now:
            raise SchedulingInPastError(
                f"cannot schedule {label or callback} at t={when} < now={self.now}")
        handle = EventHandle(when, self._seq, callback, label)
        handle._owner = self
        self._seq += 1
        heapq.heappush(self._heap, handle)
        self._live += 1
        return handle

    def after(self, delay: int, callback: Callable[[], None],
              label: Optional[str] = None) -> EventHandle:
        """Schedule *callback* *delay* ns from now (delay >= 0)."""
        if delay < 0:
            raise SchedulingInPastError(
                f"negative delay {delay} for {label or callback}")
        return self.at(self.now + delay, callback, label)

    # ------------------------------------------------------------------
    # Heap hygiene
    # ------------------------------------------------------------------
    def _note_cancelled(self, handle: EventHandle) -> None:
        """A handle still in the heap was cancelled (EventHandle hook)."""
        self._live -= 1
        self._dead += 1
        if (self._dead > len(self._heap) // 2
                and len(self._heap) >= _COMPACT_FLOOR):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        heapify preserves the (when, seq) ordering contract, so firing
        order is unaffected; only the dead weight goes away.
        """
        self._heap = [h for h in self._heap if h._alive]
        heapq.heapify(self._heap)
        self._dead = 0

    def _discard_dead_head(self) -> None:
        """Pop cancelled entries sitting at the top of the heap."""
        heap = self._heap
        while heap and not heap[0]._alive:
            heapq.heappop(heap)
            self._dead -= 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pop_live(self) -> Optional[EventHandle]:
        """Pop the next live event, discarding cancelled entries."""
        self._discard_dead_head()
        if not self._heap:
            return None
        handle = heapq.heappop(self._heap)
        handle._consume()
        self._live -= 1
        return handle

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or None if the heap is empty."""
        self._discard_dead_head()
        return self._heap[0].when if self._heap else None

    def step(self) -> bool:
        """Fire the next event.  Returns False if none remain."""
        handle = self._pop_live()
        if handle is None:
            return False
        self.now = handle.when
        self._events_fired += 1
        handle.callback()
        return True

    def run_until(self, when: int) -> None:
        """Fire events up to and including time *when*.

        The clock is left at *when* even if the last event fired
        earlier; this gives callers a consistent "the simulated world
        has reached t" view.
        """
        while True:
            self._discard_dead_head()
            if not self._heap or self._heap[0].when > when:
                break
            self.step()
        if when > self.now:
            self.now = when

    def run(self) -> None:
        """Fire events until the heap drains."""
        while self.step():
            pass

    def run_steps(self, count: int) -> int:
        """Fire at most *count* events; returns the number fired."""
        fired = 0
        while fired < count and self.step():
            fired += 1
        return fired

    def require_events(self) -> None:
        """Raise if the simulation has no future events (deadlock guard)."""
        if self.peek_time() is None:
            raise SimulationStalledError(f"no events pending at t={self.now}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def events_pending(self) -> int:
        """Number of live events still scheduled (O(1))."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self.now} fired={self._events_fired} "
                f"pending={self.events_pending}>")
