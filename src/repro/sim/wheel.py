"""A hierarchical timing wheel for periodic events.

The wheel holds :class:`~repro.sim.events.PeriodicHandle` objects.
Level *k* divides time into slots of ``2**(11 + 6k)`` ns, 64 slots per
level: level 0 resolves ~2 us slots inside the current ~131 us slab,
level 1 the ~131 us slots inside the current ~8.4 ms slab, and so on
up to level 7 (~104-day slots).  A handle is filed at the lowest level
whose *current* slab contains its expiry -- exactly the Linux
``timer_wheel`` layout, minus the rounding: entries keep their exact
nanosecond expiry and surface in packed-key order (``(when << 44) |
seq``), so firing order is identical to a binary heap's.

Operations:

* ``insert``/``remove``: O(levels) = O(1) -- a shift, a compare and a
  list append per level walked; re-arming a periodic allocates
  nothing (buckets are preallocated ``_Bucket`` objects that carry
  their own level/index, so clearing an occupancy bit is direct).
* ``peek``/``pop_min``: find the first occupied slot via per-level
  occupancy bitmaps (``int`` bit tricks); when a level-0 rotation
  drains, the next occupied higher-level slot cascades down, again
  through the O(1) insert path.

Two overflow side-lists keep the bitmap math honest at the edges:
``_near`` holds entries behind the wheel's internal cursor (possible
because the cursor may run ahead of the simulator clock after a
cascade) and ``_far`` holds entries beyond the top level's horizon.
Both are kept sorted and practically always empty.
"""

from __future__ import annotations

from bisect import insort
from operator import attrgetter
from typing import Iterator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import PeriodicHandle

#: log2 of the level-0 slot width in ns (2**11 ns = 2.048 us) -- narrow
#: enough that a realistic set of concurrent periodics (microsecond-to-
#: millisecond ticks) almost never shares a bucket, keeping the
#: min-of-bucket scan degenerate.  Swept 9..13 on the periodic
#: microbench; 11 maximises throughput.
_BASE_SHIFT = 11
#: log2 of the slots-per-level fanout (64 slots).
_FAN_SHIFT = 6
#: Number of levels; level 7 slots are ~104 simulated days wide.
_LEVELS = 8
_SLOT_MASK = (1 << _FAN_SHIFT) - 1
#: Per-level slot shifts: entry at level k is indexed by when >> _SHIFTS[k].
_SHIFTS = tuple(_BASE_SHIFT + _FAN_SHIFT * k for k in range(_LEVELS))

_key_of = attrgetter("key")


class _Bucket:
    """One wheel slot: its entries plus its own (level, idx) address."""

    __slots__ = ("entries", "level", "idx")

    def __init__(self, level: int, idx: int) -> None:
        self.entries: list = []
        self.level = level
        self.idx = idx


class TimerWheel:
    """Hierarchical timing wheel over :class:`PeriodicHandle` entries."""

    __slots__ = ("_slots", "_occupied", "_time", "_count", "_near", "_far",
                 "_min_cache", "_ins")

    def __init__(self) -> None:
        self._slots: List[List[_Bucket]] = [
            [_Bucket(level, idx) for idx in range(1 << _FAN_SHIFT)]
            for level in range(_LEVELS)]
        self._occupied = [0] * _LEVELS
        self._time = 0          # wheel cursor (ns); only moves forward
        self._count = 0         # total entries, side-lists included
        self._near: list = []   # (key, handle) behind the cursor
        self._far: list = []    # (key, handle) beyond the horizon
        self._min_cache: Optional["PeriodicHandle"] = None
        #: Monotone insertion generation.  The batched run loops compare
        #: it around callbacks to learn whether a callback armed a new
        #: periodic (which may be due inside the current dispatch
        #: window) without paying a wheel scan per event.
        self._ins = 0

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Insert / remove
    # ------------------------------------------------------------------
    def insert(self, handle: "PeriodicHandle") -> None:
        """File *handle* by its ``when``; O(levels)."""
        self._count += 1
        self._ins += 1
        cache = self._min_cache
        if cache is not None and handle.key < cache.key:
            self._min_cache = handle
        # Inlined common case of _file (re-arm hot path): the expiry is
        # at or ahead of the cursor and inside the top-level horizon.
        when = handle.when
        t = self._time
        if when >= t:
            level = ((when ^ t).bit_length() - _BASE_SHIFT - 1) // _FAN_SHIFT
            if level < 0:
                level = 0
            if level < _LEVELS:
                idx = (when >> _SHIFTS[level]) & _SLOT_MASK
                bucket = self._slots[level][idx]
                bucket.entries.append(handle)
                handle._bucket = bucket
                self._occupied[level] |= 1 << idx
                return
        self._file(handle)

    def _file(self, handle: "PeriodicHandle") -> None:
        when = handle.when
        t = self._time
        if when < t:
            insort(self._near, (handle.key, handle))
            handle._bucket = self._near
            return
        # The level is set by the highest bit in which `when` differs
        # from the cursor: same level-k slab iff that bit is below the
        # slab's width.  One xor + bit_length replaces a level loop.
        level = ((when ^ t).bit_length() - _BASE_SHIFT - 1) // _FAN_SHIFT
        if level < 0:
            level = 0
        elif level >= _LEVELS:
            insort(self._far, (handle.key, handle))
            handle._bucket = self._far
            return
        idx = (when >> _SHIFTS[level]) & _SLOT_MASK
        bucket = self._slots[level][idx]
        bucket.entries.append(handle)
        handle._bucket = bucket
        self._occupied[level] |= 1 << idx

    def remove(self, handle: "PeriodicHandle") -> None:
        """Unlink a (cancelled or fired) handle from its container."""
        bucket = handle._bucket
        if bucket is None:
            return
        handle._bucket = None
        self._count -= 1
        if self._min_cache is handle:
            self._min_cache = None
        if type(bucket) is _Bucket:
            entries = bucket.entries
            entries.remove(handle)
            if not entries:
                self._occupied[bucket.level] &= ~(1 << bucket.idx)
            return
        bucket.remove((handle.key, handle))

    # ------------------------------------------------------------------
    # Min queries
    # ------------------------------------------------------------------
    def peek(self) -> Optional["PeriodicHandle"]:
        """The earliest live entry by packed key, or None."""
        if self._count == 0:
            return None
        cached = self._min_cache
        if cached is not None:
            return cached
        best = self._wheel_min()
        near = self._near
        if near:
            key, handle = near[0]
            if best is None or key < best.key:
                best = handle
        far = self._far
        if far:
            key, handle = far[0]
            if best is None or key < best.key:
                best = handle
        self._min_cache = best
        return best

    def pop_min(self) -> Optional["PeriodicHandle"]:
        """Remove and return the earliest entry.

        Fully self-contained (the find and the unlink are inlined
        rather than delegated to ``peek``/``remove``): this is the
        engine's once-per-tick call when only wheel events remain, so
        every stack frame shed here is a frame per periodic fire.
        """
        handle = self._min_cache
        if handle is None:
            if self._count == 0:
                return None
            handle = self.peek()
            if handle is None:
                return None
        self._min_cache = None
        self._count -= 1
        bucket = handle._bucket
        handle._bucket = None
        if type(bucket) is _Bucket:
            entries = bucket.entries
            entries.remove(handle)
            if not entries:
                self._occupied[bucket.level] &= ~(1 << bucket.idx)
        else:
            bucket.remove((handle.key, handle))
        return handle

    def extract_upto(self, limit_key: int, out: list) -> int:
        """Move every entry with packed key <= *limit_key* into *out*.

        Entries are appended (or merged, if *out* is non-empty) as
        ``(key, handle)`` pairs in ascending key order and unlinked from
        the wheel, so *out* becomes a ready-to-dispatch sorted run and
        the wheel retains only entries beyond the window.  This folds
        the cascade into run extraction: instead of a bitmap scan, a
        cascade check and an unlink *per fire*, the batched engine
        loops pay them once per window and then dispatch/re-arm against
        a flat sorted list.  Returns the number of entries moved.
        """
        moved = 0
        merge = bool(out)
        while self._count:
            handle = self._min_cache
            if handle is None:
                handle = self.peek()
            key = handle.key
            if key > limit_key:
                break
            # Inlined unlink of the cached minimum (cf. pop_min).
            self._min_cache = None
            self._count -= 1
            bucket = handle._bucket
            handle._bucket = None
            if type(bucket) is _Bucket:
                entries = bucket.entries
                entries.remove(handle)
                if not entries:
                    self._occupied[bucket.level] &= ~(1 << bucket.idx)
            else:
                bucket.remove((key, handle))
            if merge:
                insort(out, (key, handle))
            else:
                out.append((key, handle))
            moved += 1
        return moved

    def _wheel_min(self) -> Optional["PeriodicHandle"]:
        """Earliest entry held in the wheel proper, cascading as needed."""
        while True:
            occ0 = self._occupied[0]
            if occ0:
                cursor = (self._time >> _BASE_SHIFT) & _SLOT_MASK
                ahead = occ0 >> cursor
                if ahead:
                    idx = cursor + ((ahead & -ahead).bit_length() - 1)
                    entries = self._slots[0][idx].entries
                    if len(entries) == 1:
                        return entries[0]
                    return min(entries, key=_key_of)
            if not self._cascade():
                return None

    def _cascade(self) -> bool:
        """Advance the cursor to the next occupied higher-level slot and
        re-file that slot's entries one level down.  Returns False when
        the wheel proper is empty."""
        for level in range(1, _LEVELS):
            occ = self._occupied[level]
            if not occ:
                continue
            # Occupied slots at levels >= 1 always sit strictly ahead
            # of the cursor slot (same-slab entries live lower), so the
            # lowest set bit is the next one to expire.
            idx = (occ & -occ).bit_length() - 1
            shift = _BASE_SHIFT + _FAN_SHIFT * level
            slab = (self._time >> (shift + _FAN_SHIFT)) << (shift + _FAN_SHIFT)
            self._time = slab | (idx << shift)
            bucket = self._slots[level][idx]
            pending = bucket.entries
            bucket.entries = []
            self._occupied[level] = occ & ~(1 << idx)
            for handle in pending:
                self._file(handle)
            return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def handles(self) -> Iterator["PeriodicHandle"]:
        """Every live entry, in no particular order (teardown aid)."""
        for level in self._slots:
            for bucket in level:
                yield from bucket.entries
        for _, handle in self._near:
            yield handle
        for _, handle in self._far:
            yield handle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TimerWheel n={self._count} t={self._time}>"
