"""Exception hierarchy for the simulator."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulator errors."""


class SchedulingInPastError(SimError):
    """An event was scheduled before the current simulation time."""


class SimulationStalledError(SimError):
    """run_until() was asked to advance but no events remain."""


class KernelPanic(SimError):
    """An invariant of the simulated kernel was violated.

    Raised when the simulated machine reaches a state a real kernel
    would treat as a bug (double lock release, scheduling a running
    task, negative preempt_count, ...).  Tests rely on these being
    loud rather than silently absorbed.
    """


class InvalidMaskError(SimError):
    """A CPU mask was empty or referenced CPUs not present."""
