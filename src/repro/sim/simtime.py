"""Time units and formatting helpers.

All simulation time is kept as integer nanoseconds.  Integer time makes
event ordering exact and reproducible: there is no floating-point drift
between a 2048 Hz RTC period and an 8-hour run, which matters when the
quantity under study is the *difference* between two nearby timestamps.
"""

from __future__ import annotations

#: One nanosecond (the base unit).
NSEC = 1
#: One microsecond in nanoseconds.
USEC = 1_000
#: One millisecond in nanoseconds.
MSEC = 1_000_000
#: One second in nanoseconds.
SEC = 1_000_000_000


def ns_to_us(ns: int) -> float:
    """Convert integer nanoseconds to floating-point microseconds."""
    return ns / USEC


def ns_to_ms(ns: int) -> float:
    """Convert integer nanoseconds to floating-point milliseconds."""
    return ns / MSEC


def ns_to_s(ns: int) -> float:
    """Convert integer nanoseconds to floating-point seconds."""
    return ns / SEC


def us(value: float) -> int:
    """Microseconds -> integer nanoseconds (rounded)."""
    return int(round(value * USEC))


def ms(value: float) -> int:
    """Milliseconds -> integer nanoseconds (rounded)."""
    return int(round(value * MSEC))


def s(value: float) -> int:
    """Seconds -> integer nanoseconds (rounded)."""
    return int(round(value * SEC))


def format_ns(ns: int) -> str:
    """Render a duration with a human-appropriate unit.

    >>> format_ns(1_500)
    '1.500us'
    >>> format_ns(92_300_000)
    '92.300ms'
    """
    if ns < USEC:
        return f"{ns}ns"
    if ns < MSEC:
        return f"{ns / USEC:.3f}us"
    if ns < SEC:
        return f"{ns / MSEC:.3f}ms"
    return f"{ns / SEC:.3f}s"
