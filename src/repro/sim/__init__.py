"""Discrete-event simulation engine underlying the linsim kernel model.

The engine provides an integer-nanosecond clock, a cancellable event
heap, named deterministic random-number substreams, and a lightweight
tracing facility.  Everything above this package (hardware, kernel,
workloads) is written in terms of :class:`~repro.sim.engine.Simulator`
events.
"""

from repro.sim.engine import Simulator
from repro.sim.events import EventHandle
from repro.sim.rng import RngStreams
from repro.sim.simtime import (
    NSEC,
    USEC,
    MSEC,
    SEC,
    ns_to_ms,
    ns_to_us,
    ns_to_s,
    format_ns,
)
from repro.sim.trace import TraceBuffer, TraceRecord

__all__ = [
    "Simulator",
    "EventHandle",
    "RngStreams",
    "TraceBuffer",
    "TraceRecord",
    "NSEC",
    "USEC",
    "MSEC",
    "SEC",
    "ns_to_ms",
    "ns_to_us",
    "ns_to_s",
    "format_ns",
]
