"""The typed fault injectors.

Each injector hooks one existing hw/kernel mechanism -- the APIC, a
device's interrupt line, the kernel task layer, the per-CPU local
timer, the shield controller -- and perturbs it on a deterministic
schedule drawn from the injector's own named RNG stream.  Injectors
are built by the :class:`~repro.faults.controller.FaultController`
from :class:`~repro.faults.plan.InjectorSpec` data and must:

* do **nothing** (no events, no RNG draws, no hooks) until
  :meth:`install` runs -- a constructed-but-uninstalled subsystem is
  invisible, which is what the disabled-byte-identity tests pin down;
* restore every hook they placed in :meth:`uninstall`;
* report each injection through :meth:`Injector.emit`, which lands on
  the controller's timeline and (when tracing is on) the
  ``TP.FAULT_INJECT`` tracepoint.

Intensity semantics are per-kind but uniformly monotonic: higher
intensity means more frequent storms, longer holds, larger drift.
Intensity 0 never reaches an injector -- the controller short-circuits
to a full no-op first.

Lockdep composition: injectors register IRQ handlers and spawn kernel
tasks through the public ``Kernel`` entry points, so when a
:class:`~repro.analysis.lockdep.LockdepValidator` is installed first
(the :func:`~repro.experiments.scenario.run_scenario` order), every
injected handler and rogue critical section runs under lockdep's
wrapped paths -- long irq-off windows trip the configured hold
budgets as ordinary violations instead of crashing the checker.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type, TYPE_CHECKING

from repro.core.affinity import CpuMask
from repro.kernel import ops as op

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.experiments.harness import Bench
    from repro.faults.controller import FaultController
    from repro.faults.plan import InjectorSpec


class UnknownInjectorError(KeyError):
    """An :class:`InjectorSpec` names a kind with no implementation."""


class Injector:
    """Base class: one typed interference mechanism."""

    kind = "?"

    def __init__(self, key: str, spec: "InjectorSpec",
                 controller: "FaultController") -> None:
        self.key = key
        self.spec = spec
        self.controller = controller
        self.bench: Optional["Bench"] = None
        self.rng: Optional["np.random.Generator"] = None
        self.intensity = 1.0

    def param(self, name: str, default: Any = None) -> Any:
        return self.spec.param(name, default)

    def emit(self, cpu: int, detail: str) -> None:
        """Record one injection on the controller timeline."""
        self.controller.record(self.key, cpu, detail)

    # ------------------------------------------------------------------
    def install(self, bench: "Bench", rng: "np.random.Generator",
                intensity: float) -> "Injector":
        self.bench = bench
        self.rng = rng
        self.intensity = float(intensity)
        self.on_install()
        return self

    def uninstall(self) -> None:
        self.on_uninstall()

    def on_install(self) -> None:
        raise NotImplementedError

    def on_uninstall(self) -> None:
        """Undo every hook placed in :meth:`on_install`."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.key} x{self.intensity:g}>"


# ----------------------------------------------------------------------
class IrqStormInjector(Injector):
    """Floods its own interrupt line through the normal APIC path.

    The line behaves exactly like a device interrupt: it has a
    requested affinity the shield rewrites, so a shielded CPU never
    sees the storm -- which is the margin the storm scenarios measure.
    Bursts draw from the injector stream; the handler is the default
    (calibrated) no-op handler.
    """

    kind = "irq-storm"

    def on_install(self) -> None:
        bench = self.bench
        self._irq = int(self.param("irq", 96))
        name = str(self.param("name", "storm"))
        self._desc = bench.machine.apic.register_irq(
            self._irq, f"fault:{name}")
        bench.kernel.register_irq_handler(
            self._irq, "irq.handler.default", _storm_action)
        # Honour any shield already applied to this machine.
        bench.machine.on_irq_affinity_changed(self._desc)
        rate_hz = float(self.param("rate_hz", 500.0)) * self.intensity
        period = max(int(1e9 / rate_hz), 10_000)
        self._burst_max = max(int(self.param("burst_max", 3)), 1)
        self._pacer = bench.sim.periodic(
            period, self._fire, label=f"fault:{self.key}")

    def _fire(self) -> None:
        burst = int(self.rng.integers(1, self._burst_max + 1))  # lint: ok(scalar-rng)
        apic = self.bench.machine.apic
        for _ in range(burst):
            apic.raise_irq(self._irq)
        self.emit(self._desc.effective_affinity.first(),
                  f"irq{self._irq} burst={burst}")

    def on_uninstall(self) -> None:
        self._pacer.cancel()


def _storm_action(cpu_idx: int) -> None:
    """Storm top half: ack and return (cost comes from the handler
    duration key)."""


# ----------------------------------------------------------------------
class IrqMisrouteInjector(Injector):
    """Periodically steers a device's interrupt to one fixed CPU.

    Models a flaky IO-APIC redirection entry: the *effective* affinity
    register is overwritten at the hardware level for a window, then
    recomputed through the kernel's normal shield-aware path.  Writing
    the effective mask (not the requested one) keeps delivery and mask
    consistent, so lockdep's shield-affinity check stays satisfied --
    the fault is misdirection, not a routing contract violation.
    """

    kind = "irq-misroute"

    def on_install(self) -> None:
        bench = self.bench
        device = bench.machine.device(str(self.param("device", "eth0")))
        self._desc = device.irq_desc
        self._target = int(self.param("target_cpu", 0))
        period = int(self.param("period_ns", 30_000_000))
        window = int(self.param("window_ns", 10_000_000) * self.intensity)
        self._window = min(window, (period * 9) // 10)
        self._pacer = bench.sim.periodic(
            period, self._start_window, label=f"fault:{self.key}")

    def _start_window(self) -> None:
        self._desc.effective_affinity = CpuMask.single(self._target)
        self.emit(self._target,
                  f"irq{self._desc.irq}->cpu{self._target} "
                  f"for {self._window}ns")
        self.bench.sim.after(self._window, self._end_window,
                             label=f"fault:{self.key}:restore")

    def _end_window(self) -> None:
        # Recompute from the requested mask through the shield path.
        self.bench.machine.on_irq_affinity_changed(self._desc)

    def on_uninstall(self) -> None:
        self._pacer.cancel()
        self.bench.machine.on_irq_affinity_changed(self._desc)


# ----------------------------------------------------------------------
class DeviceIrqInjector(Injector):
    """Lost, spurious or stuck interrupts on a real device's line.

    * ``lost``: each device raise is dropped with probability
      ``prob * intensity`` (the driver never hears about the event;
      block completions are recovered by the next real interrupt's
      drain loop, exactly like real lost-completion bugs).
    * ``spurious``: extra raises with no device event behind them, at
      ``rate_hz * intensity``.
    * ``stuck``: a raise re-asserts ``extra`` additional times with
      probability ``prob * intensity`` (a screaming line).
    """

    kind = "device-irq"

    def on_install(self) -> None:
        bench = self.bench
        self._device = bench.machine.device(str(self.param("device",
                                                           "nic")))
        self._mode = str(self.param("mode", "spurious"))
        self._pacer = None
        self._wrapped = False
        if self._mode == "spurious":
            rate_hz = float(self.param("rate_hz", 100.0)) * self.intensity
            period = max(int(1e9 / rate_hz), 10_000)
            self._pacer = bench.sim.periodic(
                period, self._spurious, label=f"fault:{self.key}")
            return
        prob = min(float(self.param("prob", 0.05)) * self.intensity, 1.0)
        self._prob = prob
        self._extra = max(int(self.param("extra", 2)), 1)
        device = self._device
        orig = device.raise_irq
        rng = self.rng
        if self._mode == "lost":
            def raise_irq() -> None:
                if float(rng.random()) < prob:
                    self.emit(0, f"lost irq{device.irq} ({device.name})")
                    return
                orig()
        elif self._mode == "stuck":
            def raise_irq() -> None:
                orig()
                if float(rng.random()) < prob:
                    for _ in range(self._extra):
                        orig()
                    self.emit(0, f"stuck irq{device.irq} "
                                 f"x{self._extra} ({device.name})")
        else:
            raise ValueError(f"device-irq mode {self._mode!r} "
                             f"(use lost/spurious/stuck)")
        device.raise_irq = raise_irq
        self._wrapped = True

    def _spurious(self) -> None:
        self._device.raise_irq()
        self.emit(0, f"spurious irq{self._device.irq} "
                     f"({self._device.name})")

    def on_uninstall(self) -> None:
        if self._pacer is not None:
            self._pacer.cancel()
        if self._wrapped:
            self._device.__dict__.pop("raise_irq", None)


# ----------------------------------------------------------------------
class RogueTaskInjector(Injector):
    """A kernel thread that periodically camps on a global lock.

    ``lock="bkl"`` reproduces the paper's millisecond BKL holds;
    ``lock="io_request_lock"`` (irq-disabling) produces long irq-off
    windows -- the two pathologies the shield exists to keep away from
    the real-time CPU.  Holds run as non-preemptible kernel compute,
    so an RT task on the same CPU waits out the full hold.
    """

    kind = "rogue-task"

    def on_install(self) -> None:
        kernel = self.bench.kernel
        lock_name = str(self.param("lock", "bkl"))
        lock = getattr(kernel.locks, lock_name)
        hold = max(int(int(self.param("hold_ns", 1_000_000))
                       * self.intensity), 1_000)
        period = max(int(self.param("period_ns", 15_000_000)), 100_000)
        self._active = True
        rng = self.rng
        injector = self

        def body():
            while True:
                gap = int(rng.integers(period // 2, period + 1))  # lint: ok(scalar-rng)
                yield op.Sleep(gap)
                if not injector._active:
                    return
                injector.emit(kernel.dispatching_cpu or 0,
                              f"hold {lock_name} {hold}ns")
                yield op.Acquire(lock)
                yield op.Compute(hold, kernel=True, label="fault:rogue")
                yield op.Release(lock)

        self._task = kernel.create_task(
            f"fault:rogue-{lock_name}", body(), kernel_thread=True)

    def on_uninstall(self) -> None:
        # The loop parks itself at its next wakeup; no forced teardown
        # (killing a task mid-critical-section would trip the very
        # invariants lockdep watches).
        self._active = False


# ----------------------------------------------------------------------
class TickJitterInjector(Injector):
    """Drifts every live local-timer tick period around its nominal.

    Re-jitters each CPU's ``PeriodicHandle`` period every
    ``period_ns``; shielded CPUs with the ltmr mask set have no live
    handle and are untouched.  Uninstall restores the nominal tick.
    """

    kind = "tick-jitter"

    def on_install(self) -> None:
        kernel = self.bench.kernel
        self._tick = kernel.config.tick_ns
        self._drift = min(float(self.param("drift", 0.05))
                          * self.intensity, 0.9)
        period = int(self.param("period_ns", 25_000_000))
        self._pacer = self.bench.sim.periodic(
            period, self._fire, label=f"fault:{self.key}")

    def _live_handles(self):
        timer = self.bench.kernel.local_timer
        for cpu in sorted(timer._events):
            handle = timer._events[cpu]
            if handle is not None and handle.alive:
                yield cpu, handle

    def _fire(self) -> None:
        rng = self.rng
        tick = self._tick
        drift = self._drift
        jittered = 0
        for _cpu, handle in self._live_handles():
            skew = 1.0 + drift * (2.0 * float(rng.random()) - 1.0)
            handle.set_period(max(int(tick * skew), tick // 2))
            jittered += 1
        self.emit(0, f"tick drift<={drift:.3f} on {jittered} cpu(s)")

    def on_uninstall(self) -> None:
        self._pacer.cancel()
        for _cpu, handle in self._live_handles():
            handle.set_period(self._tick)


# ----------------------------------------------------------------------
class ShieldFlipInjector(Injector):
    """Drops the shield on one CPU for a window, then restores it.

    Models an operator (or init script) rewriting ``/proc/shield``
    mid-run.  A no-op on scenarios that never shielded the CPU, so the
    injector only perturbs configurations that had protection to lose.
    """

    kind = "shield-flip"

    def on_install(self) -> None:
        self._cpu = int(self.param("cpu", 1))
        period = int(self.param("period_ns", 40_000_000))
        window = int(self.param("window_ns", 5_000_000) * self.intensity)
        self._window = min(window, (period * 9) // 10)
        self._saved = None
        self._pacer = self.bench.sim.periodic(
            period, self._flip, label=f"fault:{self.key}")

    def _flip(self) -> None:
        shield = self.bench.kernel.shield
        if (shield is None or self._saved is not None
                or not shield.is_shielded(self._cpu)):
            return
        self._saved = shield.state
        shield.unshield_cpu(self._cpu)
        self.emit(self._cpu, f"unshield cpu{self._cpu} "
                             f"for {self._window}ns")
        self.bench.sim.after(self._window, self._restore,
                             label=f"fault:{self.key}:restore")

    def _restore(self) -> None:
        saved = self._saved
        self._saved = None
        if saved is None:
            return
        shield = self.bench.kernel.shield
        if shield is not None:
            shield.set_masks(procs=saved.procs, irqs=saved.irqs,
                             ltmr=saved.ltmr)
            self.emit(self._cpu, f"reshield cpu{self._cpu}")

    def on_uninstall(self) -> None:
        self._pacer.cancel()
        saved = self._saved
        self._saved = None
        if saved is not None:
            shield = self.bench.kernel.shield
            if shield is not None:
                shield.set_masks(procs=saved.procs, irqs=saved.irqs,
                                 ltmr=saved.ltmr)


# ----------------------------------------------------------------------
INJECTOR_KINDS: Dict[str, Type[Injector]] = {
    cls.kind: cls
    for cls in (IrqStormInjector, IrqMisrouteInjector, DeviceIrqInjector,
                RogueTaskInjector, TickJitterInjector, ShieldFlipInjector)
}


def build_injector(key: str, spec: "InjectorSpec",
                   controller: "FaultController") -> Injector:
    """Instantiate the implementation class for one spec."""
    try:
        cls = INJECTOR_KINDS[spec.kind]
    except KeyError:
        raise UnknownInjectorError(
            f"unknown injector kind {spec.kind!r}; known: "
            f"{sorted(INJECTOR_KINDS)}") from None
    return cls(key, spec, controller)
