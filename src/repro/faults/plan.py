"""Declarative fault plans: typed interference, as plain data.

A :class:`FaultPlan` mirrors :class:`~repro.experiments.scenario.
ScenarioSpec`: a frozen, picklable description of *what* interference
to inject -- which injector kinds, with which parameters, at which
baseline intensity.  Plans carry no live state; the
:class:`~repro.faults.controller.FaultController` instantiates the
injectors against a bench at run time.

The plan *registry* maps stable names ("storm-fig6", "rogue-irqoff")
to plans, exactly like the scenario registry, so campaign workers can
rebuild a fault campaign from nothing but strings.  Intensity composes
multiplicatively: ``plan.scaled(2.0)`` doubles every rate, hold window
and drift the plan's injectors derive from it, which is what the
margin ladder (:mod:`repro.faults.margin`) sweeps.

Naming convention: every simfault-owned task, IRQ line and pacer is
named ``fault:*`` (:data:`repro.observe.attribution.FAULT_PREFIX`),
which is how simtrace attribution blames injected interference without
any extra plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Tuple

from repro.sim.simtime import MSEC, USEC


class UnknownFaultPlanError(KeyError):
    """Lookup of a fault plan name that is not registered."""


@dataclass(frozen=True)
class InjectorSpec:
    """One typed injector: a kind plus its (sorted, hashable) params."""

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default


def injector(kind: str, **params: Any) -> InjectorSpec:
    """Build an :class:`InjectorSpec` with deterministically ordered
    params."""
    return InjectorSpec(kind=kind, params=tuple(sorted(params.items())))


@dataclass(frozen=True)
class FaultPlan:
    """A named, composable set of injectors (plain picklable data)."""

    name: str
    title: str
    injectors: Tuple[InjectorSpec, ...]
    intensity: float = 1.0
    description: str = ""

    def scaled(self, intensity: float) -> "FaultPlan":
        """Copy with the baseline intensity replaced (0 disables)."""
        return replace(self, intensity=float(intensity))

    def kinds(self) -> List[str]:
        return [spec.kind for spec in self.injectors]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_PLANS: Dict[str, FaultPlan] = {}


def register_fault_plan(plan: FaultPlan,
                        replace_existing: bool = False) -> FaultPlan:
    if plan.name in _PLANS and not replace_existing:
        raise ValueError(f"fault plan {plan.name!r} already registered")
    _PLANS[plan.name] = plan
    return plan


def fault_plan(name: str) -> FaultPlan:
    """Look up a registered fault plan by name."""
    try:
        return _PLANS[name]
    except KeyError:
        raise UnknownFaultPlanError(
            f"unknown fault plan {name!r}; registered: "
            f"{fault_plan_names()}") from None


def fault_plan_names() -> List[str]:
    return sorted(_PLANS)


def all_fault_plans() -> List[FaultPlan]:
    return [_PLANS[n] for n in sorted(_PLANS)]


# ----------------------------------------------------------------------
# Built-in plans
# ----------------------------------------------------------------------
# Storm plans: the interference ladders the storm-* scenarios rerun
# fig5-fig7 under.  The composition deliberately attacks through the
# mechanisms the paper measures: extra hardirq load (steerable, so the
# shield defends against it), rogue critical sections (BKL holds and
# irq-off windows the shield's process mask keeps off the shielded
# CPU), and tick drift (moot on a shielded CPU, whose ltmr is off).
register_fault_plan(FaultPlan(
    name="storm-fig5",
    title="Figure 5 storm (IRQ flood + rogue BKL + tick drift)",
    injectors=(
        injector("irq-storm", irq=96, name="storm0",
                 rate_hz=600.0, burst_max=4),
        injector("rogue-task", lock="bkl",
                 hold_ns=1_500 * USEC, period_ns=18 * MSEC),
        injector("tick-jitter", drift=0.05, period_ns=25 * MSEC),
    ),
    description="escalating interference on the unshielded fig5 testbed",
))

register_fault_plan(FaultPlan(
    name="storm-fig6",
    title="Figure 6 storm (two IRQ floods + rogue BKL/irq-off + drift)",
    injectors=(
        injector("irq-storm", irq=96, name="storm0",
                 rate_hz=800.0, burst_max=4),
        injector("irq-storm", irq=97, name="storm1",
                 rate_hz=400.0, burst_max=3),
        injector("rogue-task", lock="bkl",
                 hold_ns=2 * MSEC, period_ns=15 * MSEC),
        injector("rogue-task", lock="io_request_lock",
                 hold_ns=400 * USEC, period_ns=9 * MSEC),
        injector("irq-misroute", device="sda", target_cpu=0,
                 period_ns=30 * MSEC, window_ns=8 * MSEC),
        injector("tick-jitter", drift=0.05, period_ns=25 * MSEC),
    ),
    description="the shield-margin reference storm for the fig6 setup",
))

register_fault_plan(FaultPlan(
    name="storm-fig7",
    title="Figure 7 storm (IRQ flood + rogue BKL + spurious disk irqs)",
    injectors=(
        injector("irq-storm", irq=96, name="storm0",
                 rate_hz=700.0, burst_max=4),
        injector("rogue-task", lock="bkl",
                 hold_ns=1_200 * USEC, period_ns=12 * MSEC),
        injector("device-irq", device="sda", mode="spurious",
                 rate_hz=120.0),
        injector("tick-jitter", drift=0.05, period_ns=25 * MSEC),
    ),
    description="interference ladder for the RCIM ioctl path",
))

# Focused single-mechanism plans (lockdep composition, chaos testing).
register_fault_plan(FaultPlan(
    name="rogue-irqoff",
    title="Rogue irq-off windows (io_request_lock holds)",
    injectors=(
        injector("rogue-task", lock="io_request_lock",
                 hold_ns=500 * USEC, period_ns=5 * MSEC),
    ),
    description="long irq-disabled critical sections; trips lockdep "
                "hold budgets when they are configured",
))

register_fault_plan(FaultPlan(
    name="shield-flap",
    title="Shield mask flips mid-run",
    injectors=(
        injector("shield-flip", cpu=1,
                 period_ns=40 * MSEC, window_ns=5 * MSEC),
    ),
    description="periodically drops and restores the shield on CPU 1",
))

register_fault_plan(FaultPlan(
    name="device-chaos",
    title="Lost / spurious / stuck device interrupts",
    injectors=(
        injector("device-irq", device="eth0", mode="lost", prob=0.08),
        injector("device-irq", device="eth0", mode="spurious",
                 rate_hz=80.0),
        injector("device-irq", device="sda", mode="stuck",
                 prob=0.05, extra=3),
    ),
    description="flaky-hardware interrupt pathologies on eth0 and sda",
))
