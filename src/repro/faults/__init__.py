"""simfault: deterministic fault & interference injection.

Declarative :class:`FaultPlan` data composes typed injectors (IRQ
storms, misrouted/lost/spurious/stuck interrupts, rogue kernel lock
holders, tick jitter, shield flips) against a running bench, each
drawing from its own named RNG stream so injection timelines are
byte-identical across campaign worker counts.  Importing this package
never perturbs a simulation -- only an installed, enabled
:class:`FaultController` does.
"""

from repro.faults.controller import FaultController
from repro.faults.injectors import (
    INJECTOR_KINDS,
    Injector,
    UnknownInjectorError,
    build_injector,
)
from repro.faults.margin import (
    DEFAULT_INTENSITIES,
    MarginJob,
    MarginResult,
    MarginSpec,
    run_margin,
)
from repro.faults.plan import (
    FaultPlan,
    InjectorSpec,
    UnknownFaultPlanError,
    all_fault_plans,
    fault_plan,
    fault_plan_names,
    injector,
    register_fault_plan,
)
from repro.faults.twindiff import (
    TwinDiffResult,
    TwinDiffSpec,
    run_twin_diff,
)

__all__ = [
    "DEFAULT_INTENSITIES",
    "FaultController",
    "FaultPlan",
    "INJECTOR_KINDS",
    "Injector",
    "InjectorSpec",
    "MarginJob",
    "MarginResult",
    "MarginSpec",
    "TwinDiffResult",
    "TwinDiffSpec",
    "UnknownFaultPlanError",
    "UnknownInjectorError",
    "all_fault_plans",
    "build_injector",
    "fault_plan",
    "fault_plan_names",
    "injector",
    "register_fault_plan",
    "run_margin",
    "run_twin_diff",
]
