"""Shield-margin measurement: how much interference can the shield eat?

The *shield margin* of a scenario is the maximum fault-plan intensity
at which the shielded configuration's worst-case latency still meets
its bound, measured against an unshielded twin of the same scenario
run under the identical storm.  The ladder sweeps an intensity axis
(default 0.25x .. 4x the plan baseline); each rung runs two cells:

* **shielded** -- the scenario as registered (full shield);
* **unshielded** -- the same spec with the shield stripped
  (``ShieldSpec()``), everything else identical.

Both cells of a rung share the scenario seed; fault injection draws
from named child streams, so a rung's injection timeline is a pure
function of (seed, plan, intensity) -- the per-cell digests in the
report prove byte-for-byte identical injection across worker counts.

Execution mirrors :class:`~repro.experiments.campaign.CampaignRunner`:
deterministic job expansion, a fork pool streaming unordered results,
and reassembly in expansion order, so ``--workers 1`` and
``--workers 4`` produce identical JSON.

The ladder also shares the campaign's content-addressed result store:
each cell is keyed by its full :class:`ScenarioSpec` (which carries
the plan, intensity and shield wiring), so shielded/unshielded twins,
repeated ladder invocations, overlapping intensity ladders, and plain
campaign/storm runs of the same spec all reuse one cached run.  Cells
that stall (interference too heavy to finish) are cached as stalled
markers and reported as unbounded without re-running.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.scenario import (
    ScenarioResult,
    ScenarioSpec,
    ShieldSpec,
    run_scenario,
    scenario,
)
from repro.sim.errors import SimulationStalledError
from repro.sim.simtime import MSEC
from repro.store import job_key, open_store
from repro.store.keys import code_version

#: Default intensity ladder (multiples of the plan's baseline).
DEFAULT_INTENSITIES = (0.25, 0.5, 1.0, 2.0, 4.0)


@dataclass(frozen=True)
class MarginSpec:
    """One margin sweep, as plain picklable data."""

    scenario: str
    plan: str
    intensities: Tuple[float, ...] = DEFAULT_INTENSITIES
    #: The latency bound the shielded config must hold (paper claim:
    #: sub-millisecond worst case on the shielded CPU).
    bound_ns: int = 1 * MSEC
    samples: Optional[int] = None
    seed: Optional[int] = None

    def expand(self) -> List["MarginJob"]:
        """Two cells (shielded, unshielded) per intensity rung."""
        if not self.intensities:
            raise ValueError("a margin sweep needs at least one intensity")
        base = scenario(self.scenario).configured(
            samples=self.samples, seed=self.seed,
            fault_plan=self.plan)
        jobs: List[MarginJob] = []
        for intensity in self.intensities:
            rung = base.configured(fault_intensity=intensity)
            jobs.append(MarginJob(index=len(jobs), intensity=intensity,
                                  shielded=True, spec=rung))
            jobs.append(MarginJob(
                index=len(jobs), intensity=intensity, shielded=False,
                spec=rung.with_overrides(
                    shield=ShieldSpec(cpu=rung.shield.cpu))))
        return jobs


@dataclass(frozen=True)
class MarginJob:
    """One (intensity, shielded?) cell of the sweep."""

    index: int
    intensity: float
    shielded: bool
    spec: ScenarioSpec


def _run_margin_job(job: MarginJob
                    ) -> Tuple[int, Optional[ScenarioResult],
                               Optional[str]]:
    """Worker entry point (module-level: must pickle under spawn).

    A stalled simulation -- interference so heavy the measurement
    never finishes inside its budget -- counts as an unbounded cell,
    not an error: that is exactly the degradation the margin measures.
    Returns ``(index, result, None)`` or ``(index, None, error)`` so
    the parent can both build the cell and persist the full run.
    """
    try:
        result = run_scenario(job.spec)
    except SimulationStalledError as exc:
        return job.index, None, str(exc)
    return job.index, result, None


def cell_from_result(result: ScenarioResult) -> Dict[str, Any]:
    """One ladder cell from a completed run.

    Public because it is the *only* way a run becomes a cell: the
    in-process runner, the store-hit path and the simserve scheduler
    all fold through here, which is what keeps a ladder's JSON
    byte-identical whatever executed its cells.
    """
    faults = result.faults
    cell: Dict[str, Any] = {
        "stalled": False,
        "max_ns": int(result.recorder.max()),
        "faults": None,
    }
    if faults is not None:
        cell["faults"] = {"injections": faults["injections"],
                          "digest": faults["digest"],
                          "by_injector": faults["by_injector"]}
    return cell


def stalled_cell(error: str) -> Dict[str, Any]:
    return {"stalled": True, "max_ns": None, "error": error,
            "faults": None}


@dataclass
class MarginResult:
    """The sweep outcome plus the derived margin."""

    spec: MarginSpec
    jobs: List[MarginJob]
    cells: List[Dict[str, Any]]
    workers: int = 1
    rungs: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.rungs:
            self.rungs = self._fold()

    def _fold(self) -> List[Dict[str, Any]]:
        rungs: List[Dict[str, Any]] = []
        bound = self.spec.bound_ns
        for i in range(0, len(self.jobs), 2):
            shielded, unshielded = self.cells[i], self.cells[i + 1]
            rungs.append({
                "intensity": self.jobs[i].intensity,
                "shielded": shielded,
                "unshielded": unshielded,
                "shielded_within_bound": _within(shielded, bound),
                "unshielded_within_bound": _within(unshielded, bound),
            })
        return rungs

    # ------------------------------------------------------------------
    def attach_predictions(self, ladder: List[Dict[str, Any]]) -> None:
        """Annotate each rung with simbound's static prediction.

        *ladder* comes from :func:`predicted_ladder` -- the analytic
        twin of the measured sweep.  Each rung gains ``predicted_ns``
        (worst-case shielded response at that intensity, or None when
        the model found no finite bound) and
        ``predicted_within_bound``; a measured cell exceeding its own
        prediction is a model-soundness red flag surfaced in
        :meth:`summary`.
        """
        by_intensity = {r["intensity"]: r for r in ladder}
        for rung in self.rungs:
            pred = by_intensity.get(rung["intensity"])
            if pred is None:
                continue
            rung["predicted_ns"] = pred["predicted_ns"]
            rung["predicted_within_bound"] = pred["within_bound"]

    @property
    def predicted_margin(self) -> Optional[float]:
        """Max intensity whose *predicted* shielded response met the
        bound (None when no rung carries a finite passing bound)."""
        passing = [r["intensity"] for r in self.rungs
                   if r.get("predicted_ns") is not None
                   and r.get("predicted_within_bound")]
        return max(passing) if passing else None

    # ------------------------------------------------------------------
    @property
    def margin(self) -> Optional[float]:
        """Max intensity whose shielded cell met the bound (None if
        even the lowest rung blew it)."""
        passing = [r["intensity"] for r in self.rungs
                   if r["shielded_within_bound"]]
        return max(passing) if passing else None

    @property
    def unshielded_degraded(self) -> bool:
        """Did any rung push the unshielded twin over the bound?"""
        return any(not r["unshielded_within_bound"] for r in self.rungs)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "scenario": self.spec.scenario,
            "plan": self.spec.plan,
            "bound_ns": self.spec.bound_ns,
            "samples": self.spec.samples,
            "seed": self.spec.seed,
            "rungs": self.rungs,
            "margin": self.margin,
            "unshielded_degraded": self.unshielded_degraded,
        }
        if any("predicted_ns" in r for r in self.rungs):
            data["predicted_margin"] = self.predicted_margin
        return data

    def summary(self) -> str:
        bound_us = self.spec.bound_ns / 1e3
        lines = [f"shield margin: {self.spec.scenario} under "
                 f"{self.spec.plan} (bound {bound_us:.0f}us)"]
        for rung in self.rungs:
            line = (f"  x{rung['intensity']:<5g} "
                    f"shielded {_cell_str(rung['shielded'])}  "
                    f"unshielded {_cell_str(rung['unshielded'])}")
            if "predicted_ns" in rung:
                pred = rung["predicted_ns"]
                line += ("  predicted<=unbounded" if pred is None
                         else f"  predicted<={pred / 1e3:8.1f}us")
                cell = rung["shielded"]
                if (pred is not None and not cell["stalled"]
                        and cell["max_ns"] > pred):
                    line += "  !! OBSERVED OVER PREDICTION"
            lines.append(line)
        margin = self.margin
        lines.append(
            f"  margin: x{margin:g}" if margin is not None
            else "  margin: none (shield over bound at every rung)")
        if any("predicted_ns" in r for r in self.rungs):
            pmargin = self.predicted_margin
            lines.append(
                f"  predicted margin: x{pmargin:g}" if pmargin is not None
                else "  predicted margin: none (static bound over 1 ms "
                     "at every rung)")
        if self.unshielded_degraded:
            lines.append("  unshielded twin degraded past the bound")
        return "\n".join(lines)


def predicted_ladder(spec: MarginSpec) -> List[Dict[str, Any]]:
    """simbound's analytic twin of the measured intensity ladder.

    For each rung, re-derives the static worst-case shielded response
    with the fault plan scaled to that intensity (the bound model
    scales injected IRQ rates and rogue hold times exactly as
    :class:`~repro.faults.controller.FaultController` does).  A rung
    where the window fixpoint diverges -- interference outrunning the
    softirq drain budget -- reports ``predicted_ns: None``: the model
    certifies no bound at that intensity, which is itself the margin.
    """
    from repro.analysis.bounds.model import BoundModelError, compute_bounds

    base = scenario(spec.scenario).configured(
        samples=spec.samples, seed=spec.seed, fault_plan=spec.plan)
    ladder: List[Dict[str, Any]] = []
    for intensity in spec.intensities:
        rung = base.configured(fault_intensity=intensity)
        try:
            bounds = compute_bounds(rung)
            predicted = bounds.response_ns
            detail = bounds.response_detail
        except BoundModelError as exc:
            predicted = None
            detail = f"no finite bound: {exc}"
        ladder.append({
            "intensity": intensity,
            "predicted_ns": predicted,
            "within_bound": (predicted is not None
                             and predicted <= spec.bound_ns),
            "detail": detail,
        })
    return ladder


def _within(cell: Dict[str, Any], bound_ns: int) -> bool:
    """A stalled cell is over every bound by definition."""
    return not cell["stalled"] and cell["max_ns"] <= bound_ns


def _cell_str(cell: Dict[str, Any]) -> str:
    if cell["stalled"]:
        return "STALLED"
    return f"max={cell['max_ns'] / 1e3:8.1f}us"


def run_margin(spec: MarginSpec, workers: int = 1,
               store: Any = None, use_cache: bool = True
               ) -> MarginResult:
    """Expand and execute the sweep (campaign-runner execution model).

    With a *store* attached, each cell is first looked up by its
    spec's content key; hits (including cached stalled markers) are
    loaded instead of re-run, and every computed cell is persisted --
    so re-running a ladder, extending its intensity axis, or running
    the shielded twin after a campaign already ran that spec costs
    only the missing cells.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    jobs = spec.expand()
    result_store = open_store(store)
    code = code_version() if result_store is not None else ""

    cells: List[Optional[Dict[str, Any]]] = [None] * len(jobs)
    pending: List[MarginJob] = []
    for job in jobs:
        if result_store is not None and use_cache:
            entry = result_store.get(job_key(job.spec, code))
            if entry is not None:
                cells[job.index] = (stalled_cell(entry.error)
                                    if entry.stalled
                                    else cell_from_result(entry.result))
                continue
        pending.append(job)

    def ingest(index: int, result: Optional[ScenarioResult],
               error: Optional[str]) -> None:
        job = jobs[index]
        if result_store is not None:
            key = job_key(job.spec, code)
            if result is not None:
                result_store.put(key, result, code)
            else:
                result_store.put_stalled(key, job.spec.name,
                                         error or "", code)
        cells[index] = (cell_from_result(result) if result is not None
                        else stalled_cell(error or ""))

    if pending:
        if workers == 1 or len(pending) == 1:
            for job in pending:
                ingest(*_run_margin_job(job))
        else:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
            pool_workers = min(workers, len(pending))
            chunksize = max(1, len(pending) // (pool_workers * 8))
            with ctx.Pool(processes=pool_workers) as pool:
                for index, result, error in pool.imap_unordered(
                        _run_margin_job, pending, chunksize=chunksize):
                    ingest(index, result, error)
    return MarginResult(spec=spec, jobs=jobs,
                        cells=[c for c in cells if c is not None],
                        workers=workers)
