"""The fault controller: plan -> live injectors against one bench.

The controller is the single integration point between a declarative
:class:`~repro.faults.plan.FaultPlan` and a running simulation:

* **Determinism.**  Every injector draws from its own named child
  stream, ``fault:{plan}:{kind}#{index}``, derived off the bench's
  master seed -- so the injection timeline is a pure function of
  (seed, plan, intensity) and is byte-identical no matter how many
  campaign workers run, in what order, or what else consumed RNG.
* **Invisibility when disabled.**  ``intensity <= 0`` (or an empty
  plan) short-circuits ``install()`` to a complete no-op: no RNG
  streams are derived, no events scheduled, no hooks placed.  A
  disabled controller is indistinguishable from no controller at all,
  which the golden byte-identity tests pin.
* **Observability.**  Every injection lands on an in-order timeline,
  bumps a per-injector counter, and (when tracing is enabled) emits a
  ``TP.FAULT_INJECT`` tracepoint so simtrace attribution can blame the
  fault bucket.  :meth:`digest` is a CRC over the timeline -- two runs
  injected identically iff their digests match.
* **Lockdep composition.**  Installed *after* a
  :class:`~repro.analysis.lockdep.LockdepValidator` (the
  ``run_scenario`` order), injector IRQ registrations and rogue tasks
  flow through lockdep's wrapped kernel entry points; the
  ``lockdep_composed`` flag records that the wrappers were live.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.faults.injectors import Injector, build_injector
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import Bench


class FaultController:
    """Installs one plan's injectors on a bench and records injections."""

    def __init__(self, bench: "Bench", plan: FaultPlan,
                 intensity: Optional[float] = None) -> None:
        self.bench = bench
        self.plan = plan
        self.intensity = (plan.intensity if intensity is None
                          else float(intensity))
        self.injectors: List[Injector] = []
        self.timeline: List[Tuple[int, int, str, str]] = []
        self._counts: Dict[str, int] = {}
        self._installed = False
        self.lockdep_composed = False

    @property
    def enabled(self) -> bool:
        """True iff installing this controller perturbs the run."""
        return self.intensity > 0 and bool(self.plan.injectors)

    # ------------------------------------------------------------------
    def install(self) -> "FaultController":
        """Hook every injector into the bench (no-op when disabled)."""
        if self._installed:
            raise RuntimeError("fault controller already installed")
        self._installed = True
        if not self.enabled:
            return self
        # Record whether lockdep's wrappers are live: injector IRQ
        # handlers and rogue tasks then run under the validator.
        self.lockdep_composed = (
            "register_irq_handler" in vars(self.bench.kernel))
        rng_root = self.bench.sim.rng
        for index, spec in enumerate(self.plan.injectors):
            key = f"{spec.kind}#{index}"
            inj = build_injector(key, spec, self)
            stream = rng_root.stream(f"fault:{self.plan.name}:{key}")
            inj.install(self.bench, stream, self.intensity)
            self.injectors.append(inj)
        return self

    def uninstall(self) -> None:
        """Remove every hook (reverse order of install)."""
        while self.injectors:
            self.injectors.pop().uninstall()
        self._installed = False

    # ------------------------------------------------------------------
    def record(self, key: str, cpu: int, detail: str) -> None:
        """One injection: timeline entry, counter, tracepoint."""
        now = self.bench.sim.now
        cpu = int(cpu)
        self.timeline.append((now, cpu, key, detail))
        self._counts[key] = self._counts.get(key, 0) + 1
        tp = self.bench.sim.trace
        if tp.enabled:
            tp.fault_inject(now, cpu, f"fault:{key}", detail)

    def digest(self) -> int:
        """CRC32 over the injection timeline (order-sensitive)."""
        crc = 0
        for entry in self.timeline:
            crc = zlib.crc32(repr(entry).encode("ascii"), crc)
        return crc

    def report(self) -> Dict[str, Any]:
        """JSON-friendly summary of what was injected."""
        return {
            "plan": self.plan.name,
            "intensity": self.intensity,
            "enabled": self.enabled,
            "lockdep_composed": self.lockdep_composed,
            "injections": len(self.timeline),
            "by_injector": {k: self._counts[k]
                            for k in sorted(self._counts)},
            "digest": self.digest(),
            "timeline": [list(entry) for entry in self.timeline],
        }
