"""Twin-diff: the paper's headline comparison as a simdiff report.

The paper's argument is differential -- the *same* workload, the
*same* interference, shielded vs. unshielded -- and the margin ladder
(:mod:`repro.faults.margin`) already runs those twins for its cells.
Twin-diff makes the comparison a first-class product: record both
twins of one storm scenario, diff them with
:mod:`repro.observe.diff`, and report exactly where the unshielded
run's extra response time went -- per mechanism bucket, closing
exactly against the end-to-end latency delta, with the first
divergent tracepoint span named in simulated-time coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.sim.simtime import MSEC

#: The paper's shielded response-time bound (1 ms).
PAPER_BOUND_NS = 1 * MSEC


@dataclass(frozen=True)
class TwinDiffSpec:
    """One twin-diff request (plain data, CLI- and test-friendly)."""

    scenario: str
    plan: str = ""                   # "" = scenario's own / storm-<base>
    intensity: float = 1.0
    samples: Optional[int] = None
    iterations: Optional[int] = None
    seed: Optional[int] = None
    capacity: int = 65536


@dataclass
class TwinDiffResult:
    """Both recordings plus the diff and the paper-style verdict."""

    spec: TwinDiffSpec
    shielded: Any                    # TraceRecording
    unshielded: Any                  # TraceRecording
    diff: Any                        # TraceDiff
    bound_ns: int = PAPER_BOUND_NS
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def shielded_within_bound(self) -> bool:
        return self.shielded.max_latency_ns() <= self.bound_ns

    def headline(self) -> str:
        s_max = self.shielded.max_latency_ns()
        u_max = self.unshielded.max_latency_ns()
        verdict = ("within" if self.shielded_within_bound
                   else "EXCEEDS")
        return (f"twin-diff {self.spec.scenario}: shielded max "
                f"{s_max / 1e3:.1f} us ({verdict} the "
                f"{self.bound_ns / 1e6:g} ms bound), unshielded max "
                f"{u_max / 1e3:.1f} us "
                f"({u_max / max(s_max, 1):.0f}x)")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.spec.scenario,
            "plan": self.details.get("plan", self.spec.plan),
            "intensity": self.spec.intensity,
            "seed": self.shielded.seed,
            "bound_ns": self.bound_ns,
            "shielded_max_ns": self.shielded.max_latency_ns(),
            "unshielded_max_ns": self.unshielded.max_latency_ns(),
            "shielded_within_bound": self.shielded_within_bound,
            "diff": self.diff.to_dict(),
        }

    def summary(self, top_spans: int = 5) -> str:
        return self.headline() + "\n\n" + self.diff.render(
            top_spans=top_spans)


def resolve_plan_name(spec: Any, scenario_name: str,
                      plan_name: str) -> str:
    """Default the fault plan from the scenario, storm-CLI style."""
    if plan_name:
        return plan_name
    base = (scenario_name[len("storm-"):]
            if scenario_name.startswith("storm-") else scenario_name)
    return spec.fault_plan or f"storm-{base}"


def run_twin_diff(twin: TwinDiffSpec) -> TwinDiffResult:
    """Record both twins of one storm scenario and diff them."""
    from repro.experiments.scenario import ShieldSpec, scenario
    from repro.faults.plan import fault_plan
    from repro.observe.diff import diff_recordings, record_scenario

    base = scenario(twin.scenario)
    plan = fault_plan(resolve_plan_name(base, twin.scenario, twin.plan))
    spec = base.configured(samples=twin.samples,
                           iterations=twin.iterations, seed=twin.seed,
                           fault_plan=plan.name,
                           fault_intensity=twin.intensity)
    if not spec.shield.any_component:
        raise ValueError(
            f"scenario {twin.scenario!r} runs unshielded; twin-diff "
            f"needs a shielded baseline to strip")
    unshielded_spec = spec.with_overrides(
        shield=ShieldSpec(cpu=spec.shield.cpu))

    shielded, _ = record_scenario(spec, capacity=twin.capacity)
    unshielded, _ = record_scenario(unshielded_spec,
                                    capacity=twin.capacity)
    diff = diff_recordings(shielded, unshielded,
                           a_label="shielded", b_label="unshielded")
    return TwinDiffResult(spec=twin, shielded=shielded,
                          unshielded=unshielded, diff=diff,
                          details={"plan": plan.name})
