"""Factory functions for the kernels the paper benchmarks."""

from __future__ import annotations

from repro.configs.calibration import redhawk_timing_table, vanilla_timing_table
from repro.kernel.config import KernelConfig
from repro.sim.simtime import MSEC, USEC


def vanilla_2_4_21() -> KernelConfig:
    """kernel.org 2.4.21: the paper's unpatched baseline.

    No preemption, no low-latency patches, goodness scheduler, softirqs
    drained without bound at interrupt exit, jiffies-resolution timers,
    no shield support.
    """
    return KernelConfig(
        name="kernel.org-2.4.21",
        version="2.4.21",
        preemptible=False,
        low_latency=False,
        o1_scheduler=False,
        shield_support=False,
        bkl_ioctl_flag=False,
        softirq_exit_budget_ns=50 * MSEC,
        ksoftirqd=True,
        highres_timers=False,
        hz=100,
        timing=vanilla_timing_table(),
    )


def redhawk_1_4() -> KernelConfig:
    """RedHawk Linux 1.4 (based on kernel.org 2.4.21).

    MontaVista preemption patch, Morton low-latency patches, Molnar
    O(1) scheduler, POSIX/high-res timers patch, shielded-processor
    support, the generic-ioctl BKL-avoidance flag, and bounded softirq
    processing at interrupt exit.
    """
    return KernelConfig(
        name="redhawk-1.4",
        version="2.4.21-rh1.4",
        preemptible=True,
        low_latency=True,
        o1_scheduler=True,
        shield_support=True,
        bkl_ioctl_flag=True,
        softirq_exit_budget_ns=400 * USEC,
        softirq_syscall_exit_drain=False,
        ksoftirqd=True,
        highres_timers=True,
        hz=100,
        timing=redhawk_timing_table(),
    )
