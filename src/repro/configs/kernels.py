"""Factory functions and a by-name registry for kernel configurations.

The registry lets declarative scenarios (and campaign workers in other
processes) refer to a kernel by a stable string instead of a callable,
keeping :class:`~repro.experiments.scenario.ScenarioSpec` picklable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.configs.calibration import redhawk_timing_table, vanilla_timing_table
from repro.kernel.config import KernelConfig
from repro.sim.simtime import MSEC, USEC

KernelFactory = Callable[[], KernelConfig]

_KERNELS: Dict[str, KernelFactory] = {}


def register_kernel(name: str, factory: KernelFactory,
                    replace: bool = False) -> KernelFactory:
    """Register *factory* under *name* (e.g. a site-local kernel)."""
    if name in _KERNELS and not replace:
        raise ValueError(f"kernel {name!r} already registered")
    _KERNELS[name] = factory
    return factory


def kernel_factory(name: str) -> KernelFactory:
    try:
        return _KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; registered: "
                       f"{sorted(_KERNELS)}") from None


def kernel_config(name: str) -> KernelConfig:
    """Build a fresh config for the registered kernel *name*."""
    return kernel_factory(name)()


def kernel_names() -> List[str]:
    return sorted(_KERNELS)


def kernel_name_of(factory: KernelFactory) -> Optional[str]:
    """Reverse lookup: the registry name of *factory*, if registered."""
    for name, registered in _KERNELS.items():
        if registered is factory:
            return name
    return None


def vanilla_2_4_21() -> KernelConfig:
    """kernel.org 2.4.21: the paper's unpatched baseline.

    No preemption, no low-latency patches, goodness scheduler, softirqs
    drained without bound at interrupt exit, jiffies-resolution timers,
    no shield support.
    """
    return KernelConfig(
        name="kernel.org-2.4.21",
        version="2.4.21",
        preemptible=False,
        low_latency=False,
        o1_scheduler=False,
        shield_support=False,
        bkl_ioctl_flag=False,
        softirq_exit_budget_ns=50 * MSEC,
        ksoftirqd=True,
        highres_timers=False,
        hz=100,
        timing=vanilla_timing_table(),
    )


def redhawk_1_4() -> KernelConfig:
    """RedHawk Linux 1.4 (based on kernel.org 2.4.21).

    MontaVista preemption patch, Morton low-latency patches, Molnar
    O(1) scheduler, POSIX/high-res timers patch, shielded-processor
    support, the generic-ioctl BKL-avoidance flag, and bounded softirq
    processing at interrupt exit.
    """
    return KernelConfig(
        name="redhawk-1.4",
        version="2.4.21-rh1.4",
        preemptible=True,
        low_latency=True,
        o1_scheduler=True,
        shield_support=True,
        bkl_ioctl_flag=True,
        softirq_exit_budget_ns=400 * USEC,
        softirq_syscall_exit_drain=False,
        ksoftirqd=True,
        highres_timers=True,
        hz=100,
        timing=redhawk_timing_table(),
    )


register_kernel("vanilla-2.4.21", vanilla_2_4_21)
register_kernel("redhawk-1.4", redhawk_1_4)
