"""Calibrated timing distributions.

These tables are the quantitative heart of the reproduction: they
encode, per kernel flavour, the cost of every kernel path the
simulation exercises.  Values are chosen to be plausible for the
paper's hardware (2003-era dual Xeons) and then calibrated so the
*shape* of each figure matches -- who wins, by what rough factor,
where the histogram tails end.  EXPERIMENTS.md records the resulting
paper-vs-measured comparison.

Calibration notes
-----------------
* ``fs.section`` drives Figure 5's tail: 2.4's filesystem/NFS paths
  hold the CPU non-preemptibly for lognormally distributed stretches
  whose cap produces the ~90 ms worst case the paper measured.  The
  same distribution is used on RedHawk, where the low-latency chunking
  in :meth:`UserApi.kernel_section` bounds the non-preemptible window
  instead.
* ``fs.lock_section`` drives Figure 6's tail: short file-layer lock
  holds that become multi-hundred-microsecond obstacles only when a
  softirq burst preempts the holder.
* the ``irq.*`` and switch costs set the ~11 us floor of Figure 7.
"""

from __future__ import annotations

from repro.kernel.timing import (
    Choice,
    Const,
    Dist,
    Exponential,
    LogNormal,
    TimingModel,
    Uniform,
)
from repro.sim.simtime import MSEC, USEC


def _us(lo: float, hi: float) -> Uniform:
    """Uniform distribution given in microseconds."""
    return Uniform(int(lo * USEC), int(hi * USEC))


def base_timing_table() -> dict:
    """Costs shared by every kernel flavour (hardware-dominated)."""
    return {
        # --- interrupt entry / handlers --------------------------------
        # The occasional slow path models cold caches/TLBs after the
        # interrupted context evicted the handler's footprint.
        "irq.entry": Choice((
            (0.93, _us(1.8, 3.2)),
            (0.07, _us(3.2, 7.0)),
        )),
        "irq.ipi": _us(0.8, 1.5),
        "irq.handler.default": _us(2.0, 5.0),
        "irq.handler.rtc": _us(2.2, 4.0),
        "irq.handler.rcim": _us(3.5, 5.5),
        "irq.handler.net": _us(3.0, 8.0),
        "irq.handler.disk": _us(4.0, 10.0),
        "irq.handler.gfx": _us(5.0, 15.0),
        # --- local timer ------------------------------------------------
        "tick.cost": _us(4.0, 9.0),
        "tick.timer_softirq": Choice((
            (0.7, Const(0)),
            (0.3, _us(2.0, 15.0)),
        )),
        # --- scheduling ---------------------------------------------------
        "sched.switch": Choice((
            (0.9, _us(1.8, 3.6)),
            (0.1, _us(3.6, 7.0)),
        )),
        "sched.goodness_scan": Uniform(80, 220),     # per runnable task
        # --- syscall boundary ---------------------------------------------
        "syscall.entry": Uniform(400, 900),
        "syscall.exit": Uniform(400, 900),
        # --- file layer ------------------------------------------------------
        "fs.file_lock_hold": _us(0.8, 2.5),
        "rtc.read_setup": _us(1.0, 2.0),
        "rtc.read_wake": _us(0.8, 1.6),
        # --- ioctl / BKL ----------------------------------------------------
        "bkl.ioctl_hold": _us(1.0, 3.0),
        "rcim.ioctl_setup": _us(1.0, 2.0),
        "rcim.ioctl_return": _us(1.0, 2.0),
        # --- networking --------------------------------------------------------
        "net.tx_per_packet": _us(2.0, 4.0),
        "softirq.net_rx_per_packet": _us(18.0, 36.0),
        # --- block layer --------------------------------------------------------
        "block.submit": _us(2.0, 5.0),
        "softirq.block_complete": _us(3.0, 8.0),
        # --- graphics ---------------------------------------------------------
        "softirq.gfx_tasklet": _us(5.0, 20.0),
        # --- IPC ------------------------------------------------------------
        "pipe.copy": _us(3.0, 8.0),
        # --- workload kernel sections ---------------------------------------
        # Filesystem / NFS compute-bound kernel stretches: usually tens
        # of microseconds, with the rare block-map walks reaching tens
        # of milliseconds.  The long tail is the source of the vanilla
        # kernel's worst-case interrupt response.
        "fs.section": Choice((
            (0.90, _us(10.0, 80.0)),
            (0.08, LogNormal(median_ns=300 * USEC, sigma=1.0, cap=5 * MSEC)),
            (0.018, LogNormal(median_ns=3 * MSEC, sigma=0.8, cap=30 * MSEC)),
            (0.002, LogNormal(median_ns=25 * MSEC, sigma=0.6, cap=90 * MSEC)),
        )),
        "nfs.section": Choice((
            (0.92, _us(8.0, 60.0)),
            (0.07, LogNormal(median_ns=250 * USEC, sigma=1.0, cap=4 * MSEC)),
            (0.01, LogNormal(median_ns=2 * MSEC, sigma=0.9, cap=40 * MSEC)),
        )),
        # Short critical sections under file_lock/dcache_lock taken by
        # filesystem operations.
        "fs.lock_section": Choice((
            (0.90, _us(2.0, 8.0)),
            (0.10, _us(10.0, 40.0)),
        )),
        # mmap'd-file operations (FIFOS_MMAP).
        "mmap.section": LogNormal(median_ns=25 * USEC, sigma=1.8,
                                  cap=20 * MSEC),
        # crashme: decoding and handling random instruction faults.
        "crashme.fault": _us(3.0, 12.0),
        # Think time between workload operations.
        "workload.think": Exponential(mean_ns=120 * USEC, cap=2 * MSEC),
    }


def vanilla_timing_table() -> TimingModel:
    """kernel.org 2.4.21 cost table."""
    return TimingModel(dict(base_timing_table()))


def redhawk_timing_table() -> TimingModel:
    """RedHawk 1.4 cost table.

    Beyond the feature flags, RedHawk's "further low-latency work"
    shortened the worst offenders among critical sections; the
    low-latency chunking in the syscall layer handles the big fs
    sections, so the table itself only trims the long tail of the
    lock-held sections (BKL hold-time reduction).
    """
    table = dict(base_timing_table())
    table["fs.lock_section"] = Choice((
        (0.93, _us(2.0, 7.0)),
        (0.07, _us(8.0, 30.0)),
    ))
    table["bkl.ioctl_hold"] = _us(0.8, 2.0)
    return TimingModel(table)


def all_keys() -> list:
    """Every calibrated key (used by completeness tests)."""
    return sorted(base_timing_table())
