"""Calibrated kernel configurations for the paper's testbeds."""

from repro.configs.calibration import (
    base_timing_table,
    redhawk_timing_table,
    vanilla_timing_table,
)
from repro.configs.kernels import redhawk_1_4, vanilla_2_4_21

__all__ = [
    "base_timing_table",
    "vanilla_timing_table",
    "redhawk_timing_table",
    "vanilla_2_4_21",
    "redhawk_1_4",
]
