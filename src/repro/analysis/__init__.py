"""Analysis tooling: where did my latency go?

:class:`~repro.analysis.probe.WakeLatencyProbe` instruments a kernel
to measure, for one task, the delay between becoming runnable and
actually running, capturing what every CPU was executing at the wakeup
instant.  The aggregated report attributes slow wakeups to their
causes (non-preemptible kernel sections, softirq processing, lock
holders...), which is how the per-figure calibrations in this
repository were diagnosed in the first place.

:class:`~repro.analysis.lockdep.LockdepValidator` is the invariant
side of the same coin: a lockdep-style observer that validates lock
ordering, atomic-context discipline, exit-state balance and
shield-affinity routing while a scenario runs, without perturbing it.

:mod:`repro.analysis.lint` is the static half -- an AST linter that
keeps the simulation sources deterministic (no wall-clock, no global
RNG, no order-sensitive set iteration in scheduling paths).
"""

from repro.analysis.lockdep import (
    LockdepConfig,
    LockdepValidator,
    LockdepViolation,
)
from repro.analysis.probe import WakeLatencyProbe, WakeSample

__all__ = [
    "LockdepConfig",
    "LockdepValidator",
    "LockdepViolation",
    "WakeLatencyProbe",
    "WakeSample",
]
