"""Analysis tooling: where did my latency go?

:class:`~repro.analysis.probe.WakeLatencyProbe` instruments a kernel
to measure, for one task, the delay between becoming runnable and
actually running, capturing what every CPU was executing at the wakeup
instant.  The aggregated report attributes slow wakeups to their
causes (non-preemptible kernel sections, softirq processing, lock
holders...), which is how the per-figure calibrations in this
repository were diagnosed in the first place.
"""

from repro.analysis.probe import WakeLatencyProbe, WakeSample

__all__ = ["WakeLatencyProbe", "WakeSample"]
