"""simbound: static worst-case preemption-window certification.

Walks every op program, driver critical section and syscall path a
scenario composes, bounds each duration by the support upper bound of
its timing distribution, and derives per-:class:`KernelConfig`
worst-case irq-off / preempt-off / BKL-hold windows plus a predicted
shield response bound -- the analytic counterpart of the runtime
accounting maxima in :mod:`repro.observe.accounting`.

Layers:

- :mod:`.extract`  -- AST walk of op programs / drivers / syscalls
  into symbolic critical-section :class:`Term` sums.
- :mod:`.support`  -- terms and the distribution-support resolver.
- :mod:`.model`    -- the window algebra (arrival curves, softirq
  drain fixpoints, response composition) per scenario.
- :mod:`.certificate` -- deterministic machine-readable certificates.
- :mod:`.crosscheck`  -- runs scenarios and asserts observed maxima
  never escape the static bounds.
"""

from repro.analysis.bounds.certificate import (
    CERT_SCHEMA,
    RESPONSE_GATE_NS,
    BoundCertificate,
    certificate_for,
    load_certificate_dict,
)
from repro.analysis.bounds.crosscheck import (
    BoundViolation,
    BoundViolationError,
    CrosscheckReport,
    compare_result,
    crosscheck_scenario,
)
from repro.analysis.bounds.extract import (
    ExtractionError,
    ModuleReport,
    Section,
    Stretch,
    cached_extract,
    clear_extraction_cache,
)
from repro.analysis.bounds.model import (
    Assumptions,
    BoundModelError,
    CpuClassBounds,
    ScenarioBounds,
    compute_bounds,
)
from repro.analysis.bounds.support import (
    Term,
    TimingBounds,
    UnboundedDistributionError,
)

__all__ = [
    "CERT_SCHEMA",
    "RESPONSE_GATE_NS",
    "Assumptions",
    "BoundCertificate",
    "BoundModelError",
    "BoundViolation",
    "BoundViolationError",
    "CpuClassBounds",
    "CrosscheckReport",
    "ExtractionError",
    "ModuleReport",
    "ScenarioBounds",
    "Section",
    "Stretch",
    "Term",
    "TimingBounds",
    "UnboundedDistributionError",
    "cached_extract",
    "certificate_for",
    "clear_extraction_cache",
    "compare_result",
    "compute_bounds",
    "crosscheck_scenario",
    "load_certificate_dict",
]
