"""Observed-vs-predicted cross-check: runs a scenario and asserts
every runtime accounting maximum sits under its static bound.

The check is strictly *observational*: it runs the scenario through
the ordinary :func:`~repro.experiments.scenario.run_scenario` path
with typed tracing enabled (the tracer's contract -- enforced by
``tests/analysis/test_bounds_golden.py`` -- is that it draws no RNG
and shifts no simulated time), then reads the per-CPU accounting
maxima and the measurement recorder *after* the run.  A violation
means the bound model under-approximated real behaviour -- a soundness
bug in :mod:`repro.analysis.bounds.model` -- and is reported loudly
with both numbers and the model's composition trail for the window.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.analysis.bounds.model import Assumptions, ScenarioBounds, compute_bounds

__all__ = [
    "BoundViolation",
    "BoundViolationError",
    "CrosscheckReport",
    "compare_result",
    "crosscheck_scenario",
]


@dataclass(frozen=True)
class BoundViolation:
    """One observed window that escaped its static bound."""

    scenario: str
    where: str         # "cpu0", "cpu1", ... or "response"
    metric: str        # "irq_off" / "preempt_off" / "bkl_hold" / "response"
    observed_ns: int
    predicted_ns: int
    detail: str = ""   # the model's composition trail for the bound

    def describe(self) -> str:
        over = self.observed_ns - self.predicted_ns
        msg = (f"{self.scenario}: {self.where} {self.metric} observed "
               f"{self.observed_ns} ns > predicted {self.predicted_ns} ns "
               f"(+{over} ns)")
        if self.detail:
            msg += f"\n    bound was composed as: {self.detail}"
        return msg


class BoundViolationError(AssertionError):
    """Observed behaviour escaped the static bounds (soundness bug)."""

    def __init__(self, violations: List[BoundViolation]) -> None:
        self.violations = violations
        lines = [f"{len(violations)} bound violation(s):"]
        lines += ["  " + v.describe() for v in violations]
        super().__init__("\n".join(lines))


@dataclass
class CrosscheckReport:
    """Everything one cross-check produced, violations included."""

    scenario: str
    bounds: ScenarioBounds
    checks: List[Dict[str, Any]] = field(default_factory=list)
    violations: List[BoundViolation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        if self.violations:
            raise BoundViolationError(self.violations)

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "passed": self.passed,
            "checks": list(self.checks),
            "violations": [v.__dict__ for v in self.violations],
        }


def _check(report: CrosscheckReport, where: str, metric: str,
           observed: int, predicted: int, detail: str = "") -> None:
    report.checks.append({"where": where, "metric": metric,
                          "observed_ns": int(observed),
                          "predicted_ns": int(predicted)})
    if observed > predicted:
        report.violations.append(BoundViolation(
            report.scenario, where, metric, int(observed),
            int(predicted), detail))


def compare_result(bounds: ScenarioBounds, result: Any) -> CrosscheckReport:
    """Compare one finished :class:`ScenarioResult` against *bounds*.

    *result* must have been produced with ``trace=True`` so the
    per-CPU accounting maxima are available; the recorder check
    applies only when the model predicted a response bound.
    """
    report = CrosscheckReport(bounds.scenario, bounds)

    trace = result.trace or {}
    accounting = trace.get("accounting") or {}
    cpus = accounting.get("cpus") or []
    if not cpus:
        raise ValueError(
            f"{bounds.scenario}: result carries no accounting data; "
            "run the scenario with trace=True")
    for entry in cpus:
        cpu = int(entry["cpu"])
        cls = bounds.class_for_cpu(cpu)
        where = f"cpu{cpu}"
        _check(report, where, "irq_off",
               entry["max_irq_off_ns"], cls.irq_off_ns,
               cls.detail.get("irq_off", ""))
        _check(report, where, "preempt_off",
               entry["max_preempt_off_ns"], cls.preempt_off_ns,
               cls.detail.get("preempt_off", ""))
        _check(report, where, "bkl_hold",
               entry["max_bkl_hold_ns"], cls.bkl_hold_ns,
               cls.detail.get("lock:bkl", ""))

    if bounds.response_ns is not None:
        _check(report, "response", "response",
               int(result.recorder.max()), bounds.response_ns,
               bounds.response_detail)
    return report


def crosscheck_scenario(spec: Any,
                        assumptions: Optional[Assumptions] = None,
                        samples: Optional[int] = None,
                        iterations: Optional[int] = None,
                        bounds: Optional[ScenarioBounds] = None,
                        ) -> CrosscheckReport:
    """Run *spec* and cross-check it against its static bounds.

    *samples* / *iterations* optionally shrink the latency sample
    count / determinism iteration count (CI runs a reduced sweep; the
    bounds are worst-case, so fewer samples can only make the check
    easier, never unsound to pass).
    """
    from repro.experiments.scenario import run_scenario

    if bounds is None:
        bounds = compute_bounds(spec, assumptions)
    overrides = {}
    if samples is not None:
        overrides["samples"] = int(samples)
    if iterations is not None:
        overrides["iterations"] = int(iterations)
    run_spec = spec
    if overrides:
        run_spec = spec.with_overrides(
            measurement=replace(spec.measurement, **overrides))
    result = run_scenario(run_spec, trace=True)
    return compare_result(bounds, result)
