"""Support upper bounds of the timing model, plus bound *terms*.

The extractor (:mod:`repro.analysis.bounds.extract`) cannot resolve a
cost expression to a number at parse time: ``api.timing.sample("k",
rng)`` bounds to a *different* number under the vanilla and RedHawk
tables (``fs.lock_section`` is 40us vs 30us).  It therefore produces
symbolic :class:`Term` objects -- sums of ``coeff * key`` atoms plus a
constant -- and the model resolves them against a concrete
:class:`~repro.kernel.timing.TimingModel` via :class:`TimingBounds`.

An unbounded atom (uncapped distribution, or a name the extractor
could not resolve and no declared assumption covers) resolves to
``None``; the window algebra treats ``None`` inside a critical
section as a hard certification error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.kernel.timing import TimingModel, UnboundedDistributionError

__all__ = [
    "Term",
    "TimingBounds",
    "UnboundedDistributionError",
    "const_term",
    "key_term",
    "unbounded_term",
]


@dataclass(frozen=True, slots=True)
class Term:
    """A symbolic duration bound: ``const + sum(coeff_i * key_i)``.

    ``unbounded`` marks a term the extractor could not bound; it stays
    symbolic so the *site* (module/line) can be reported, rather than
    failing at extraction time for paths the scenario never composes.
    """

    const: int = 0
    atoms: Tuple[Tuple[float, str], ...] = ()
    unbounded: bool = False
    why_unbounded: str = ""

    def plus(self, other: "Term") -> "Term":
        return Term(
            const=self.const + other.const,
            atoms=self.atoms + other.atoms,
            unbounded=self.unbounded or other.unbounded,
            why_unbounded=self.why_unbounded or other.why_unbounded,
        )

    def times(self, factor: float) -> "Term":
        return Term(
            const=int(self.const * factor),
            atoms=tuple((c * factor, k) for c, k in self.atoms),
            unbounded=self.unbounded,
            why_unbounded=self.why_unbounded,
        )

    def describe(self) -> str:
        if self.unbounded:
            return f"UNBOUNDED({self.why_unbounded})"
        parts = [f"{c:g}*{k}" for c, k in self.atoms]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


def const_term(value: int) -> Term:
    return Term(const=int(value))


def key_term(key: str, coeff: float = 1.0) -> Term:
    return Term(atoms=((coeff, key),))


def unbounded_term(why: str) -> Term:
    return Term(unbounded=True, why_unbounded=why)


@dataclass
class TimingBounds:
    """Cached support upper bounds over one concrete timing table."""

    timing: TimingModel
    _cache: Dict[str, Optional[int]] = field(default_factory=dict)

    def upper(self, key: str) -> Optional[int]:
        """Worst case of *key* in ns, or ``None`` when unbounded or
        unknown (both are certification failures at composition)."""
        if key not in self._cache:
            try:
                self._cache[key] = self.timing.support_upper_ns(key)
            except (KeyError, UnboundedDistributionError):
                self._cache[key] = None
        return self._cache[key]

    def resolve(self, term: Term) -> Optional[int]:
        """Concrete upper bound of *term* under this table (ns)."""
        if term.unbounded:
            return None
        total = term.const
        for coeff, key in term.atoms:
            upper = self.upper(key)
            if upper is None:
                return None
            total += int(coeff * upper)
        return total
