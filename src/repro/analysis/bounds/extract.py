"""AST extraction of critical sections and kernel stretches.

Walks the *op programs* of the simulated kernel -- workload bodies,
driver read/ioctl paths, and the :class:`~repro.kernel.syscalls.UserApi`
helpers they compose -- and produces, per generator function:

* :class:`Section` records: every spinlock hold window, either an
  explicit ``yield op.Acquire(L) ... op.Release(L)`` pair (drivers)
  or an ``api.kernel_section(total, lock=L)`` site (workloads, where
  the low-latency patches may chunk the hold);
* :class:`Stretch` records: maximal runs of kernel-mode computation
  with no scheduling boundary (``Block``/``Sleep``/``PreemptPoint``/
  ``ExitSyscall``/user compute) -- the stretches that delay a
  reschedule on a non-preemptible kernel;
* :class:`ExtractionError` records: unmatched acquire/release on a
  path, a blocking op inside a spinlock hold, kernel cost that grows
  across loop iterations with no boundary, or cost expressions no
  bound covers.  The window algebra refuses to certify a scenario
  whose relevant modules carry errors.

Costs stay symbolic (:class:`~repro.analysis.bounds.support.Term`)
so one extraction serves every kernel config; the model resolves the
terms against a concrete timing table.
"""

from __future__ import annotations

import ast
import importlib
import inspect
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.bounds.support import (
    Term,
    const_term,
    key_term,
    unbounded_term,
)

#: Canonical kernel lock names the analyzer recognises in source text.
KNOWN_LOCKS = ("bkl", "dcache_lock", "file_lock", "io_request_lock",
               "runqueue_lock")

#: ``yield from`` attribute calls that block or reschedule; their own
#: sections are extracted from the modules that define them.
BOUNDARY_ATTRS = frozenset({
    "read", "ioctl", "submit_and_wait", "pipe_wait", "nanosleep",
    "sem_down", "sem_up", "sched_yield", "sched_setscheduler",
    "sched_setaffinity", "mlockall", "compute", "wait",
})

#: Primitive ops that end a kernel stretch (a reschedule can happen).
BOUNDARY_OPS = frozenset({
    "Block", "Sleep", "PreemptPoint", "YieldCpu", "SemDown",
    "ExitSyscall",
})

#: Primitive ops with no duration and no control effect.
ZERO_OPS = frozenset({
    "Wake", "Call", "SetScheduler", "SetAffinity", "MlockAll",
    "EnterSyscall", "SemUp",
})

#: Fallback bounds for names the expression bounder cannot resolve.
#: Every use is recorded on the certificate as a declared assumption.
NAME_ASSUMPTIONS: Dict[str, Tuple[int, str]] = {
    # ttcp loopback receiver: packets drained per recvmsg.  The sender
    # emits 16-packet bursts and sleeps 50-150us between them; the
    # receiver is woken per burst, so the drained batch is bounded by
    # a few coalesced bursts.  256 packets (16 bursts) is generous.
    "packets": (256, "ttcp recv batch <= 256 packets per wakeup"),
    # fs_stress submit sizes: rng.integers(8, 128).
    "sectors": (128, "disk submissions bounded at 128 sectors"),
}

_MAX_PATHS = 256


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Section:
    """One spinlock hold window in the source."""

    module: str
    qualname: str
    line: int
    lock: str
    total: Term
    label: str = ""
    #: ``kernel_section`` sites are chunked by the low-latency patches
    #: (hold <= LOWLAT_CHUNK_NS); explicit driver holds never are.
    chunked: bool = False
    #: Config guard: section only runs when the named flag-ish local
    #: is true ("needs_bkl") / false ("not needs_bkl").
    guard: str = ""


@dataclass(frozen=True, slots=True)
class Stretch:
    """A maximal kernel-mode run with no scheduling boundary."""

    module: str
    qualname: str
    line: int
    #: (term, chunked) components; chunked components shrink to one
    #: LOWLAT_CHUNK_NS chunk under the low-latency patches.
    components: Tuple[Tuple[Term, bool], ...]


@dataclass(frozen=True, slots=True)
class ExtractionError:
    """A hard analysis error: the path cannot be certified."""

    module: str
    qualname: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.module}:{self.line} [{self.qualname}] {self.message}"


@dataclass
class ModuleReport:
    """Everything extracted from one module."""

    module: str
    sections: List[Section] = field(default_factory=list)
    stretches: List[Stretch] = field(default_factory=list)
    errors: List[ExtractionError] = field(default_factory=list)
    assumptions: List[str] = field(default_factory=list)


# ----------------------------------------------------------------------
# Expression bounding
# ----------------------------------------------------------------------
def _numeric(node: ast.AST) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value,
                                                    (int, float)):
        return float(node.value)
    if (isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub)):
        inner = _numeric(node.operand)
        return -inner if inner is not None else None
    return None


def _sample_key(call: ast.Call) -> Optional[str]:
    """The literal key of a ``*.sample("key", ...)`` call, if any."""
    if (isinstance(call.func, ast.Attribute) and call.func.attr == "sample"
            and call.args and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)):
        return call.args[0].value
    return None


class _Bounder:
    """Bounds cost expressions to :class:`Term` under a local env."""

    def __init__(self, env: Dict[str, Term],
                 report: ModuleReport) -> None:
        self.env = env
        self.report = report

    def bound(self, node: ast.AST) -> Term:
        num = _numeric(node)
        if num is not None:
            return const_term(int(num))
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in NAME_ASSUMPTIONS:
                value, why = NAME_ASSUMPTIONS[node.id]
                note = f"assume {node.id} <= {value} ({why})"
                if note not in self.report.assumptions:
                    self.report.assumptions.append(note)
                return const_term(value)
            return unbounded_term(f"name {node.id!r}")
        if isinstance(node, ast.Call):
            return self._bound_call(node)
        if isinstance(node, ast.BinOp):
            return self._bound_binop(node)
        if isinstance(node, ast.Attribute):
            return unbounded_term(f"attribute {node.attr!r}")
        if isinstance(node, ast.IfExp):
            body = self.bound(node.body)
            orelse = self.bound(node.orelse)
            # Upper bound of either branch: the sum is sound.
            return body.plus(orelse)
        return unbounded_term(type(node).__name__)

    def _bound_call(self, node: ast.Call) -> Term:
        key = _sample_key(node)
        if key is not None:
            return key_term(key)
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("int", "float", "abs") and node.args:
                return self.bound(node.args[0])
            if func.id == "min" and node.args:
                # min's bound is the least resolvable argument bound;
                # a numeric argument always caps it.
                nums = [_numeric(a) for a in node.args]
                numeric = [n for n in nums if n is not None]
                if numeric:
                    return const_term(int(min(numeric)))
                return self.bound(node.args[0])
            if func.id == "max" and node.args:
                # Sum of argument bounds >= max of them: sound.
                total = const_term(0)
                for arg in node.args:
                    total = total.plus(self.bound(arg))
                return total
        if isinstance(func, ast.Attribute):
            if func.attr in ("uniform", "integers") and len(node.args) >= 2:
                return self.bound(node.args[1])
            if func.attr == "random":
                return const_term(1)
        return unbounded_term(ast.dump(node)[:60])

    def _bound_binop(self, node: ast.BinOp) -> Term:
        left, right = node.left, node.right
        if isinstance(node.op, ast.Add):
            return self.bound(left).plus(self.bound(right))
        if isinstance(node.op, ast.Sub):
            return self.bound(left)  # rhs is non-negative work here
        if isinstance(node.op, ast.Mult):
            for a, b in ((left, right), (right, left)):
                num = _numeric(a)
                if num is None:
                    term_a = self.bound(a)
                    if not term_a.unbounded and not term_a.atoms:
                        num = float(term_a.const)
                if num is not None:
                    return self.bound(b).times(num)
            return unbounded_term("symbolic product")
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            num = _numeric(right)
            if num:
                return self.bound(left).times(1.0 / num)
        return unbounded_term(f"binop {type(node.op).__name__}")


# ----------------------------------------------------------------------
# Path state
# ----------------------------------------------------------------------
@dataclass
class _Path:
    """One control-flow path's interpreter state."""

    locks: List[Tuple[str, Term, int]] = field(default_factory=list)
    run: List[Tuple[Term, bool]] = field(default_factory=list)
    run_line: int = 0
    boundary_seen: bool = False
    guard: str = ""
    dead: bool = False

    def fork(self) -> "_Path":
        return _Path(locks=list(self.locks), run=list(self.run),
                     run_line=self.run_line,
                     boundary_seen=self.boundary_seen,
                     guard=self.guard, dead=self.dead)


def _lock_name(node: ast.AST) -> Optional[str]:
    """Canonical lock name from an expression mentioning one."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in KNOWN_LOCKS:
            return sub.attr
        if isinstance(sub, ast.Name) and sub.id in KNOWN_LOCKS:
            return sub.id
    return None


def _op_name(call: ast.Call) -> Optional[str]:
    """``op.X(...)`` -> "X" (also bare ``X(...)`` for known op names)."""
    func = call.func
    if (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
            and func.value.id == "op"):
        return func.attr
    return None


def _kwarg(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _label_of(call: ast.Call) -> str:
    node = _kwarg(call, "label")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return ""


class _FunctionWalker:
    """Interprets one generator function, inlining local helpers."""

    def __init__(self, module: str, qualname: str,
                 scopes: Sequence[Dict[str, ast.FunctionDef]],
                 env: Dict[str, Term], report: ModuleReport) -> None:
        self.module = module
        self.qualname = qualname
        self.scopes = list(scopes)
        self.env = dict(env)
        self.report = report
        self.bounder = _Bounder(self.env, report)
        self._seen_stretch: set = set()
        self._inline_stack: List[str] = []

    # -- emission ------------------------------------------------------
    def _error(self, line: int, message: str) -> None:
        self.report.errors.append(ExtractionError(
            module=self.module, qualname=self.qualname, line=line,
            message=message))

    def _emit_section(self, path: _Path, line: int, lock: str,
                      total: Term, label: str, chunked: bool) -> None:
        if total.unbounded:
            self._error(line, f"unbounded cost inside {lock} hold: "
                              f"{total.why_unbounded}")
        self.report.sections.append(Section(
            module=self.module, qualname=self.qualname, line=line,
            lock=lock, total=total, label=label, chunked=chunked,
            guard=path.guard))

    def _flush_stretch(self, path: _Path) -> None:
        if not path.run:
            return
        key = (self.qualname, tuple(path.run))
        if key not in self._seen_stretch:
            self._seen_stretch.add(key)
            self.report.stretches.append(Stretch(
                module=self.module, qualname=self.qualname,
                line=path.run_line, components=tuple(path.run)))
        path.run = []
        path.run_line = 0

    def _boundary(self, path: _Path, line: int, kind: str) -> None:
        if path.locks:
            lock, _, acq_line = path.locks[-1]
            self._error(line, f"{kind} while holding {lock} "
                              f"(acquired line {acq_line})")
        self._flush_stretch(path)
        path.boundary_seen = True

    def _kernel_cost(self, path: _Path, line: int, term: Term,
                     chunked: bool = False) -> None:
        if path.locks:
            name, hold, acq_line = path.locks[-1]
            path.locks[-1] = (name, hold.plus(term), acq_line)
        if not path.run:
            path.run_line = line
        path.run.append((term, chunked))

    # -- op handling ---------------------------------------------------
    def _do_op(self, path: _Path, call: ast.Call, opname: str,
               line: int) -> None:
        if opname == "Compute":
            kernel_kw = _kwarg(call, "kernel")
            kernel = (isinstance(kernel_kw, ast.Constant)
                      and kernel_kw.value is True)
            if not kernel and len(call.args) >= 2:
                kernel = (isinstance(call.args[1], ast.Constant)
                          and call.args[1].value is True)
            term = self.bounder.bound(call.args[0]) if call.args \
                else const_term(0)
            if kernel:
                self._kernel_cost(path, line, term)
            else:
                self._boundary(path, line, "user-mode compute")
        elif opname == "Acquire":
            lock = _lock_name(call.args[0]) if call.args else None
            if lock is None:
                self._error(line, "Acquire of unrecognised lock")
                lock = "?"
            path.locks.append((lock, const_term(0), line))
        elif opname == "Release":
            lock = _lock_name(call.args[0]) if call.args else None
            if not path.locks:
                self._error(line, f"Release({lock}) with no lock held")
                return
            held, hold, acq_line = path.locks.pop()
            if lock is not None and lock != held:
                self._error(line, f"Release({lock}) but top of stack "
                                  f"is {held} (acquired line {acq_line})")
            self._emit_section(path, acq_line, held, hold, "", False)
        elif opname in BOUNDARY_OPS:
            self._boundary(path, line, f"op.{opname}")
        elif opname in ZERO_OPS:
            pass
        else:
            self._error(line, f"unknown op.{opname}")

    # -- api helper handling -------------------------------------------
    def _resolve_local(self, name: str) -> Optional[ast.FunctionDef]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def _inline(self, path: _Path, func: ast.FunctionDef,
                paths: List[_Path]) -> List[_Path]:
        if func.name in self._inline_stack:
            self._error(func.lineno,
                        f"recursive helper {func.name!r}; cannot bound")
            return paths
        self._inline_stack.append(func.name)
        # Defaults of the helper's own params join the env.
        _bind_defaults(func, self.env, self.bounder)
        try:
            return self._exec(func.body, paths)
        finally:
            self._inline_stack.pop()

    def _do_yield_from(self, path: _Path, call: ast.Call,
                       paths: List[_Path]) -> List[_Path]:
        line = call.lineno
        func = call.func
        if isinstance(func, ast.Name):
            local = self._resolve_local(func.id)
            if local is not None:
                return self._inline(path, local, paths)
            self._error(line, f"yield from unknown helper {func.id!r}")
            return paths
        if not isinstance(func, ast.Attribute):
            self._error(line, "yield from unrecognised callee")
            return paths
        attr = func.attr
        if attr == "syscall":
            self._kernel_cost(path, line, key_term("syscall.entry"))
            out = paths
            if len(call.args) >= 2:
                body = call.args[1]
                if (isinstance(body, ast.Call)
                        and isinstance(body.func, ast.Name)):
                    local = self._resolve_local(body.func.id)
                    if local is not None:
                        out = self._inline(path, local, out)
                    else:
                        self._error(line, f"syscall body "
                                          f"{body.func.id!r} not found")
                elif not (isinstance(body, ast.Constant)
                          and body.value is None):
                    self._error(line, "syscall body is not a local "
                                      "generator call")
            for p in out:
                if not p.dead:
                    self._kernel_cost(p, line, key_term("syscall.exit"))
                    self._boundary(p, line, "syscall exit")
            return out
        if attr == "kernel_section":
            total = self.bounder.bound(call.args[0]) if call.args \
                else const_term(0)
            lock_node = _kwarg(call, "lock")
            lock = _lock_name(lock_node) if lock_node is not None else None
            if total.unbounded:
                self._error(line, f"unbounded kernel_section: "
                                  f"{total.why_unbounded}")
            if lock is not None:
                self._emit_section(path, line, lock, total,
                                   _label_of(call), chunked=True)
            self._kernel_cost(path, line, total, chunked=True)
            return paths
        if attr == "pipe_transfer":
            self._kernel_cost(path, line, key_term("syscall.entry")
                              .plus(key_term("pipe.copy"))
                              .plus(key_term("syscall.exit")))
            self._boundary(path, line, "syscall exit")
            return paths
        if attr == "loopback_send":
            packets = self.bounder.bound(call.args[0]) if call.args \
                else unbounded_term("loopback packets")
            cost = key_term("syscall.entry").plus(
                key_term("syscall.exit"))
            if packets.unbounded or packets.atoms:
                self._error(line, "loopback_send packet count "
                                  "not a static bound")
            else:
                cost = cost.plus(
                    key_term("net.tx_per_packet",
                             coeff=float(packets.const)))
            self._kernel_cost(path, line, cost)
            self._boundary(path, line, "syscall exit")
            return paths
        if attr in BOUNDARY_ATTRS:
            self._boundary(path, line, f"api.{attr}")
            return paths
        self._error(line, f"yield from unrecognised helper .{attr}()")
        return paths

    # -- statement execution -------------------------------------------
    def _exec_yield(self, path: _Path, node: ast.AST,
                    paths: List[_Path]) -> List[_Path]:
        if isinstance(node, ast.YieldFrom):
            if isinstance(node.value, ast.Call):
                return self._do_yield_from(path, node.value, paths)
            self._error(node.lineno, "yield from non-call expression")
            return paths
        if isinstance(node, ast.Yield) and node.value is not None:
            value = node.value
            if isinstance(value, ast.Call):
                opname = _op_name(value)
                if opname is not None:
                    self._do_op(path, value, opname, value.lineno)
                    return paths
                func = value.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in ("tsc", "call")):
                    return paths
            self._error(node.lineno, "yield of unrecognised value")
        return paths

    def _guard_name(self, test: ast.AST) -> Tuple[str, str]:
        """("needs_bkl", "not needs_bkl") style guards, else ("","")."""
        if isinstance(test, ast.Name):
            return test.id, f"not {test.id}"
        if (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)
                and isinstance(test.operand, ast.Name)):
            return f"not {test.operand.id}", test.operand.id
        return "", ""

    def _exec(self, stmts: Sequence[ast.stmt],
              paths: List[_Path]) -> List[_Path]:
        for stmt in stmts:
            live = [p for p in paths if not p.dead]
            if not live:
                return paths
            if isinstance(stmt, ast.FunctionDef):
                self.scopes[-1][stmt.name] = stmt
                continue
            if isinstance(stmt, ast.Expr):
                new_paths: List[_Path] = []
                for p in paths:
                    if p.dead:
                        new_paths.append(p)
                        continue
                    result = self._exec_yield(p, stmt.value, [p])
                    new_paths.extend(result)
                paths = _dedup(new_paths)
            elif isinstance(stmt, ast.Assign) or isinstance(
                    stmt, ast.AnnAssign):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                value = stmt.value
                if value is None:
                    continue
                if isinstance(value, (ast.Yield, ast.YieldFrom)):
                    new_paths = []
                    for p in paths:
                        if p.dead:
                            new_paths.append(p)
                            continue
                        new_paths.extend(self._exec_yield(p, value, [p]))
                    paths = _dedup(new_paths)
                elif (len(targets) == 1
                      and isinstance(targets[0], ast.Name)):
                    self.env[targets[0].id] = self.bounder.bound(value)
            elif isinstance(stmt, ast.AugAssign):
                # ``packets += sock.take()``-style accumulators: the
                # final value is data-dependent, so only a declared
                # assumption can bound it soundly.
                if isinstance(stmt.target, ast.Name):
                    name = stmt.target.id
                    if name in NAME_ASSUMPTIONS:
                        value, why = NAME_ASSUMPTIONS[name]
                        note = f"assume {name} <= {value} ({why})"
                        if note not in self.report.assumptions:
                            self.report.assumptions.append(note)
                        self.env[name] = const_term(value)
                    else:
                        self.env[name] = unbounded_term(
                            f"augmented assignment to {name!r}")
            elif isinstance(stmt, ast.If):
                guard_true, guard_false = self._guard_name(stmt.test)
                new_paths = []
                for p in paths:
                    if p.dead:
                        new_paths.append(p)
                        continue
                    p_true = p.fork()
                    if guard_true and not p_true.guard:
                        p_true.guard = guard_true
                    p_false = p.fork()
                    if guard_false and not p_false.guard:
                        p_false.guard = guard_false
                    true_out = self._exec(stmt.body, [p_true])
                    false_out = self._exec(stmt.orelse, [p_false]) \
                        if stmt.orelse else [p_false]
                    for q in true_out + false_out:
                        q.guard = p.guard
                        new_paths.append(q)
                paths = _dedup(new_paths)
            elif isinstance(stmt, (ast.While, ast.For)):
                paths = self._exec_loop(stmt, paths)
            elif isinstance(stmt, (ast.Return, ast.Break, ast.Continue)):
                for p in paths:
                    if not p.dead:
                        self._flush_stretch(p)
                        p.dead = True
            elif isinstance(stmt, ast.Try):
                paths = self._exec(stmt.body, paths)
                paths = self._exec(stmt.finalbody, paths)
            elif isinstance(stmt, ast.With):
                paths = self._exec(stmt.body, paths)
            # other statements (pass, docstrings, raises) are inert
            if len(paths) > _MAX_PATHS:
                self._error(stmt.lineno,
                            f"path explosion (> {_MAX_PATHS}); "
                            f"refusing to certify")
                paths = paths[:_MAX_PATHS]
        return paths

    def _exec_loop(self, stmt: ast.stmt,
                   paths: List[_Path]) -> List[_Path]:
        body = stmt.body  # type: ignore[attr-defined]
        out: List[_Path] = []
        for p in paths:
            if p.dead:
                out.append(p)
                continue
            # First pass discovers the body's sections/stretches.
            first = self._exec(body, [p.fork()])
            # Second pass from the first's end state catches the
            # tail+head stretch join across iterations.
            second: List[_Path] = []
            for q in first:
                if q.dead:
                    q.dead = False  # break/continue: loop may go on
                    second.append(q)
                    continue
                if not q.boundary_seen and q.run:
                    self._error(
                        stmt.lineno,
                        "kernel stretch grows across loop iterations "
                        "with no scheduling boundary")
                second.extend(self._exec(body, [q.fork()]))
            for q in second:
                q.dead = False
                if q.locks and q.locks != p.locks:
                    lock, _, line = q.locks[-1]
                    self._error(stmt.lineno,
                                f"{lock} (acquired line {line}) still "
                                f"held at loop back-edge")
                    q.locks = list(p.locks)
                self._flush_stretch(q)
                out.append(q)
        return _dedup(out)

    # -- entry ---------------------------------------------------------
    def walk(self, func: ast.FunctionDef) -> None:
        _bind_defaults(func, self.env, self.bounder)
        self.scopes.append({})
        try:
            paths = self._exec(func.body, [_Path()])
        finally:
            self.scopes.pop()
        for p in paths:
            if p.dead:
                continue
            for lock, _, line in p.locks:
                self._error(func.lineno,
                            f"function exits holding {lock} "
                            f"(acquired line {line})")
            self._flush_stretch(p)


def _dedup(paths: List[_Path]) -> List[_Path]:
    """Merge paths with identical (locks, run, guard) state."""
    seen: Dict[tuple, _Path] = {}
    for p in paths:
        key = (tuple(p.locks), tuple(p.run), p.guard, p.dead)
        if key not in seen:
            seen[key] = p
    return list(seen.values())


def _bind_defaults(func: ast.FunctionDef, env: Dict[str, Term],
                   bounder: "_Bounder") -> None:
    args = func.args
    positional = args.posonlyargs + args.args
    for arg, default in zip(positional[len(positional)
                                       - len(args.defaults):],
                            args.defaults):
        if arg.arg not in env:
            term = bounder.bound(default)
            if not term.unbounded:
                env[arg.arg] = term
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if kw_default is not None and arg.arg not in env:
            term = bounder.bound(kw_default)
            if not term.unbounded:
                env[arg.arg] = term


# ----------------------------------------------------------------------
# Module-level extraction
# ----------------------------------------------------------------------
def _module_constants(tree: ast.Module) -> Dict[str, Term]:
    env: Dict[str, Term] = {}
    for stmt in tree.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            num = _numeric(stmt.value)
            if num is None and isinstance(stmt.value, ast.BinOp):
                left = _numeric(stmt.value.left)
                right = _numeric(stmt.value.right)
                if (left is not None and right is not None
                        and isinstance(stmt.value.op, ast.Mult)):
                    num = left * right
            if num is not None:
                env[stmt.targets[0].id] = const_term(int(num))
    return env


def _is_generator(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.FunctionDef) and node is not func:
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _own_yields(func: ast.FunctionDef) -> bool:
    """Yields directly in *func*'s frame (not in nested defs)."""
    class Finder(ast.NodeVisitor):
        found = False

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if node is func:
                self.generic_visit(node)

        visit_AsyncFunctionDef = visit_FunctionDef

        def visit_Yield(self, node: ast.Yield) -> None:
            self.found = True

        def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
            self.found = True

    finder = Finder()
    finder.visit(func)
    return finder.found


def extract_module(module_name: str) -> ModuleReport:
    """Extract sections, stretches and errors from one module."""
    module = importlib.import_module(module_name)
    source = inspect.getsource(module)
    tree = ast.parse(source, filename=module_name)
    report = ModuleReport(module=module_name)
    constants = _module_constants(tree)

    # Parent chain so nested helpers resolve outward.
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    def scope_chain(func: ast.FunctionDef) -> List[Dict[str,
                                                        ast.FunctionDef]]:
        chain: List[Dict[str, ast.FunctionDef]] = []
        node: ast.AST = func
        while node in parents:
            node = parents[node]
            if isinstance(node, (ast.FunctionDef, ast.Module,
                                 ast.ClassDef)):
                scope = {
                    child.name: child
                    for child in ast.iter_child_nodes(node)
                    if isinstance(child, ast.FunctionDef)
                }
                chain.append(scope)
        chain.reverse()
        return chain

    def enclosing_env(func: ast.FunctionDef) -> Dict[str, Term]:
        env = dict(constants)
        chain: List[ast.FunctionDef] = []
        node: ast.AST = func
        while node in parents:
            node = parents[node]
            if isinstance(node, ast.FunctionDef):
                chain.append(node)
        bounder = _Bounder(env, report)
        for outer in reversed(chain):
            _bind_defaults(outer, env, bounder)
            for stmt in outer.body:
                if (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)):
                    term = bounder.bound(stmt.value)
                    if not term.unbounded:
                        env[stmt.targets[0].id] = term
        return env

    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        if not _is_generator(node) or not _own_yields(node):
            continue
        parent = parents.get(node)
        qual = node.name
        if isinstance(parent, ast.ClassDef):
            qual = f"{parent.name}.{node.name}"
        walker = _FunctionWalker(module_name, qual, scope_chain(node),
                                 enclosing_env(node), report)
        walker.walk(node)

    # One report per distinct section site/guard: collapse duplicates
    # introduced by standalone-plus-inlined walks of nested helpers.
    unique: Dict[tuple, Section] = {}
    for section in report.sections:
        key = (section.module, section.line, section.lock,
               section.guard, section.total)
        if key not in unique:
            unique[key] = section
        elif unique[key].qualname.count(".") > section.qualname.count("."):
            unique[key] = section
    report.sections = sorted(unique.values(),
                             key=lambda s: (s.module, s.line, s.lock))
    dedup_errors: Dict[tuple, ExtractionError] = {}
    for error in report.errors:
        dedup_errors.setdefault((error.module, error.line,
                                 error.message), error)
    report.errors = sorted(dedup_errors.values(),
                           key=lambda e: (e.module, e.line))
    return report


_EXTRACTION_CACHE: Dict[str, ModuleReport] = {}


def cached_extract(module_name: str) -> ModuleReport:
    if module_name not in _EXTRACTION_CACHE:
        _EXTRACTION_CACHE[module_name] = extract_module(module_name)
    return _EXTRACTION_CACHE[module_name]


def clear_extraction_cache() -> None:
    _EXTRACTION_CACHE.clear()


__all__ = [
    "BOUNDARY_ATTRS",
    "ExtractionError",
    "ModuleReport",
    "Section",
    "Stretch",
    "cached_extract",
    "clear_extraction_cache",
    "extract_module",
]

# keep dataclasses.replace import meaningful for callers
_ = replace
