"""The simbound window algebra: per-scenario worst-case bounds.

Composes the extractor's critical-section inventory
(:mod:`repro.analysis.bounds.extract`) with the timing table's support
upper bounds (:mod:`repro.analysis.bounds.support`) into the four
window families the paper's argument rests on -- worst-case irq-off,
preempt-off, BKL-hold and per-lock hold windows -- and, for the
interrupt-response scenarios, a predicted shield response bound.

The model is *config sensitive* exactly the way the paper's patches
are: ``low_latency`` shrinks chunked critical sections to one 250 us
chunk (Morton's lock-break rewrites), ``preemptible`` turns the
reschedule-delay term from "longest syscall stretch" into "longest
preempt-off window" (MontaVista), ``bkl_ioctl_flag`` removes the
guarded BKL sections from the RCIM ioctl path, and the RedHawk softirq
budget bounds how much bottom-half work an interrupt exit may drain
inside someone else's critical section.

Interference model
------------------
A critical section of work ``H`` on one CPU is inflated by interrupt
arrivals and the softirq work they drain at interrupt exit.  The
window is the least fixed point of::

    W = slowdown * H  +  sum_i n_i(W) * frame_i  +  drain(W)

where ``n_i(W) = floor(b_i + r_i * W) * burst_i`` is a declared
leaky-bucket arrival curve for interrupt line *i* (exact for periodic
pacers, a declared assumption for Poisson devices), ``frame_i`` is the
line's hardirq frame (entry + handler), and ``drain(W)`` bounds the
softirq work drained inside the window::

    drain(W) = min(B_start + raised(W),  n_exits(W) * (budget + gran))

``B_start`` is the declared softirq backlog at window start (the
steady-state assumption; capped by the hard per-vector backlog caps),
``raised(W)`` the softirq work raised by in-window interrupts, and the
second argument the structural per-exit budget+granularity cap.
Fixpoint divergence (a window that feeds itself past the iteration
cap) is reported as unbounded rather than truncated.

irq-off windows are different: an interrupt-disabling spinlock
(io_request_lock) masks interference entirely, so its window is just
spin + hold; plain hardirq frames add a *co-push allowance* -- the
event engine can begin a same-timestamp softirq item or task frame on
top of a hardirq frame (observed in trace rings as ksoftirqd items
riding resched IPIs), extending the irq-off window by at most one such
frame.

Everything the model assumes beyond the code it extracted is a named
constant in :class:`Assumptions` and is emitted into the certificate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.bounds.extract import (
    ExtractionError,
    ModuleReport,
    Section,
    Stretch,
    cached_extract,
)
from repro.analysis.bounds.support import Term, TimingBounds
from repro.kernel.config import KernelConfig
from repro.kernel.drivers.net import NetDriver
from repro.kernel.irqflow.softirq import SoftirqQueue
from repro.kernel.syscalls import LOWLAT_CHUNK_NS
from repro.sim.simtime import MSEC, SEC, USEC

__all__ = [
    "Assumptions",
    "ArrivalLine",
    "BoundModelError",
    "CpuClassBounds",
    "ScenarioBounds",
    "compute_bounds",
]

#: Softirq item granularity (one drain-budget overrun unit).
GRANULARITY_NS = SoftirqQueue.ITEM_GRANULARITY_NS

#: Hard per-CPU network backlog cap (excess netif_rx traffic drops).
NET_BACKLOG_CAP_NS = NetDriver.MAX_BACKLOG_NS


class BoundModelError(RuntimeError):
    """The scenario could not be certified (unbounded window)."""


# ----------------------------------------------------------------------
# Declared assumptions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Assumptions:
    """Every constant the bound model assumes beyond extracted code.

    These are the arrival curves and environment bounds a WCET analysis
    must *declare* -- they cannot be derived from the kernel paths
    themselves.  Each one is emitted into the certificate, and the
    runtime cross-check is what validates them against reality.
    """

    #: Poisson interrupt sources are bounded by a leaky bucket
    #: ``floor(b + rate*W)`` with this bucket depth ``b``.
    poisson_bucket: float = 1.0
    #: A NIC burst carries at most ``ceil(factor * weighted_mean)``
    #: frames (the device draws geometric burst sizes, unbounded).
    nic_burst_factor: float = 4.0
    #: Consecutive disk completion interrupts are spaced by at least
    #: this much (single-spindle FIFO disk; sub-median back-to-back
    #: services are rare).
    disk_completion_spacing_ns: int = 500 * USEC
    #: Reschedule-IPI arrival curve (wake traffic between CPUs).
    ipi_rate_hz: float = 3000.0
    ipi_bucket: float = 2.0
    #: On a fully shielded CPU (procs + irqs) the only IPIs are the
    #: measurement task's own preemption wakes: a much sparser curve.
    ipi_shielded_rate_hz: float = 200.0
    ipi_shielded_bucket: float = 1.0
    #: Softirq backlog already queued when a *response-path* window
    #: opens, as a multiple of the interrupt-exit drain budget.  This
    #: is the model's strongest declared assumption: transient deep
    #: backlogs (loopback RPC bursts filling the 2.5 ms netdev cap)
    #: are assumed not to coincide with the measurement task's lock
    #: acquisitions.  Accounting windows do NOT use it -- they assume
    #: the full per-vector backlog caps ("deep" regime) -- so the
    #: observed<=predicted cross-check on window maxima stays sound
    #: even when deep backlogs occur.
    response_backlog_budget_factor: float = 1.0
    #: Residual backlog caps for the non-network vectors (items).
    timer_backlog_items: int = 2
    block_backlog_items: int = 4
    gfx_backlog_items: int = 4
    #: Same-timestamp co-push allowance on hardirq frames includes one
    #: softirq item (granularity) when the CPU has softirq sources.
    copush_softirq_item: bool = True
    #: Largest single ``loopback_send`` (packets): ttcp bursts 16,
    #: NFS RPCs up to 23, nfsd replies up to 15.  Loopback NET_RX work
    #: is raised by *tasks* on their own CPU, so it adds no arrival
    #: line, but it does fill the per-CPU netdev backlog cap -- and
    #: the drop check runs before the enqueue, so the queue can
    #: overshoot the cap by one send of this size.
    loopback_burst_packets: int = 32
    #: Fixpoint iteration cap before declaring divergence.
    max_fixpoint_iters: int = 64

    def notes(self) -> List[str]:
        out = []
        for f in fields(self):
            out.append(f"{f.name} = {getattr(self, f.name)}")
        return out


#: The modules each registered background load executes op programs
#: from (workload bodies plus the driver critical-section paths they
#: enter).  ``broadcast`` is pure device traffic: no task-side paths.
WORKLOAD_MODULES: Dict[str, Tuple[str, ...]] = {
    "broadcast": (),
    "stress-kernel": (
        "repro.workloads.stress_kernel.fs",
        "repro.workloads.stress_kernel.nfs_compile",
        "repro.workloads.stress_kernel.crashme",
        "repro.workloads.stress_kernel.p3_fpu",
        "repro.workloads.stress_kernel.ttcp",
        "repro.workloads.stress_kernel.fifos_mmap",
        "repro.kernel.drivers.blockdev",
    ),
    "scp-copy": ("repro.workloads.netload", "repro.kernel.drivers.blockdev"),
    "ttcp": ("repro.workloads.netload",),
    "disknoise": ("repro.workloads.disknoise",
                  "repro.kernel.drivers.blockdev"),
    "x11perf": ("repro.workloads.x11perf",),
}

#: The modules each measurement program's response path runs through.
MEASUREMENT_MODULES: Dict[str, Tuple[str, ...]] = {
    "realfeel": ("repro.workloads.realfeel", "repro.kernel.drivers.rtc_dev"),
    "rcim": ("repro.workloads.rcim_response",
             "repro.kernel.drivers.rcim_dev"),
    "cyclictest": ("repro.workloads.cyclictest",),
    "determinism": ("repro.workloads.determinism",),
    "fbs-cycle": ("repro.workloads.fbs_cycle",
                  "repro.kernel.drivers.rcim_dev"),
}

#: NIC traffic flows each load adds: (packets_per_sec, burst_mean).
#: Mirrors harness.add_background_broadcast and workloads/netload.py.
NIC_FLOWS: Dict[str, Tuple[float, float]] = {
    "broadcast": (40.0, 1.5),
    "scp-copy": (9500.0, 6.0),
    "ttcp": (800.0, 4.0),
}

#: Loads that submit block I/O (disk completion interrupts follow).
DISK_LOADS = ("stress-kernel", "scp-copy", "disknoise")

#: Loads whose tasks send over the loopback device (ttcp pair, NFS
#: RPC traffic): NET_RX softirq work raised on the sender's own CPU,
#: bounded by the netdev backlog cap rather than a device rate.
LOOPBACK_LOADS = ("stress-kernel",)

#: x11perf's GPU completion-interrupt rate (workloads/x11perf.py).
GPU_IRQS_PER_SEC = 900.0


# ----------------------------------------------------------------------
# Arrival lines
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrivalLine:
    """One interrupt source hitting a CPU class.

    ``count(W) = floor(bucket + rate_hz * W) * burst`` interrupts may
    arrive in any window of length ``W``; each pushes a hardirq frame
    of ``frame_ns`` and raises ``raised_ns`` of softirq work.
    Deterministic pacers use ``bucket=1`` exactly; Poisson devices use
    the declared bucket.
    """

    name: str
    frame_ns: int
    raised_ns: int = 0
    bucket: float = 1.0
    rate_hz: float = 0.0
    burst: int = 1

    def count(self, window_ns: int) -> int:
        return int(math.floor(
            self.bucket + self.rate_hz * window_ns / SEC)) * self.burst


@dataclass
class WindowBreakdown:
    """One certified window with its composition trail."""

    ns: int
    parts: List[str] = field(default_factory=list)

    def describe(self) -> str:
        return " + ".join(self.parts) if self.parts else str(self.ns)


@dataclass
class CpuClassBounds:
    """Worst-case windows for one CPU equivalence class."""

    label: str
    cpus: Tuple[int, ...]
    irq_off_ns: int = 0
    preempt_off_ns: int = 0
    bkl_hold_ns: int = 0
    lock_hold_ns: Dict[str, int] = field(default_factory=dict)
    detail: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "cpus": list(self.cpus),
            "max_irq_off_ns": self.irq_off_ns,
            "max_preempt_off_ns": self.preempt_off_ns,
            "max_bkl_hold_ns": self.bkl_hold_ns,
            "lock_hold_ns": dict(sorted(self.lock_hold_ns.items())),
            "detail": dict(sorted(self.detail.items())),
        }


@dataclass
class ScenarioBounds:
    """The bound model's output for one scenario."""

    scenario: str
    kernel: str
    shielded: bool
    measure_cpu: Optional[int]
    cpu_classes: List[CpuClassBounds]
    response_ns: Optional[int]
    response_detail: str
    assumptions: List[str]
    extraction_assumptions: List[str]
    fault_plan: Optional[str]
    fault_intensity: float

    def class_for_cpu(self, cpu: int) -> CpuClassBounds:
        for cls in self.cpu_classes:
            if cpu in cls.cpus:
                return cls
        raise KeyError(f"cpu {cpu} not covered by {self.scenario} bounds")


# ----------------------------------------------------------------------
# The model
# ----------------------------------------------------------------------
class _ScenarioModel:
    def __init__(self, spec, assumptions: Assumptions) -> None:
        self.spec = spec
        self.a = assumptions
        self.config: KernelConfig = spec.build_config()
        self.tb = TimingBounds(self.config.timing)
        machine = spec.machine
        self.ncpus = machine.ncpus()
        # Worst sustained execution dilation: hyperthread contention
        # (speed floor mean - jitter) times memory-bus coupling.
        ht = ((machine.ht_speed_mean - machine.ht_speed_jitter)
              if machine.hyperthreading else 1.0)
        mem = 1.0 - machine.membus_coupling
        self.slowdown = 1.0 / (ht * mem)
        self.notes: List[str] = []
        self.extraction_notes: List[str] = []

        shield = spec.shield
        self.shielded = bool(shield.procs or shield.irqs or shield.ltmr)
        self.measure_cpu = (spec.measurement.pin_cpu
                            if spec.measurement.pin_cpu is not None
                            else (shield.cpu if self.shielded else None))

        self._load_sections()
        self._build_lines()

    # -- helpers -------------------------------------------------------
    def _wall(self, ns: float) -> int:
        return int(math.ceil(ns * self.slowdown))

    def _resolve(self, term: Term, where: str) -> int:
        value = self.tb.resolve(term)
        if value is None:
            raise BoundModelError(
                f"{self.spec.name}: unbounded cost in {where}: "
                f"{term.describe()}")
        return value

    def _upper(self, key: str, where: str) -> int:
        value = self.tb.upper(key)
        if value is None:
            raise BoundModelError(
                f"{self.spec.name}: timing key {key!r} has no finite "
                f"support upper bound ({where})")
        return value

    # -- extraction ----------------------------------------------------
    def _guard_active(self, guard: Optional[str]) -> bool:
        if guard is None:
            return True
        if guard == "needs_bkl":
            return not self.config.bkl_ioctl_flag
        if guard == "not needs_bkl":
            return self.config.bkl_ioctl_flag
        # Unknown guard: include both ways (conservative).
        return True

    def _load_sections(self) -> None:
        spec = self.spec
        self.workload_reports: List[ModuleReport] = []
        self.measure_reports: List[ModuleReport] = []
        seen = set()
        for load in spec.workloads:
            try:
                mods = WORKLOAD_MODULES[load]
            except KeyError:
                raise BoundModelError(
                    f"{spec.name}: load {load!r} has no module map; "
                    f"simbound cannot certify it") from None
            for mod in mods:
                if mod not in seen:
                    seen.add(mod)
                    self.workload_reports.append(cached_extract(mod))
        program = spec.measurement.program
        try:
            mmods = MEASUREMENT_MODULES[program]
        except KeyError:
            raise BoundModelError(
                f"{spec.name}: measurement program {program!r} has no "
                f"module map; simbound cannot certify it") from None
        for mod in mmods:
            self.measure_reports.append(cached_extract(mod))

        errors: List[ExtractionError] = []
        for report in self.workload_reports + self.measure_reports:
            errors.extend(report.errors)
            self.extraction_notes.extend(report.assumptions)
        if errors:
            raise BoundModelError(
                f"{spec.name}: extraction errors:\n" +
                "\n".join(e.render() for e in errors))

        def holds(reports: Sequence[ModuleReport]) -> Dict[str, List[int]]:
            by_lock: Dict[str, List[int]] = {}
            for report in reports:
                for sec in report.sections:
                    if not self._guard_active(sec.guard):
                        continue
                    work = self._resolve(
                        sec.total, f"{sec.qualname} ({sec.module}:{sec.line})")
                    if sec.chunked and self.config.low_latency:
                        # Morton lock-break: drop/retake per 250us chunk.
                        work = min(work, LOWLAT_CHUNK_NS)
                    by_lock.setdefault(sec.lock, []).append(work)
            return by_lock

        self.workload_holds = holds(self.workload_reports)
        self.measure_holds = holds(self.measure_reports)
        self.workload_stretches = [
            s for r in self.workload_reports for s in r.stretches]
        self.measure_stretches = [
            s for r in self.measure_reports for s in r.stretches]

        # Rogue lock-campers from the fault plan are additional holders.
        self.rogue_holds: Dict[str, int] = {}
        self.storm_lines: List[Tuple[float, int, int]] = []  # rate, burst, frame
        self.spurious_disk_hz = 0.0
        self.tick_drift = 0.0
        if spec.fault_plan:
            from repro.faults.plan import fault_plan
            intensity = spec.fault_intensity
            plan = fault_plan(spec.fault_plan)
            default_frame = (self._upper("irq.entry", "storm line")
                             + self._upper("irq.handler.default", "storm"))
            for inj in plan.injectors:
                if inj.kind == "rogue-task":
                    lock = inj.param("lock", "bkl")
                    hold = max(1000, int(inj.param("hold_ns", 0) * intensity))
                    self.rogue_holds[lock] = max(
                        self.rogue_holds.get(lock, 0), hold)
                elif inj.kind == "irq-storm":
                    rate = float(inj.param("rate_hz", 0.0)) * intensity
                    burst = int(inj.param("burst_max", 1))
                    self.storm_lines.append((rate, burst, default_frame))
                elif inj.kind == "device-irq":
                    if inj.param("mode") == "spurious":
                        self.spurious_disk_hz += (
                            float(inj.param("rate_hz", 0.0)) * intensity)
                    elif inj.param("mode") == "stuck":
                        extra = int(inj.param("extra", 1))
                        self.notes.append(
                            f"stuck device irqs replay {extra} extra "
                            f"deliveries; folded into line burst")
                elif inj.kind == "tick-jitter":
                    self.tick_drift = max(
                        self.tick_drift,
                        float(inj.param("drift", 0.0)) * intensity)
                elif inj.kind == "irq-misroute":
                    self.notes.append(
                        "irq-misroute window steers a device line onto "
                        "the target CPU; lines are modelled on every "
                        "unshielded CPU already")

    # -- arrival lines -------------------------------------------------
    def _build_lines(self) -> None:
        """Partition CPUs into classes and attach interrupt lines."""
        spec, cfg, a = self.spec, self.config, self.a
        shield = spec.shield
        all_cpus = tuple(range(self.ncpus))
        if self.shielded and self.measure_cpu is not None and self.ncpus > 1:
            measure_cpus = (self.measure_cpu,)
            other_cpus = tuple(c for c in all_cpus if c != self.measure_cpu)
        else:
            measure_cpus = all_cpus
            other_cpus = ()
        self.measure_cpus = measure_cpus
        self.other_cpus = other_cpus

        def entry() -> int:
            return self._upper("irq.entry", "irq entry")

        def lines_for(cpus: Tuple[int, ...], is_measure: bool
                      ) -> List[ArrivalLine]:
            lines: List[ArrivalLine] = []
            if not cpus:
                return lines
            has_cpu0 = 0 in cpus
            # The irq shield steers floating device lines off the
            # shielded CPU; pinned lines follow pin_irq regardless.
            floating_here = not (self.shielded and shield.irqs and is_measure
                                 and self.ncpus > 1)
            tick_rate = (1.0 + self.tick_drift) * SEC / cfg.tick_ns
            tick_off = (self.shielded and shield.ltmr and is_measure
                        and self.ncpus > 1)
            if not tick_off:
                raised = (self._upper("tick.timer_softirq", "tick")
                          if has_cpu0 else 0)
                lines.append(ArrivalLine(
                    "tick", entry() + self._upper("tick.cost", "tick"),
                    raised_ns=raised, bucket=1.0, rate_hz=tick_rate))
            elif has_cpu0:  # pragma: no cover - shield cpu is never 0 here
                lines.append(ArrivalLine(
                    "timer-softirq", 0,
                    raised_ns=self._upper("tick.timer_softirq", "tick"),
                    bucket=1.0, rate_hz=tick_rate))
            if spec.rtc_periodic:
                pinned_here = (shield.pin_irq == "rtc"
                               and self.measure_cpu in cpus)
                if pinned_here or (shield.pin_irq != "rtc" and floating_here):
                    lines.append(ArrivalLine(
                        "rtc", entry() + self._upper("irq.handler.rtc",
                                                     "rtc"),
                        bucket=1.0, rate_hz=float(spec.rtc_hz)))
            # The rcim timer fires when the spec arms it (fig7) or
            # when the FBS program drives it at its minor-cycle rate.
            rcim_rate = 0.0
            if spec.rcim_timer:
                rcim_rate = SEC / max(1, spec.rcim_period_ns)
            elif spec.measurement.program == "fbs-cycle":
                rcim_rate = SEC / max(1, spec.measurement.fbs_cycle_ns)
            if rcim_rate > 0:
                pinned_here = (shield.pin_irq == "rcim"
                               and self.measure_cpu in cpus)
                if pinned_here or (shield.pin_irq != "rcim"
                                   and floating_here):
                    lines.append(ArrivalLine(
                        "rcim", entry() + self._upper("irq.handler.rcim",
                                                      "rcim"),
                        bucket=1.0, rate_hz=rcim_rate))
            flows = [NIC_FLOWS[w] for w in spec.workloads if w in NIC_FLOWS]
            if flows and floating_here:
                burst_rate = sum(p / max(1.0, b) for p, b in flows)
                pkt_rate = sum(p for p, _ in flows)
                wmean = (sum(b * (p / max(1.0, b)) for p, b in flows)
                         / burst_rate)
                pkt_cap = int(math.ceil(a.nic_burst_factor * wmean))
                self.notes.append(
                    f"nic burst <= {pkt_cap} frames "
                    f"({a.nic_burst_factor} x weighted mean {wmean:.2f})")
                # Hardirq frames occur per *burst*; receive softirq work
                # accrues per *packet*.  Splitting the arrival curve keeps
                # the long-run raised rate at the flow's true packet rate
                # (a single pkt_cap-sized line at burst rate would claim
                # nic_burst_factor times the real throughput and spuriously
                # diverge the fixpoint on heavy flows like scp-copy).
                lines.append(ArrivalLine(
                    "nic", entry() + self._upper("irq.handler.net", "nic"),
                    bucket=a.poisson_bucket, rate_hz=burst_rate))
                lines.append(ArrivalLine(
                    "nic-rx", 0,
                    raised_ns=self._upper("softirq.net_rx_per_packet",
                                          "nic rx"),
                    bucket=float(pkt_cap), rate_hz=pkt_rate))
            if (any(w in LOOPBACK_LOADS for w in spec.workloads)
                    and not (is_measure and self.shielded
                             and shield.procs)):
                # Loopback senders are ordinary tasks: a process
                # shield keeps them (and their NET_RX raises) off the
                # measure CPU entirely.  Elsewhere their queued work
                # is bounded by the netdev backlog cap; the zero-rate
                # marker line contributes no arrivals to the fixpoint,
                # only the backlog-cap term and the drain-item bound.
                lines.append(ArrivalLine(
                    "lo-rx", 0,
                    raised_ns=(a.loopback_burst_packets
                               * self._upper("softirq.net_rx_per_packet",
                                             "loopback rx")),
                    bucket=0.0, rate_hz=0.0))
            disk_rate = 0.0
            if any(w in DISK_LOADS for w in spec.workloads):
                disk_rate += SEC / a.disk_completion_spacing_ns
            disk_rate += self.spurious_disk_hz
            if disk_rate > 0 and floating_here:
                lines.append(ArrivalLine(
                    "disk", entry() + self._upper("irq.handler.disk",
                                                  "disk"),
                    raised_ns=self._upper("softirq.block_complete", "disk"),
                    bucket=a.poisson_bucket, rate_hz=disk_rate))
            if "x11perf" in spec.workloads and floating_here:
                lines.append(ArrivalLine(
                    "gfx", entry() + self._upper("irq.handler.gfx", "gfx"),
                    raised_ns=self._upper("softirq.gfx_tasklet", "gfx"),
                    bucket=a.poisson_bucket, rate_hz=GPU_IRQS_PER_SEC))
            if self.ncpus > 1:
                fully_shielded = (is_measure and self.shielded
                                  and shield.procs and shield.irqs)
                lines.append(ArrivalLine(
                    "ipi", entry() + self._upper("irq.ipi", "ipi"),
                    bucket=(a.ipi_shielded_bucket if fully_shielded
                            else a.ipi_bucket),
                    rate_hz=(a.ipi_shielded_rate_hz if fully_shielded
                             else a.ipi_rate_hz)))
            for i, (rate, burst, frame) in enumerate(self.storm_lines):
                if floating_here:
                    lines.append(ArrivalLine(
                        f"storm{i}", frame, bucket=1.0, rate_hz=rate,
                        burst=burst))
            return lines

        self.lines_measure = lines_for(measure_cpus, True)
        self.lines_other = lines_for(other_cpus, False)

    # -- softirq backlog ----------------------------------------------
    def _backlog_start(self, lines: List[ArrivalLine],
                       deep: bool = True) -> int:
        """Softirq backlog at window start for a CPU class.

        ``deep`` (accounting windows) assumes the full per-vector
        backlog caps -- the hard bounds the kernel's drop logic
        enforces.  Shallow (response path) additionally applies the
        declared steady-state assumption: queue near one exit budget.
        """
        a, cfg = self.a, self.config
        caps = 0
        names = {l.name for l in lines}
        if "nic-rx" in names or "lo-rx" in names:
            # One shared netdev backlog cap per CPU; the drop check
            # precedes the enqueue, so the queue overshoots by at most
            # the largest single enqueue (device burst or loopback
            # send, whichever is bigger).
            burst = max((int(l.bucket) * l.raised_ns for l in lines
                         if l.name == "nic-rx"), default=0)
            burst = max(burst, max((l.raised_ns for l in lines
                                    if l.name == "lo-rx"), default=0))
            caps += NET_BACKLOG_CAP_NS + burst
        if any(l.raised_ns and l.name in ("tick", "timer-softirq")
               for l in lines):
            caps += a.timer_backlog_items * self._upper(
                "tick.timer_softirq", "backlog")
        if "disk" in names:
            caps += a.block_backlog_items * self._upper(
                "softirq.block_complete", "backlog")
        if "gfx" in names:
            caps += a.gfx_backlog_items * self._upper(
                "softirq.gfx_tasklet", "backlog")
        if caps == 0:
            return 0
        if not deep:
            caps = min(caps, int(a.response_backlog_budget_factor
                                 * cfg.softirq_exit_budget_ns))
        return caps

    # -- interference fixpoint ----------------------------------------
    def _fixpoint(self, base_work_ns: int, lines: List[ArrivalLine],
                  label: str, irqs_off: bool = False,
                  extra_wall_ns: int = 0,
                  deep: bool = True) -> WindowBreakdown:
        """Least fixed point of the window equation for ``base_work_ns``
        of critical-section work plus ``extra_wall_ns`` of already-wall
        time (spin waits)."""
        base_wall = self._wall(base_work_ns) + extra_wall_ns
        if irqs_off or not lines:
            return WindowBreakdown(base_wall, [f"{label}={base_wall}"])
        cfg, a = self.config, self.a
        backlog = self._backlog_start(lines, deep=deep)
        per_exit = cfg.softirq_exit_budget_ns + GRANULARITY_NS
        window = base_wall
        for _ in range(a.max_fixpoint_iters):
            frames = 0
            raised = 0
            exits = 0
            for line in lines:
                n = line.count(window)
                frames += n * line.frame_ns
                raised += n * line.raised_ns
                exits += n
            drain = min(backlog + raised, exits * per_exit)
            new = base_wall + self._wall(frames) + self._wall(drain)
            if new == window:
                parts = [f"{label}={base_wall}",
                         f"irq-frames={self._wall(frames)}",
                         f"softirq-drain={self._wall(drain)}"]
                return WindowBreakdown(window, parts)
            if new < window:  # pragma: no cover - monotone by construction
                window = new
                continue
            window = new
        raise BoundModelError(
            f"{self.spec.name}: window fixpoint for {label!r} diverged "
            f"after {a.max_fixpoint_iters} iterations "
            f"(last {window} ns); interference outruns the drain budget")

    # -- window families -----------------------------------------------
    def _max_task_frame(self, reports_holds: Dict[str, List[int]],
                        stretches: List[Stretch]) -> int:
        """Largest single frame a task can push at one timestamp."""
        worst = 0
        for holds in reports_holds.values():
            worst = max(worst, max(holds, default=0))
        for stretch in stretches:
            for term, chunked in stretch.components:
                value = self._resolve(term, "stretch component")
                if chunked and self.config.low_latency:
                    value = min(value, LOWLAT_CHUNK_NS)
                worst = max(worst, value)
        return worst

    def _class_holds(self, is_measure: bool
                     ) -> Tuple[Dict[str, List[int]], List[Stretch]]:
        """Lock holds + stretches executed by tasks of one class.

        With a procs shield the measurement program is alone on the
        shielded CPU; otherwise everything (rogues included) runs
        everywhere.
        """
        procs_shielded = (self.shielded and self.spec.shield.procs
                          and self.ncpus > 1)
        if is_measure and procs_shielded:
            sources = [self.measure_holds]
            rogues_here = False
            stretches = self.measure_stretches
        elif is_measure:  # unshielded: single class runs everything
            sources = [self.workload_holds, self.measure_holds]
            rogues_here = True
            stretches = self.workload_stretches + self.measure_stretches
        else:
            sources = [self.workload_holds]
            rogues_here = True
            stretches = self.workload_stretches
        holds: Dict[str, List[int]] = {}
        for src in sources:
            for lock, values in src.items():
                holds.setdefault(lock, []).extend(values)
        if rogues_here:
            for lock, hold in self.rogue_holds.items():
                holds.setdefault(lock, []).append(hold)
        return holds, stretches

    def _grant_windows(self, holds: Dict[str, List[int]],
                       lines: List[ArrivalLine],
                       deep: bool = True) -> Dict[str, int]:
        """Acquire-to-release windows per lock for one class: hold
        work inflated by that class's interference.  This is what a
        remote spinner waits out per FIFO handoff."""
        grants: Dict[str, int] = {}
        for lock, values in holds.items():
            worst = max(values)
            if lock == "io_request_lock":
                grants[lock] = self._wall(worst)  # irqs masked: no inflation
            else:
                grants[lock] = self._fixpoint(
                    worst, lines, f"{lock}-grant", deep=deep).ns
        return grants

    def _class_bounds(self, label: str, cpus: Tuple[int, ...],
                      lines: List[ArrivalLine], is_measure: bool,
                      holds: Dict[str, List[int]],
                      stretches: List[Stretch],
                      remote_grants: Dict[str, int]) -> CpuClassBounds:
        cls = CpuClassBounds(label=label, cpus=cpus)
        if not cpus:
            return cls
        # Per-lock windows as the *accounting* sees them: preempt_count
        # rises before the spin, so spin-in (each other CPU's full
        # grant window, FIFO handoff) + own hold + interference.
        preempt_candidates: List[Tuple[str, WindowBreakdown]] = []
        io_window = 0
        for lock, values in sorted(holds.items()):
            worst = max(values)
            spin = (self.ncpus - 1) * remote_grants.get(lock, 0)
            if lock == "io_request_lock":
                io_window = spin + self._wall(worst)
                window = WindowBreakdown(
                    io_window, ["io_request_lock spin+hold (irqs masked)"])
            else:
                window = self._fixpoint(worst, lines, f"{lock}-hold",
                                        extra_wall_ns=spin)
                if spin:
                    window.parts.insert(0, f"spin-in={spin}")
            cls.lock_hold_ns[lock] = window.ns
            cls.detail[f"lock:{lock}"] = window.describe()
            preempt_candidates.append((lock, window))
            if lock == "bkl":
                cls.bkl_hold_ns = max(cls.bkl_hold_ns, window.ns)

        # A softirq drain outside any hold is itself a preempt-off
        # window (do_softirq runs with preemption disabled).
        backlog = self._backlog_start(lines)
        if backlog:
            biggest_raise = max((l.raised_ns for l in lines), default=0)
            drain_alone = min(
                self.config.softirq_exit_budget_ns + GRANULARITY_NS,
                backlog + biggest_raise)
            window = WindowBreakdown(self._wall(drain_alone),
                                     ["standalone softirq drain"])
            preempt_candidates.append(("softirq-drain", window))

        for _name, window in preempt_candidates:
            cls.preempt_off_ns = max(cls.preempt_off_ns, window.ns)
        cls.detail["preempt_off"] = max(
            preempt_candidates, key=lambda nw: nw[1].ns,
            default=("none", WindowBreakdown(0)))[1].describe()

        # irq-off: the widest hardirq frame plus the same-timestamp
        # co-push allowance, or an interrupt-disabling lock window.
        copush = self._max_task_frame(holds, stretches)
        if self.a.copush_softirq_item and any(l.raised_ns for l in lines):
            copush = max(copush, GRANULARITY_NS)
        worst_frame = max((l.frame_ns for l in lines), default=0)
        frame_based = self._wall(worst_frame + copush)
        cls.irq_off_ns = max(frame_based, io_window)
        cls.detail["irq_off"] = (
            f"max-frame={self._wall(worst_frame)} + co-push={self._wall(copush)}"
            if frame_based >= io_window else
            "io_request_lock spin+hold (irqs masked)")
        return cls

    # -- response composition ------------------------------------------
    def _resched_delay(self, lines: List[ArrivalLine],
                       other_cls: Optional[CpuClassBounds],
                       own_cls: CpuClassBounds) -> Tuple[int, str]:
        """Worst delay until the woken measurement task gets its CPU."""
        procs_shielded = (self.shielded and self.spec.shield.procs
                          and self.ncpus > 1)
        if procs_shielded:
            return 0, "shielded: cpu is idle"
        if self.config.preemptible:
            return (own_cls.preempt_off_ns,
                    "preempt kernel: worst preempt-off window")
        # Non-preemptible: wait out the current task's longest
        # uninterruptible syscall stretch (low-latency caps chunked
        # components, but unchunked runs still execute whole).
        worst = 0
        for stretch in self.workload_stretches + self.measure_stretches:
            run = 0
            longest = 0
            for term, chunked in stretch.components:
                value = self._resolve(term, "stretch")
                if chunked and self.config.low_latency:
                    longest = max(longest, min(value, LOWLAT_CHUNK_NS))
                    run = 0
                else:
                    run += value
                    longest = max(longest, run)
            worst = max(worst, longest)
        window = self._fixpoint(worst, lines, "resched-stretch",
                                deep=False)
        return window.ns, "non-preempt stretch + interference"

    def _response(self, measure_cls: CpuClassBounds,
                  other_cls: Optional[CpuClassBounds]
                  ) -> Tuple[Optional[int], str]:
        program = self.spec.measurement.program
        if program not in ("realfeel", "rcim", "cyclictest"):
            return None, f"{program}: not an interrupt-response scenario"
        lines = self.lines_measure
        parts: List[Tuple[str, int]] = []

        def add(name: str, ns: int) -> None:
            parts.append((name, int(ns)))

        # 1. The timer interrupt may land while the measure CPU has
        #    interrupts masked or is finishing a frame.
        add("in-flight", measure_cls.irq_off_ns)
        # 2. The timer line's own hardirq frame.
        if program == "realfeel":
            frame = (self._upper("irq.entry", "rtc")
                     + self._upper("irq.handler.rtc", "rtc"))
        elif program == "rcim":
            frame = (self._upper("irq.entry", "rcim")
                     + self._upper("irq.handler.rcim", "rcim"))
        else:
            frame = (self._upper("irq.entry", "tick")
                     + self._upper("tick.cost", "tick"))
        add("timer-frame", self._wall(frame))
        # 3. Softirq drain at that interrupt's exit (steady-state
        #    backlog assumption; see Assumptions).
        backlog = self._backlog_start(lines, deep=False)
        if backlog:
            add("exit-drain", self._wall(min(
                self.config.softirq_exit_budget_ns + GRANULARITY_NS,
                backlog)))
        # 4. Reschedule delay + context switch.
        resched, why = self._resched_delay(lines, other_cls, measure_cls)
        add("resched", resched)
        add("switch", self._wall(self._upper("sched.switch", "switch")))
        # 5. The wake-side syscall-return path (driver wake stretch,
        #    including its own lock holds).
        wake = 0
        for stretch in self.measure_stretches:
            total = sum(self._resolve(t, "wake stretch")
                        for t, _ in stretch.components)
            wake = max(wake, total)
        add("wake-path", self._wall(wake))
        # 6. Spin-in on every lock the wake path takes, against the
        #    worst remote holder's grant window (acquire-to-release,
        #    interference-inflated), one FIFO handoff per other CPU.
        for lock in sorted(self.measure_holds):
            remote = self._remote_grants_measure.get(lock, 0)
            if remote and self.ncpus > 1:
                add(f"spin:{lock}", (self.ncpus - 1) * remote)
        # 7. Vanilla cyclictest: nanosleep rounds up to jiffies.  The
        #    expiry itself is a direct simulator event (kernel._sleep
        #    arms sim.after, no cross-CPU timer-wheel softirq), so no
        #    remote-CPU window enters the wake path beyond the IPI and
        #    local terms already counted.
        if program == "cyclictest" and not self.config.highres_timers:
            add("jiffy-quantization", 2 * self.config.tick_ns)
        # 8. Syscall exit (+ the stock handle_softirq drain).
        add("syscall-exit", self._wall(self._upper("syscall.exit", "exit")))
        if self.config.softirq_syscall_exit_drain and backlog:
            add("syscall-exit-drain", self._wall(backlog))

        base = sum(ns for _, ns in parts)
        # 9. Interrupt frames + drains landing on the measure CPU while
        #    the response is in progress (fixpoint over the total).
        final = self._fixpoint(0, lines, "response", extra_wall_ns=base,
                               deep=False)
        detail = " + ".join(f"{name}={ns}" for name, ns in parts)
        if final.ns > base:
            detail += f" + local-irqs={final.ns - base}"
        return final.ns, detail

    # -- entry ---------------------------------------------------------
    def compute(self) -> ScenarioBounds:
        measure_holds, measure_stretches = self._class_holds(is_measure=True)
        measure_grants = self._grant_windows(measure_holds,
                                             self.lines_measure, deep=True)
        classes: List[CpuClassBounds] = []
        other_cls: Optional[CpuClassBounds] = None
        if self.other_cpus:
            other_holds, other_stretches = self._class_holds(
                is_measure=False)
            other_grants = self._grant_windows(other_holds,
                                               self.lines_other, deep=True)
            other_cls = self._class_bounds(
                "interference cpus", self.other_cpus, self.lines_other,
                is_measure=False, holds=other_holds,
                stretches=other_stretches, remote_grants=measure_grants)
            # The shielded task spins against the interference CPUs;
            # the response path applies the steady-state (shallow
            # backlog) assumption to the remote grant.
            self._remote_grants_measure = self._grant_windows(
                other_holds, self.lines_other, deep=False)
            measure_remote = other_grants
        else:
            # Single class: the "remote" holder is the same population
            # on another CPU.
            self._remote_grants_measure = self._grant_windows(
                measure_holds, self.lines_measure, deep=False)
            measure_remote = measure_grants
        measure_label = ("shielded cpu" if self.shielded and self.other_cpus
                         else "all cpus")
        measure_cls = self._class_bounds(
            measure_label, self.measure_cpus, self.lines_measure,
            is_measure=True, holds=measure_holds,
            stretches=measure_stretches, remote_grants=measure_remote)
        classes.append(measure_cls)
        if other_cls is not None:
            classes.append(other_cls)
        response_ns, response_detail = self._response(measure_cls, other_cls)
        return ScenarioBounds(
            scenario=self.spec.name,
            kernel=self.config.name,
            shielded=self.shielded,
            measure_cpu=self.measure_cpu,
            cpu_classes=classes,
            response_ns=response_ns,
            response_detail=response_detail,
            assumptions=self.a.notes() + self.notes,
            extraction_assumptions=sorted(set(self.extraction_notes)),
            fault_plan=self.spec.fault_plan,
            fault_intensity=self.spec.fault_intensity,
        )


def compute_bounds(spec, assumptions: Optional[Assumptions] = None
                   ) -> ScenarioBounds:
    """Compute the static bound certificate inputs for one scenario."""
    return _ScenarioModel(spec, assumptions or Assumptions()).compute()
