"""Machine-readable bound certificates.

A :class:`BoundCertificate` is the serialisable artifact simbound
emits per scenario: the scenario/kernel identity, the per-CPU-class
worst-case windows, the predicted shield response bound, and every
declared assumption the numbers rest on.  Certificates are
*deterministic* -- same code, same scenario, same assumptions, same
bytes -- so they can be diffed in review and golden-tested; they
carry a content digest instead of a timestamp.

The schema is versioned (``CERT_SCHEMA``).  Consumers (the CI gate,
``faults/margin.py``'s analytic twin, external tooling) should reject
certificates whose schema they do not understand rather than guess.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.bounds.model import (
    Assumptions,
    ScenarioBounds,
    compute_bounds,
)
from repro.sim.simtime import MSEC

__all__ = [
    "CERT_SCHEMA",
    "RESPONSE_GATE_NS",
    "BoundCertificate",
    "certificate_for",
    "load_certificate_dict",
]

#: Bump on any change to the certificate dict layout.
CERT_SCHEMA = 1

#: The paper's headline guarantee: sub-millisecond response on a
#: shielded CPU.  Certificates record whether their predicted response
#: clears this gate so CI does not re-derive policy from raw numbers.
RESPONSE_GATE_NS = 1 * MSEC


@dataclass
class BoundCertificate:
    """A :class:`ScenarioBounds` plus identity + gate verdict."""

    bounds: ScenarioBounds

    @property
    def scenario(self) -> str:
        return self.bounds.scenario

    @property
    def gate_applicable(self) -> bool:
        """The sub-ms response gate only binds on shielded latency
        scenarios -- unshielded runs are the paper's *contrast*, and
        determinism/fbs programs measure no interrupt response."""
        return self.bounds.shielded and self.bounds.response_ns is not None

    @property
    def gate_passed(self) -> Optional[bool]:
        if not self.gate_applicable:
            return None
        assert self.bounds.response_ns is not None
        return self.bounds.response_ns <= RESPONSE_GATE_NS

    def to_dict(self) -> Dict[str, object]:
        b = self.bounds
        body: Dict[str, object] = {
            "schema": CERT_SCHEMA,
            "kind": "simbound-certificate",
            "scenario": b.scenario,
            "kernel": b.kernel,
            "shielded": b.shielded,
            "measure_cpu": b.measure_cpu,
            "fault_plan": b.fault_plan,
            "fault_intensity": b.fault_intensity,
            "cpu_classes": [cls.to_dict() for cls in b.cpu_classes],
            "predicted_response_ns": b.response_ns,
            "response_detail": b.response_detail,
            "response_gate_ns": RESPONSE_GATE_NS,
            "gate_applicable": self.gate_applicable,
            "gate_passed": self.gate_passed,
            "assumptions": list(b.assumptions),
            "extraction_assumptions": list(b.extraction_assumptions),
        }
        body["digest"] = _digest(body)
        return body

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary_line(self) -> str:
        b = self.bounds
        resp = ("-" if b.response_ns is None
                else f"{b.response_ns / 1e6:.3f}ms")
        gate = {True: "PASS", False: "FAIL", None: "n/a"}[self.gate_passed]
        worst_pre = max((c.preempt_off_ns for c in b.cpu_classes), default=0)
        worst_irq = max((c.irq_off_ns for c in b.cpu_classes), default=0)
        return (f"{b.scenario:<22s} kernel={b.kernel:<8s} "
                f"response<={resp:>11s} gate={gate:<4s} "
                f"irqoff<={worst_irq / 1e6:.3f}ms "
                f"preoff<={worst_pre / 1e6:.3f}ms")


def _digest(body: Dict[str, object]) -> str:
    canon = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canon.encode()).hexdigest()


def certificate_for(spec, assumptions: Optional[Assumptions] = None,
                    ) -> BoundCertificate:
    """Run the bound model for *spec* and wrap the result."""
    return BoundCertificate(compute_bounds(spec, assumptions))


def load_certificate_dict(data: Dict[str, object]) -> Dict[str, object]:
    """Validate a parsed certificate dict (schema + digest)."""
    if data.get("schema") != CERT_SCHEMA:
        raise ValueError(
            f"unsupported certificate schema {data.get('schema')!r} "
            f"(expected {CERT_SCHEMA})")
    body = {k: v for k, v in data.items() if k != "digest"}
    expect = _digest(body)
    if data.get("digest") != expect:
        raise ValueError("certificate digest mismatch: content was "
                         "edited after emission")
    return data
