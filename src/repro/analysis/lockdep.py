"""Runtime lock-dependency and kernel-invariant validation.

A simulated-kernel analogue of Linux's lockdep: an **observational**
validator (the same contract as :mod:`repro.analysis.probe` -- zero
simulated-time perturbation, no RNG draws, installable/removable at
any point) that watches every lock transition, context switch, and
interrupt delivery, and reports violations of the invariants the
paper's whole analysis rests on:

* **Lock-order inversions (ABBA)** -- an incrementally maintained
  lock-class ordering graph; observing ``A -> B`` after ``B ->.. A``
  was ever established reports a potential deadlock even if the two
  acquisitions never actually overlap in time (the classic lockdep
  strength).
* **Sleep-in-atomic** -- blocking, sleeping, or a semaphore ``down()``
  attempted while ``preempt_count > 0``.
* **Irq-unsafe locks in interrupt context** -- taking a
  non-irq-disabling spinlock from inside a hardirq or softirq handler
  body.
* **Unbalanced preempt/irq-off state at task exit** -- a task exiting
  while still holding locks, a raised ``preempt_count``, or a
  non-zero irq-disable depth.
* **Over-budget hold windows** -- irq-disabling-lock and BKL hold
  times beyond configurable thresholds (the bounded-critical-section
  claim of the paper's Section 6).
* **Shield-affinity violations** -- a task installed on, or a device
  interrupt routed to, a CPU its effective (shield-rewritten) mask
  excludes.

Violations are structured :class:`LockdepViolation` records rendered
through :func:`repro.metrics.report.lockdep_summary`; strict mode
raises :class:`~repro.sim.errors.KernelPanic` at the first violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.sim.errors import KernelPanic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.kernel.sync.semaphore import Semaphore
    from repro.kernel.sync.spinlock import SpinLock
    from repro.kernel.task import Task


@dataclass(slots=True)
class LockdepConfig:
    """Thresholds and behaviour of one validator instance.

    Budgets default to ``None`` (disabled): hold-time ceilings are
    scenario-specific -- a vanilla-2.4 run legitimately holds the BKL
    for milliseconds, which is the very pathology the paper measures --
    so they are opt-in rather than one-size-fits-all.
    """

    #: Raise :class:`KernelPanic` at the first violation.
    strict: bool = False
    #: Budget for irq-disabling spinlock hold windows (ns), or None.
    irq_off_budget_ns: Optional[int] = None
    #: Budget for BKL hold windows (ns), or None.
    bkl_budget_ns: Optional[int] = None
    #: Budget for any other spinlock hold window (ns), or None.
    hold_budget_ns: Optional[int] = None
    #: Stop recording after this many violations (reports stay bounded).
    max_violations: int = 10_000


@dataclass(frozen=True, slots=True)
class LockdepViolation:
    """One observed invariant violation."""

    kind: str                   # "abba", "sleep-in-atomic", ...
    time_ns: int
    task: Optional[str]
    cpu: Optional[int]
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "time_ns": self.time_ns,
                "task": self.task, "cpu": self.cpu, "detail": self.detail}


@dataclass(slots=True)
class LockClassStats:
    """Per-lock-class observation counters (for the report)."""

    acquisitions: int = 0
    max_hold_ns: int = 0
    total_hold_ns: int = 0


class LockdepValidator:
    """Observes one kernel's locking/irq/affinity behaviour.

    Like :class:`~repro.analysis.probe.WakeLatencyProbe`, the validator
    wraps kernel internals through instance attributes and hooks the
    lock objects themselves (``SpinLock.lockdep``/``Semaphore.lockdep``);
    ``uninstall()`` restores everything.  Nothing here consumes
    simulated time or random numbers, so an instrumented run is
    byte-identical to a bare one.
    """

    def __init__(self, kernel: "Kernel",
                 config: Optional[LockdepConfig] = None) -> None:
        self.kernel = kernel
        self.config = config or LockdepConfig()
        self.violations: List[LockdepViolation] = []
        self.class_stats: Dict[str, LockClassStats] = {}
        self._installed = False
        # Lock-order graph: class name -> classes taken while holding it.
        self._edges: Dict[str, Set[str]] = {}
        # Per-task stacks of held lock classes (pid -> [class, ...]).
        self._held: Dict[int, List[str]] = {}
        self._seen: Set[Tuple[str, str]] = set()
        self._attached: List[Any] = []
        self._orig_actions: Dict[int, tuple] = {}
        # Python-call-stack context flags: set only while a handler
        # body is actually executing (frame-kind state on the CPU is
        # not usable -- a softirq can run *above* a task that is
        # legitimately spinning for a lock handoff).
        self._active_irq_cpu: Optional[int] = None
        self._softirq_action_depth = 0

    # ==================================================================
    # Installation
    # ==================================================================
    def install(self) -> "LockdepValidator":
        if self._installed:
            return self
        self._installed = True
        kernel = self.kernel

        for lock in vars(kernel.locks).values():
            self.attach_lock(lock)

        # --- wrapped kernel internals ---------------------------------
        orig_acquire = kernel._acquire
        orig_block = kernel._block
        orig_sleep = kernel._sleep
        orig_sem_down = kernel._sem_down
        orig_sem_up = kernel._sem_up
        orig_task_exit = kernel._task_exit
        orig_install_task = kernel._install_task
        orig_deliver_irq = kernel._deliver_irq
        orig_register = kernel.register_irq_handler
        orig_raise_softirq = kernel.raise_softirq

        def acquire(task, cpu_idx, lock):
            if lock.lockdep is not self:
                self.attach_lock(lock)
            orig_acquire(task, cpu_idx, lock)

        def block(task, cpu_idx, wq):
            if task.preempt_count > 0:
                self._violation(
                    "sleep-in-atomic", task.on_cpu, task,
                    f"blocking on {wq.name} with preempt_count="
                    f"{task.preempt_count}{self._held_suffix(task)}")
            orig_block(task, cpu_idx, wq)

        def sleep(task, cpu_idx, duration):
            if task.preempt_count > 0:
                self._violation(
                    "sleep-in-atomic", task.on_cpu, task,
                    f"sleeping {duration} ns with preempt_count="
                    f"{task.preempt_count}{self._held_suffix(task)}")
            orig_sleep(task, cpu_idx, duration)

        def sem_down(task, cpu_idx, sem):
            if sem.lockdep is not self:
                self.attach_lock(sem)
            if task.preempt_count > 0:
                self._violation(
                    "sleep-in-atomic", task.on_cpu, task,
                    f"down({sem.name}) -- a sleeping lock -- with "
                    f"preempt_count={task.preempt_count}"
                    f"{self._held_suffix(task)}")
            orig_sem_down(task, cpu_idx, sem)

        def sem_up(task, cpu_idx, sem):
            if sem.lockdep is not self:
                self.attach_lock(sem)
            self._pop_held(task, self._sem_class(sem))
            orig_sem_up(task, cpu_idx, sem)

        def task_exit(task, cpu_idx, value):
            held = self._held.pop(task.pid, None)
            if task.preempt_count != 0 or task.irq_disable_count != 0 or held:
                self._violation(
                    "unbalanced-exit", cpu_idx, task,
                    f"exit with preempt_count={task.preempt_count} "
                    f"irq_disable_count={task.irq_disable_count}"
                    + (f" holding {', '.join(held)}" if held else ""))
            orig_task_exit(task, cpu_idx, value)

        def install_task(cpu_idx, task):
            mask = task.effective_affinity
            if mask and cpu_idx not in mask:
                self._violation(
                    "shield-affinity", cpu_idx, task,
                    f"installed on cpu{cpu_idx} but effective affinity "
                    f"is {mask.to_proc()}")
            orig_install_task(cpu_idx, task)

        def deliver_irq(cpu, desc):
            eff = desc.effective_affinity
            if eff and cpu.index not in eff and any(
                    i < len(kernel.machine.cpus)
                    and kernel.machine.cpus[i].online for i in eff):
                self._violation(
                    "shield-affinity", cpu.index, None,
                    f"irq{desc.irq} ({desc.name}) delivered to "
                    f"cpu{cpu.index} but effective affinity is "
                    f"{eff.to_proc()}")
            orig_deliver_irq(cpu, desc)

        def register_irq_handler(irq, cost_key, action):
            orig_register(irq, cost_key, self._wrap_irq_action(action))

        def raise_softirq(cpu_idx, vec, work_ns, action=None,
                          from_irq=False):
            if action is not None:
                action = self._wrap_softirq_action(action)
            orig_raise_softirq(cpu_idx, vec, work_ns, action,
                               from_irq=from_irq)

        kernel._acquire = acquire
        kernel._block = block
        kernel._sleep = sleep
        kernel._sem_down = sem_down
        kernel._sem_up = sem_up
        kernel._task_exit = task_exit
        kernel._install_task = install_task
        kernel._deliver_irq = deliver_irq
        kernel.register_irq_handler = register_irq_handler
        kernel.raise_softirq = raise_softirq
        # The APIC captured the bound method at boot; repoint it.
        kernel.machine.apic.deliver = deliver_irq

        # Wrap the already-registered hardirq actions so handler bodies
        # execute under the in-hardirq context flag.
        for irq, (cost_key, action) in list(kernel._irq_table.items()):
            self._orig_actions[irq] = (cost_key, action)
            kernel._irq_table[irq] = (cost_key,
                                      self._wrap_irq_action(action))
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        self._installed = False
        kernel = self.kernel
        for obj in self._attached:
            obj.lockdep = None
        self._attached.clear()
        for irq, entry in self._orig_actions.items():
            kernel._irq_table[irq] = entry
        self._orig_actions.clear()
        # Drop the instance-level overrides; attribute lookup falls
        # back to the class methods (clean even if probes stacked).
        for name in ("_acquire", "_block", "_sleep", "_sem_down",
                     "_sem_up", "_task_exit", "_install_task",
                     "_deliver_irq", "register_irq_handler",
                     "raise_softirq"):
            if name in kernel.__dict__:
                del kernel.__dict__[name]
        kernel.machine.apic.deliver = kernel._deliver_irq

    def attach_lock(self, lock: Any) -> None:
        """Hook one lock/semaphore object (idempotent)."""
        if lock.lockdep is self:
            return
        lock.lockdep = self
        self._attached.append(lock)

    # ==================================================================
    # Hooks called by the sync primitives
    # ==================================================================
    def on_take(self, lock: "SpinLock", task: "Task", now: int) -> None:
        cls = lock.name
        stats = self.class_stats.get(cls)
        if stats is None:
            stats = self.class_stats[cls] = LockClassStats()
        stats.acquisitions += 1
        if not lock.irq_disabling:
            if self._active_irq_cpu is not None:
                self._violation(
                    "irq-unsafe-in-irq", self._active_irq_cpu, task,
                    f"non-irq-disabling lock {cls} taken inside a "
                    f"hardirq handler")
            elif self._softirq_action_depth > 0:
                self._violation(
                    "irq-unsafe-in-irq", task.on_cpu, task,
                    f"non-irq-disabling lock {cls} taken inside a "
                    f"softirq handler")
        self._note_ordering(cls, task, now)
        self._held.setdefault(task.pid, []).append(cls)

    def on_drop(self, lock: "SpinLock", task: "Task", now: int,
                hold_ns: int) -> None:
        cls = lock.name
        stats = self.class_stats.get(cls)
        if stats is None:
            stats = self.class_stats[cls] = LockClassStats()
        stats.total_hold_ns += hold_ns
        if hold_ns > stats.max_hold_ns:
            stats.max_hold_ns = hold_ns
        self._pop_held(task, cls)
        cfg = self.config
        if lock.is_bkl:
            budget = cfg.bkl_budget_ns
            label = "BKL hold"
        elif lock.irq_disabling:
            budget = cfg.irq_off_budget_ns
            label = "irq-off window"
        else:
            budget = cfg.hold_budget_ns
            label = "lock hold"
        if budget is not None and hold_ns > budget:
            self._violation(
                "hold-budget", task.on_cpu, task,
                f"{label} of {cls} ran {hold_ns} ns "
                f"(budget {budget} ns)")

    def on_contend(self, lock: "SpinLock", task: "Task") -> None:
        """Contention is legal; nothing to validate (hook for probes)."""

    def on_sem_down(self, sem: "Semaphore", task: "Task") -> None:
        """Entry of try_down(); the atomic-context check happens in the
        wrapped kernel ``_sem_down`` (which panics before try_down runs
        on the op path) -- this hook covers direct driver-level calls."""
        if task.preempt_count > 0:
            self._violation(
                "sleep-in-atomic", task.on_cpu, task,
                f"down({sem.name}) -- a sleeping lock -- with "
                f"preempt_count={task.preempt_count}"
                f"{self._held_suffix(task)}")

    def on_sem_take(self, sem: "Semaphore", task: "Task") -> None:
        cls = self._sem_class(sem)
        stats = self.class_stats.get(cls)
        if stats is None:
            stats = self.class_stats[cls] = LockClassStats()
        stats.acquisitions += 1
        self._note_ordering(cls, task, self.kernel.sim.now)
        self._held.setdefault(task.pid, []).append(cls)

    # ==================================================================
    # Internals
    # ==================================================================
    @staticmethod
    def _sem_class(sem: "Semaphore") -> str:
        return f"sem:{sem.name}"

    def _held_suffix(self, task: "Task") -> str:
        held = self._held.get(task.pid)
        return f" while holding {', '.join(held)}" if held else ""

    def _pop_held(self, task: "Task", cls: str) -> None:
        held = self._held.get(task.pid)
        if not held:
            return
        for i in range(len(held) - 1, -1, -1):
            if held[i] == cls:
                del held[i]
                return

    def _note_ordering(self, cls: str, task: "Task", now: int) -> None:
        held = self._held.get(task.pid)
        if not held:
            return
        edges = self._edges
        for prior in held:
            if prior == cls:
                continue
            key = (prior, cls)
            if key in self._seen:
                continue
            self._seen.add(key)
            # Adding prior -> cls closes a cycle iff cls already
            # reaches prior through established ordering edges.
            if self._reaches(cls, prior):
                self._violation(
                    "abba", task.on_cpu, task,
                    f"lock order inversion: {prior} -> {cls} taken, "
                    f"but the ordering {cls} ->.. {prior} was "
                    f"established earlier")
            edges.setdefault(prior, set()).add(cls)

    def _reaches(self, src: str, dst: str) -> bool:
        stack = [src]
        seen = {src}
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def _wrap_irq_action(self, action):
        def wrapped(cpu_idx, _action=action):
            prev = self._active_irq_cpu
            self._active_irq_cpu = cpu_idx
            try:
                _action(cpu_idx)
            finally:
                self._active_irq_cpu = prev
        return wrapped

    def _wrap_softirq_action(self, action):
        def wrapped(_action=action):
            self._softirq_action_depth += 1
            try:
                _action()
            finally:
                self._softirq_action_depth -= 1
        return wrapped

    def _violation(self, kind: str, cpu: Optional[int],
                   task: Optional["Task"], detail: str) -> None:
        if len(self.violations) >= self.config.max_violations:
            return
        violation = LockdepViolation(
            kind=kind, time_ns=self.kernel.sim.now,
            task=task.name if task is not None else None,
            cpu=cpu, detail=detail)
        self.violations.append(violation)
        if self.config.strict:
            raise KernelPanic(f"lockdep[{kind}]: {detail}")

    # ==================================================================
    # Reporting
    # ==================================================================
    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [v.to_dict() for v in self.violations]

    def report(self, top: int = 20) -> str:
        from repro.metrics.report import lockdep_summary

        return lockdep_summary(self, top=top)
