"""Wake-to-run latency attribution.

The probe wraps two kernel internals (`_make_runnable` and
`_install_task`) for a single watched task.  At every wakeup it
snapshots each CPU's state -- current task, syscall depth, frame kinds
on the execution stack -- and at installation it books the elapsed
delay against that snapshot.  ``report()`` then shows the slow-wake
distribution and what the machine was doing when the slow wakeups
happened.

This is observational only: the probe adds no simulated time and does
not perturb scheduling.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


@dataclass(frozen=True)
class CpuSnapshot:
    """What one CPU was executing at the wakeup instant."""

    cpu: int
    task_name: Optional[str]
    in_syscall: bool
    syscall_name: Optional[str]
    frame_kinds: Tuple[str, ...]
    label: Optional[str]
    pending_softirq_ns: int = 0

    def describe(self) -> str:
        if self.task_name is None and not self.frame_kinds:
            base = "idle"
        else:
            mode = "kernel" if self.in_syscall else "user"
            frames = "+".join(self.frame_kinds) or "boundary"
            name = self.task_name or "-"
            base = (f"{name}/{mode}[{frames}]"
                    f"{':' + self.label if self.label else ''}")
        if self.pending_softirq_ns > 50_000:
            # A fat bottom-half backlog will run before the reschedule
            # at the next interrupt exit on this CPU.
            base += f" +{self.pending_softirq_ns // 1000}us-bh-backlog"
        return base


@dataclass(frozen=True)
class WakeSample:
    """One wakeup of the watched task."""

    woke_at: int
    ran_at: int
    snapshots: Tuple[CpuSnapshot, ...]

    @property
    def delay_ns(self) -> int:
        return self.ran_at - self.woke_at


class WakeLatencyProbe:
    """Attributes wake-to-run delays of one task to machine state."""

    def __init__(self, kernel: "Kernel", task_name: str) -> None:
        self.kernel = kernel
        self.task_name = task_name
        self.samples: List[WakeSample] = []
        self._pending: Optional[Tuple[int, Tuple[CpuSnapshot, ...]]] = None
        self._installed = False
        self._orig_make_runnable = None
        self._orig_install = None

    # ------------------------------------------------------------------
    def install(self) -> "WakeLatencyProbe":
        if self._installed:
            return self
        self._installed = True
        kernel = self.kernel
        self._orig_make_runnable = kernel._make_runnable
        self._orig_install = kernel._install_task

        def make_runnable(task: "Task", from_cpu) -> None:
            if task.name == self.task_name:
                self._pending = (kernel.sim.now, self._snapshot())
            self._orig_make_runnable(task, from_cpu)

        def install_task(cpu_idx: int, task: "Task") -> None:
            if task.name == self.task_name and self._pending is not None:
                woke_at, snaps = self._pending
                self._pending = None
                self.samples.append(
                    WakeSample(woke_at, kernel.sim.now, snaps))
            self._orig_install(cpu_idx, task)

        kernel._make_runnable = make_runnable
        kernel._install_task = install_task
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        # Remove the instance-level overrides so attribute lookup falls
        # back to the class methods (a clean restore even if probes
        # were stacked in install order).
        del self.kernel._make_runnable
        del self.kernel._install_task
        self._installed = False

    def _snapshot(self) -> Tuple[CpuSnapshot, ...]:
        kernel = self.kernel
        snaps = []
        for idx, cpu in enumerate(kernel.machine.cpus):
            task = kernel.current[idx]
            label = None
            if task is not None and task.current_compute is not None:
                label = task.current_compute.label or None
            snaps.append(CpuSnapshot(
                cpu=idx,
                task_name=task.name if task else None,
                in_syscall=bool(task and task.in_syscall),
                syscall_name=task.syscall_name if task else None,
                frame_kinds=tuple(f.kind.value for f in cpu.frames),
                label=label,
                pending_softirq_ns=kernel.softirqq[idx].pending_work_ns(),
            ))
        return tuple(snaps)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def delays(self) -> np.ndarray:
        return np.array([s.delay_ns for s in self.samples], dtype=np.int64)

    def slow_samples(self, threshold_ns: int = 100_000) -> List[WakeSample]:
        return [s for s in self.samples if s.delay_ns >= threshold_ns]

    def attribute_slow(self, threshold_ns: int = 100_000) -> Counter:
        """Histogram of machine states during slow wakeups."""
        counter: Counter = Counter()
        for sample in self.slow_samples(threshold_ns):
            for snap in sample.snapshots:
                counter[snap.describe()] += 1
        return counter

    def report(self, threshold_ns: int = 100_000, top: int = 10) -> str:
        delays = self.delays()
        if delays.size == 0:
            return f"{self.task_name}: no wakeups observed"
        lines = [
            f"wake-to-run latency of {self.task_name!r}: "
            f"{delays.size} wakeups",
            f"  mean {delays.mean() / 1e3:.1f} us   "
            f"p99 {np.percentile(delays, 99) / 1e3:.1f} us   "
            f"max {delays.max() / 1e3:.1f} us",
            f"  slow (>= {threshold_ns / 1e3:.0f} us): "
            f"{len(self.slow_samples(threshold_ns))}",
        ]
        attribution = self.attribute_slow(threshold_ns)
        if attribution:
            lines.append("  machine state during slow wakeups:")
            for state, count in attribution.most_common(top):
                lines.append(f"    {count:>6}  {state}")
        return "\n".join(lines)
