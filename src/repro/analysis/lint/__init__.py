"""Static determinism linter for the simulation sources.

The whole repository rests on runs being reproducible: the golden
tests assert byte-identical exports, the campaign runner asserts
worker-count independence, and every figure is keyed by seed.  That
property is easy to break with one innocent-looking line -- a
``time.time()`` timestamp, a draw from the global ``random`` module, a
``for cpu in {…}`` whose order feeds the event queue.  This package is
an AST pass that catches those classes of bug before they run:

* ``wall-clock`` -- importing ``time``/``datetime`` (use
  :mod:`repro.sim.simtime` and the simulator clock);
* ``global-random`` -- the global ``random`` module or NumPy's global
  random state (use named :mod:`repro.sim.rng` substreams);
* ``unordered-iter`` -- loops or comprehensions over ``set`` /
  ``frozenset`` expressions (sort first -- set order is hash-seed
  dependent);
* ``no-slots-dataclass`` -- hot-path dataclasses in ``repro/sim`` /
  ``repro/kernel`` without ``slots=True``;
* ``ungated-label`` -- f-string ``label=`` arguments in the sim /
  kernel / hw layers not gated on ``trace.enabled`` (they burn time in
  the hot loop and tempt people into embedding state in trace text).

Findings can be suppressed per line with ``# lint: ok(rule-name)`` or
per file via :data:`repro.analysis.lint.rules.ALLOW`.  Run it with
``python -m repro.analysis.lint [paths...] [--json]``; it exits
non-zero when findings remain, which is how CI enforces it.
"""

from repro.analysis.lint.engine import Finding, lint_file, lint_paths
from repro.analysis.lint.rules import ALL_RULES, ALLOW

__all__ = ["ALL_RULES", "ALLOW", "Finding", "lint_file", "lint_paths"]
