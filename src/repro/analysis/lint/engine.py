"""Lint driver: walk files, run rules, honour suppressions.

Kept import-light and rule-agnostic; the rules themselves live in
:mod:`repro.analysis.lint.rules` (imported lazily to avoid a cycle --
rules import :class:`Finding` from here).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: ``# lint: ok(rule-a, rule-b)`` on the offending line suppresses
#: those rules there.
_ALLOW_COMMENT = re.compile(r"#\s*lint:\s*ok\(([a-z0-9_,\s-]+)\)")


@dataclass(frozen=True, slots=True)
class Finding:
    """One lint hit."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] " \
               f"{self.message}"


def _line_allows(source_lines: Sequence[str], line: int, rule: str) -> bool:
    if not 1 <= line <= len(source_lines):
        return False
    match = _ALLOW_COMMENT.search(source_lines[line - 1])
    if not match:
        return False
    allowed = {r.strip() for r in match.group(1).split(",")}
    return rule in allowed


def _path_allows(path: str, rule: str, allow: Dict[str, tuple]) -> bool:
    posix = path.replace("\\", "/")
    return any(posix.endswith(suffix) for suffix in allow.get(rule, ()))


def lint_file(path: str, rules: Optional[Sequence[Any]] = None
              ) -> List[Finding]:
    """Lint one Python source file."""
    from repro.analysis.lint.rules import ALL_RULES, ALLOW

    if rules is None:
        rules = ALL_RULES
    source = Path(path).read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 0,
                        col=exc.offset or 0, rule="syntax",
                        message=f"cannot parse: {exc.msg}")]
    source_lines = source.splitlines()
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(path):
            continue
        if _path_allows(path, rule.name, ALLOW):
            continue
        for finding in rule.check(tree, path):
            if _line_allows(source_lines, finding.line, finding.rule):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(str(f) for f in sorted(p.rglob("*.py")))
        else:
            out.append(str(p))
    return out


def lint_paths(paths: Iterable[str],
               rules: Optional[Sequence[Any]] = None) -> List[Finding]:
    """Lint every Python file under *paths* (files or directories)."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules))
    return findings
