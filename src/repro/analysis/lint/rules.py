"""The determinism rules: one AST visitor per failure class.

Every rule is a :class:`Rule` subclass with a stable kebab-case
``name`` (the key used by ``# lint: ok(name)`` comments and the
:data:`ALLOW` table), an ``applies_to`` path filter, and a ``check``
that yields :class:`~repro.analysis.lint.engine.Finding` tuples.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Tuple

from repro.analysis.lint.engine import Finding

#: Per-rule path allowlists: rule name -> path suffixes (POSIX-style)
#: that the rule never fires in.  ``repro/sim/rng.py`` *is* the
#: sanctioned randomness layer, so the RNG rule cannot apply to it.
ALLOW = {
    "global-random": ("repro/sim/rng.py",),
    # The buffer's own module and the engine that owns it may call
    # emit; everything else on the hot path goes through the typed
    # tracepoint registry (repro.observe.tracepoints).
    "direct-trace-emit": ("repro/sim/trace.py", "repro/sim/engine.py"),
    # rng.py IS the draw-plane layer: its passthrough calls onto the
    # raw numpy Generator are the sanctioned implementation.
    "scalar-rng": ("repro/sim/rng.py",),
}

#: NumPy global-state draws (``np.random.<fn>``).  Constructors like
#: ``np.random.Generator``/``SeedSequence``/``default_rng`` are the
#: sanctioned seeded API and stay legal.
GLOBAL_NP_RANDOM = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal",
    "exponential", "lognormal", "poisson", "binomial", "bytes",
})

#: Directories whose dataclasses sit on the event-loop hot path.
HOT_DIRS = ("repro/sim/", "repro/kernel/")

#: Directories whose RNG draws are cold (setup, fault scripts,
#: workload bodies drawing a handful of values per syscall) -- scalar
#: draws there are flagged but may carry explicit ``# lint: ok``
#: escapes documenting the coldness.
COLD_RNG_DIRS = ("repro/workloads/", "repro/faults/")

#: Layers whose trace labels must be gated on ``trace.enabled``.
TRACED_DIRS = ("repro/sim/", "repro/kernel/", "repro/hw/")


def _in_dirs(path: str, dirs: Sequence[str]) -> bool:
    posix = path.replace("\\", "/")
    return any(d in posix for d in dirs)


class Rule:
    """One lint rule."""

    name = "?"

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(path=path, line=getattr(node, "lineno", 0),
                       col=getattr(node, "col_offset", 0),
                       rule=self.name, message=message)


class WallClockRule(Rule):
    """No wall-clock time sources: simulated time only."""

    name = "wall-clock"

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in ("time", "datetime"):
                        yield self.finding(
                            path, node,
                            f"import of wall-clock module "
                            f"{alias.name!r}; use repro.sim.simtime "
                            f"and the simulator clock")
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in ("time", "datetime") and node.level == 0:
                    yield self.finding(
                        path, node,
                        f"import from wall-clock module "
                        f"{node.module!r}; use repro.sim.simtime "
                        f"and the simulator clock")


class GlobalRandomRule(Rule):
    """No global RNG state: named repro.sim.rng substreams only."""

    name = "global-random"

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self.finding(
                            path, node,
                            "import of the global 'random' module; "
                            "draw from a named repro.sim.rng stream")
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level:
                    continue
                if (module.split(".")[0] == "random"
                        or module == "numpy.random"):
                    yield self.finding(
                        path, node,
                        f"import from global RNG module {module!r}; "
                        f"draw from a named repro.sim.rng stream")
            elif isinstance(node, ast.Attribute):
                # np.random.<fn> / numpy.random.<fn> global draws.
                value = node.value
                if (node.attr in GLOBAL_NP_RANDOM
                        and isinstance(value, ast.Attribute)
                        and value.attr == "random"
                        and isinstance(value.value, ast.Name)
                        and value.value.id in ("np", "numpy")):
                    yield self.finding(
                        path, node,
                        f"NumPy global random state "
                        f"({value.value.id}.random.{node.attr}); "
                        f"draw from a named repro.sim.rng stream")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


class UnorderedIterRule(Rule):
    """No iteration over set expressions: hash-seed-dependent order."""

    name = "unordered-iter"

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    yield self.finding(
                        path, it,
                        "iterating a set expression: order depends on "
                        "the hash seed and can feed event scheduling; "
                        "wrap it in sorted(...)")


class NoSlotsDataclassRule(Rule):
    """Hot-path dataclasses must declare ``slots=True``."""

    name = "no-slots-dataclass"

    def applies_to(self, path: str) -> bool:
        return _in_dirs(path, HOT_DIRS)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for deco in node.decorator_list:
                if isinstance(deco, ast.Name) and deco.id == "dataclass":
                    yield self.finding(
                        path, node,
                        f"dataclass {node.name} in a hot module "
                        f"without slots=True")
                elif (isinstance(deco, ast.Call)
                      and isinstance(deco.func, ast.Name)
                      and deco.func.id == "dataclass"):
                    has_slots = any(
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in deco.keywords)
                    if not has_slots:
                        yield self.finding(
                            path, node,
                            f"dataclass {node.name} in a hot module "
                            f"without slots=True")


class UngatedLabelRule(Rule):
    """Trace labels built with f-strings must be trace-gated.

    ``label=f"..."`` evaluates on every call even with tracing off;
    the idiom is ``label=(f"..." if trace.enabled else "static")`` --
    an ``IfExp``, which this rule deliberately does not match.
    """

    name = "ungated-label"

    def applies_to(self, path: str) -> bool:
        return _in_dirs(path, TRACED_DIRS)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "label" and isinstance(kw.value,
                                                    ast.JoinedStr):
                    yield self.finding(
                        path, kw.value,
                        "un-gated f-string trace label; gate it: "
                        "label=(f'...' if trace.enabled else 'static')")


class DirectTraceEmitRule(Rule):
    """Kernel/sim/hw hot paths must emit typed tracepoints.

    ``sim.trace.emit("irq", ...)`` builds strings and dodges the
    per-CPU accounting; those layers go through the typed registry
    (``sim.tp.irq_raise(...)`` etc.), which the attribution engine
    and the Chrome exporter understand.  The free-form buffer stays
    available to tests and experiment code.
    """

    name = "direct-trace-emit"

    def applies_to(self, path: str) -> bool:
        return _in_dirs(path, TRACED_DIRS)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"):
                continue
            target = node.func.value
            is_buffer = (
                (isinstance(target, ast.Attribute)
                 and target.attr == "trace")
                or (isinstance(target, ast.Name) and target.id == "trace"))
            if is_buffer:
                yield self.finding(
                    path, node,
                    "direct TraceBuffer.emit on a hot path; emit a "
                    "typed tracepoint via sim.tp (repro.observe."
                    "tracepoints) instead")


class ScalarRngRule(Rule):
    """Scalar ``.integers(...)`` draws must consume draw planes.

    A scalar ``rng.integers(lo, hi)`` costs a full numpy dispatch per
    value; the registry's :class:`~repro.sim.rng.PlanedGenerator`
    amortizes repeated signatures into block-prefetched draw planes,
    but only when the stream is bound once and drawn through a local
    name (``rng = self._rng`` then ``rng.integers(...)`` -- the
    plane-consuming idiom the kernel's cost models use).  In hot
    modules this rule therefore flags scalar draws through an
    *attribute* receiver (``self.gen.integers(...)``), which re-reads
    the attribute per draw and usually means a raw ``numpy``
    ``Generator`` is being used behind the registry's back.  In the
    cold directories (:data:`COLD_RNG_DIRS`) every scalar draw is
    flagged so each one carries an explicit ``# lint: ok(scalar-rng)``
    escape documenting that the site is off the event hot path.
    Vectorized draws (``size=`` or a third positional argument) are
    always fine.
    """

    name = "scalar-rng"

    def applies_to(self, path: str) -> bool:
        return _in_dirs(path, HOT_DIRS + COLD_RNG_DIRS)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        hot = _in_dirs(path, HOT_DIRS)
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "integers"):
                continue
            if len(node.args) >= 3 or any(kw.arg == "size"
                                          for kw in node.keywords):
                continue  # vectorized draw
            receiver = node.func.value
            if hot and isinstance(receiver, ast.Name):
                continue  # bound-stream idiom: planes absorb it
            yield self.finding(
                path, node,
                "scalar rng.integers() draw; bind the registry stream "
                "to a local and draw through it so PlanedGenerator "
                "planes absorb the per-draw cost, batch with size=, "
                "or mark a cold path with '# lint: ok(scalar-rng)'")


#: Critical-section openers and their matching closers.
_SECTION_PAIRS = {"Acquire": "Release", "SemDown": "SemUp"}
_SECTION_OPS = frozenset(_SECTION_PAIRS) | frozenset(_SECTION_PAIRS.values())


class PairedAcquireReleaseRule(Rule):
    """Op-program ``Acquire``/``SemDown`` must pair with a
    ``Release``/``SemUp`` on the same lock in the same function.

    An unmatched ``op.Acquire`` in a workload or driver op program is
    a leaked critical section: the simulated task keeps the spinlock
    (and its raised preempt count) forever, which lockdep reports only
    at runtime and only on the paths a given seed happens to walk.
    This rule catches the imbalance statically, per function body and
    per lock expression (``kernel.locks.bkl`` pairs with
    ``kernel.locks.bkl``, counted textually).  Deliberately unpaired
    sites -- e.g. a helper that opens a section its caller closes --
    carry an explicit ``# lint: ok(paired-acquire-release)`` escape.
    """

    name = "paired-acquire-release"

    def applies_to(self, path: str) -> bool:
        return _in_dirs(path, ("repro/kernel/", "repro/workloads/"))

    @staticmethod
    def _op_name(call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return ""

    def _scan_body(self, body: List[ast.stmt], path: str
                   ) -> Iterator[Finding]:
        """Count openers/closers per lock key in one function body,
        without descending into nested function definitions (those
        are balanced -- or escaped -- on their own)."""
        opens: dict = {}
        closes: dict = {}
        nested: List[ast.stmt] = []
        todo: List[ast.AST] = list(body)
        while todo:
            node = todo.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                nested.append(node)
                continue
            todo.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            name = self._op_name(node)
            if name not in _SECTION_OPS or not node.args:
                continue
            key = ast.unparse(node.args[0])
            if name in _SECTION_PAIRS:
                opens.setdefault((name, key), []).append(node)
            else:
                opener = next(k for k, v in _SECTION_PAIRS.items()
                              if v == name)
                closes.setdefault((opener, key), []).append(node)
        for (name, key), sites in sorted(
                opens.items(), key=lambda kv: kv[1][0].lineno):
            missing = len(sites) - len(closes.get((name, key), []))
            for site in sites[:max(0, missing)]:
                yield self.finding(
                    path, site,
                    f"{name}({key}) has no matching "
                    f"{_SECTION_PAIRS[name]} in this function; a "
                    "leaked critical section pins the preempt count "
                    "forever (pair it, or mark a split-phase section "
                    "with '# lint: ok(paired-acquire-release)')")
        for (name, key), sites in sorted(
                closes.items(), key=lambda kv: kv[1][0].lineno):
            extra = len(sites) - len(opens.get((name, key), []))
            for site in sites[:max(0, extra)]:
                yield self.finding(
                    path, site,
                    f"{_SECTION_PAIRS[name]}({key}) without a "
                    f"matching {name} in this function (releasing a "
                    "lock this path never took underflows the "
                    "preempt count)")
        for node in nested:
            inner = getattr(node, "body", None)
            if isinstance(inner, list):
                yield from self._scan_body(inner, path)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in tree.body if isinstance(tree, ast.Module) else []:
            todo = [node]
            while todo:
                n = todo.pop()
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._scan_body(n.body, path)
                    continue
                todo.extend(ast.iter_child_nodes(n))


ALL_RULES: Tuple[Rule, ...] = (
    WallClockRule(),
    GlobalRandomRule(),
    UnorderedIterRule(),
    NoSlotsDataclassRule(),
    UngatedLabelRule(),
    DirectTraceEmitRule(),
    ScalarRngRule(),
    PairedAcquireReleaseRule(),
)
