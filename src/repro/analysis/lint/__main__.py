"""CLI: ``python -m repro.analysis.lint [paths...] [--format ...]``.

Exits 0 when the tree is clean, 1 when findings remain -- the CI lint
job runs exactly this over ``src`` and uploads the ``sarif`` output so
findings annotate pull requests in code-scanning UIs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.analysis.lint.engine import lint_paths
from repro.analysis.lint.rules import ALL_RULES

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def _as_json(findings) -> Dict[str, Any]:
    return {"findings": [f.to_dict() for f in findings],
            "count": len(findings)}


def _as_sarif(findings) -> Dict[str, Any]:
    """Render findings as a SARIF 2.1.0 log (one run, one result per
    finding).  Columns are 1-based in SARIF; the engine reports the
    0-based AST column offset."""
    rules = [{
        "id": rule.name,
        "shortDescription": {
            "text": (rule.__doc__ or rule.name).strip().splitlines()[0]},
        "defaultConfiguration": {"level": "error"},
    } for rule in ALL_RULES]
    results = [{
        "ruleId": f.rule,
        "level": "error",
        "message": {"text": f.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": f.path,
                                     "uriBaseId": "ROOT"},
                "region": {"startLine": f.line,
                           "startColumn": f.col + 1},
            },
        }],
    } for f in findings]
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://example.invalid/repro/analysis/lint",
                "rules": rules,
            }},
            "results": results,
        }],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Determinism linter for the simulation sources.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--json", action="store_true",
                        help="shorthand for --format json")
    parser.add_argument("--output", metavar="FILE",
                        help="write the report to FILE instead of stdout")
    args = parser.parse_args(argv)
    fmt = "json" if args.json else args.format

    findings = lint_paths(args.paths or ["src"])
    if fmt == "json":
        text = json.dumps(_as_json(findings), indent=2, sort_keys=True)
    elif fmt == "sarif":
        text = json.dumps(_as_sarif(findings), indent=2, sort_keys=True)
    else:
        lines = [finding.render() for finding in findings]
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''}")
        text = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
