"""CLI: ``python -m repro.analysis.lint [paths...] [--json]``.

Exits 0 when the tree is clean, 1 when findings remain -- the CI lint
job runs exactly this over ``src``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.lint.engine import lint_paths


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Determinism linter for the simulation sources.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    args = parser.parse_args(argv)

    findings = lint_paths(args.paths or ["src"])
    if args.json:
        print(json.dumps({"findings": [f.to_dict() for f in findings],
                          "count": len(findings)},
                         indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        print(f"{len(findings)} finding{'s' if len(findings) != 1 else ''}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
