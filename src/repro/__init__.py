"""repro: shielded processors on a simulated SMP Linux kernel.

A reproduction of Brosky & Rotolo, "Shielded Processors: Guaranteeing
Sub-millisecond Response in Standard Linux" (IPPS 2003), built on a
discrete-event simulator of the hardware and kernel mechanisms the
paper analyses.

Quick start::

    from repro import build_bench, redhawk_1_4

    bench = build_bench(redhawk_1_4())
    bench.start_devices()
    bench.shield_cpu(1)                # /proc/shield under the hood
    ...

See ``examples/quickstart.py`` for a complete runnable program and
``repro.experiments`` for the per-figure reproduction runners.
"""

from repro.configs.kernels import redhawk_1_4, vanilla_2_4_21
from repro.core.affinity import CpuMask, effective_affinity
from repro.core.shield import ShieldController, ShieldState
from repro.experiments.harness import Bench, build_bench
from repro.hw.machine import (
    Machine,
    MachineSpec,
    determinism_testbed,
    interrupt_testbed,
)
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import UserApi
from repro.kernel.task import SchedPolicy, Task, TaskState
from repro.sim.engine import Simulator

__version__ = "1.0.0"

__all__ = [
    "Bench",
    "build_bench",
    "CpuMask",
    "effective_affinity",
    "ShieldController",
    "ShieldState",
    "Machine",
    "MachineSpec",
    "determinism_testbed",
    "interrupt_testbed",
    "Kernel",
    "KernelConfig",
    "SchedPolicy",
    "Task",
    "TaskState",
    "Simulator",
    "UserApi",
    "redhawk_1_4",
    "vanilla_2_4_21",
    "__version__",
]
