"""Measurement: latency/jitter recorders, histograms, paper-format reports."""

from repro.metrics.histogram import Histogram, LogHistogram
from repro.metrics.recorder import JitterRecorder, LatencyRecorder
from repro.metrics.report import (
    bucket_table,
    determinism_summary,
    latency_summary,
)

__all__ = [
    "Histogram",
    "LogHistogram",
    "JitterRecorder",
    "LatencyRecorder",
    "bucket_table",
    "determinism_summary",
    "latency_summary",
]
