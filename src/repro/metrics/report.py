"""Paper-format result tables.

These renderers print the same rows the paper's figure legends show:

* the determinism summaries (``ideal / max / jitter (%)``) under
  Figures 1-4;
* the cumulative latency bucket tables under Figures 5-6
  (``NNN samples < T ms (P%)``);
* the min/max/avg line under Figure 7;
* the lockdep validation summaries (invariant checking);
* the observability tables (per-CPU accounting, tracepoint hit
  counts, latency attribution) for traced runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.metrics.recorder import JitterRecorder, LatencyRecorder
from repro.sim.simtime import MSEC

#: The cumulative thresholds of the paper's Figure 5 table (ms).
FIG5_THRESHOLDS_MS = [0.1, 0.2, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 40.0,
                      50.0, 60.0, 70.0, 80.0, 90.0, 100.0]

#: The finer thresholds of the Figure 6 table (ms).
FIG6_THRESHOLDS_MS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]


def determinism_summary(rec: JitterRecorder, title: str) -> str:
    """The legend block under Figures 1-4."""
    ideal_s = rec.ideal() / 1e9
    max_s = rec.max() / 1e9
    jitter_s = rec.jitter_ns() / 1e9
    pct = 100.0 * rec.jitter_fraction()
    lines = [
        title,
        f"  iterations: {rec.count}",
        f"  ideal:  {ideal_s:.6f} sec",
        f"  max:    {max_s:.6f} sec",
        f"  jitter: {jitter_s:.6f} sec ({pct:.2f}%)",
    ]
    return "\n".join(lines)


def bucket_table(rec: LatencyRecorder, title: str,
                 thresholds_ms: Optional[Sequence[float]] = None) -> str:
    """The cumulative ``samples < T ms`` table under Figures 5-6."""
    if thresholds_ms is None:
        thresholds_ms = FIG5_THRESHOLDS_MS
    total = rec.count
    lines = [title,
             f"  {total} measured interrupts",
             f"  max latency: {rec.max() / MSEC:.3f}ms"]
    shown_all = False
    for t in thresholds_ms:
        below = int(round(rec.fraction_below(int(t * MSEC)) * total))
        pct = 100.0 * below / total if total else 0.0
        lines.append(f"  {below} samples < {t:.1f}ms ({pct:.3f}%)")
        if below == total:
            shown_all = True
            break
    if not shown_all and total:
        lines.append(f"  (max {rec.max() / MSEC:.3f}ms exceeds the "
                     f"largest threshold)")
    return "\n".join(lines)


def latency_summary(rec: LatencyRecorder, title: str,
                    unit: str = "us") -> str:
    """The min/avg/max line under Figure 7."""
    scale = 1e3 if unit == "us" else 1e6
    lines = [
        title,
        f"  {rec.count} measured interrupts",
        f"  minimum latency: {rec.min() / scale:.1f} {unit}",
        f"  maximum latency: {rec.max() / scale:.1f} {unit}",
        f"  average latency: {rec.mean() / scale:.1f} {unit}",
    ]
    return "\n".join(lines)


def lockdep_violations_table(violations: Sequence[Dict[str, Any]],
                             top: int = 20) -> str:
    """Render violation dictionaries (``LockdepViolation.to_dict``)."""
    if not violations:
        return "  no violations observed"
    lines = []
    for v in list(violations)[:top]:
        where = []
        if v.get("cpu") is not None:
            where.append(f"cpu{v['cpu']}")
        if v.get("task"):
            where.append(str(v["task"]))
        loc = " ".join(where) or "-"
        lines.append(f"  [{v['kind']}] t={v['time_ns']}ns {loc}: "
                     f"{v['detail']}")
    hidden = len(violations) - top
    if hidden > 0:
        lines.append(f"  ... and {hidden} more")
    return "\n".join(lines)


def lockdep_summary(validator: Any, top: int = 20) -> str:
    """The invariant-checking report for one instrumented run.

    *validator* is a :class:`~repro.analysis.lockdep.LockdepValidator`
    (typed ``Any`` to keep the metrics layer import-light).
    """
    n = len(validator.violations)
    lines = [f"lockdep: {n} violation{'s' if n != 1 else ''} "
             f"across {len(validator.class_stats)} lock classes"]
    for cls in sorted(validator.class_stats):
        stats = validator.class_stats[cls]
        lines.append(
            f"  {cls}: {stats.acquisitions} acquisitions, "
            f"max hold {stats.max_hold_ns / 1e6:.3f} ms, "
            f"total {stats.total_hold_ns / 1e6:.3f} ms")
    if validator.violations:
        lines.append("violations:")
        lines.append(lockdep_violations_table(
            [v.to_dict() for v in validator.violations], top=top))
    return "\n".join(lines)


def cpu_accounting_table(accounting: Dict[str, Any]) -> str:
    """``/proc/stat`` / ``/proc/interrupts``-style per-CPU counters.

    *accounting* is ``CpuAccounting.to_dict()`` output (the
    ``accounting`` entry of a ``ScenarioResult.trace`` report).
    """
    irq_names = accounting.get("irq_names", {})
    rows: List[tuple] = []
    for c in accounting["cpus"]:
        irqs = sum(c["irqs"].values())
        softirqs = sum(c["softirqs"].values())
        rows.append((f"cpu{c['cpu']}", c["ticks"], c["switches"],
                     c["syscalls"], c["wakes"], irqs, softirqs,
                     f"{c['max_irq_off_ns'] / 1e3:.1f}",
                     f"{c['max_preempt_off_ns'] / 1e3:.1f}",
                     f"{c['max_bkl_hold_ns'] / 1e3:.1f}"))
    table = comparison_table(rows, (
        "cpu", "ticks", "ctxsw", "syscalls", "wakes", "irqs", "softirqs",
        "irqoff-max(us)", "preemptoff-max(us)", "bkl-max(us)"))
    lines = [table, "", "interrupts:"]
    for irq, name in irq_names.items():
        per_cpu = "  ".join(
            f"cpu{c['cpu']}:{c['irqs'].get(irq, 0)}"
            for c in accounting["cpus"])
        lines.append(f"  irq{irq} ({name}): {per_cpu}")
    return "\n".join(lines)


def tracepoint_hits_table(hits: Dict[str, int], top: int = 10) -> str:
    """The ``--profile`` top-N tracepoint hit counts."""
    if not hits:
        return "  no tracepoints hit"
    pairs = sorted(hits.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    width = max(len(name) for name, _ in pairs)
    return "\n".join(f"  {name:<{width}}  {count}"
                     for name, count in pairs)


def attribution_table(attribution: Dict[str, Any]) -> str:
    """The per-mechanism latency blame table for Figures 5-7.

    *attribution* is the ``attribution`` entry of a
    ``ScenarioResult.trace`` report (see
    :meth:`~repro.observe.attribution.AttributionEngine.report`).
    """
    agg = attribution.get("aggregate", {})
    n = attribution.get("attributed", 0)
    lines = [f"latency attribution: {n} samples at/above "
             f"P{attribution.get('threshold_pct', 0):g} "
             f"({attribution.get('threshold_ns', 0) / 1e3:.1f} us)"]
    total = sum(agg.values())
    if total:
        for bucket, ns in sorted(agg.items(), key=lambda kv: -kv[1]):
            pct = 100.0 * ns / total
            lines.append(f"  {bucket:<12} {ns / 1e3:10.1f} us "
                         f"({pct:5.1f}%)")
    else:
        lines.append("  nothing to attribute")
    check = attribution.get("sum_check", {})
    if check:
        status = "ok" if check.get("ok") else "FAILED"
        lines.append(f"  sum check: {status} "
                     f"(max error {check.get('max_abs_err_ns', 0)} ns "
                     f"over {check.get('samples', 0)} samples)")
    worst = attribution.get("top_samples", [])
    if worst:
        lines.append("  worst samples:")
        for s in worst:
            parts = ", ".join(
                f"{k}={v / 1e3:.1f}us"
                for k, v in sorted(s["breakdown"].items(),
                                   key=lambda kv: -kv[1]))
            lines.append(f"    t={s['end_ns']}ns "
                         f"latency={s['latency_ns'] / 1e3:.1f}us: {parts}")
    return "\n".join(lines)


def attribution_bucket_table(columns: Dict[str, Dict[str, int]],
                             signed: Sequence[str] = (),
                             total_label: str = "total") -> str:
    """Aligned bucket-breakdown table shared by ``trace
    --summary-table`` and the simdiff report renderer.

    *columns* maps column header -> ``{bucket: ns}``; buckets render
    in the attribution engine's report order (unknown buckets last),
    values in microseconds.  Columns named in *signed* render with an
    explicit sign (delta columns).  A ``total`` row closes the table.
    """
    from repro.observe.attribution import BUCKETS

    present = set()
    for values in columns.values():
        present.update(values)
    buckets = [b for b in BUCKETS if b in present]
    buckets += sorted(b for b in present if b not in BUCKETS)

    def fmt(header: str, ns: int) -> str:
        if header in signed:
            return f"{ns / 1e3:+.1f}"
        return f"{ns / 1e3:.1f}"

    headers = ["bucket"] + [f"{name} (us)" for name in columns]
    rows: List[tuple] = []
    for bucket in buckets:
        rows.append(tuple([bucket] + [fmt(name, values.get(bucket, 0))
                                      for name, values in columns.items()]))
    rows.append(tuple([total_label]
                      + [fmt(name, sum(values.values()))
                         for name, values in columns.items()]))
    return comparison_table(rows, headers)


def trace_summary(trace: Dict[str, Any], top: int = 10) -> str:
    """The full observability block for one traced run."""
    lines = ["tracepoint hits:",
             tracepoint_hits_table(trace.get("hits", {}), top=top)]
    dropped = trace.get("dropped", 0)
    if dropped:
        lines.append(f"  ({dropped} events dropped by ring wrap)")
    lines.append("")
    lines.append(cpu_accounting_table(trace["accounting"]))
    lines.append("")
    lines.append(attribution_table(trace["attribution"]))
    return "\n".join(lines)


def comparison_table(rows: List[tuple], headers: Sequence[str]) -> str:
    """Simple aligned table used by the ablation benchmarks."""
    cols = len(headers)
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in str_rows))
              if str_rows else len(headers[i]) for i in range(cols)]
    def fmt(row):
        return "  ".join(f"{row[i]:<{widths[i]}}" for i in range(cols))
    out = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    out.extend(fmt(r) for r in str_rows)
    return "\n".join(out)
