"""Sample recorders for the two measurement styles the paper uses.

:class:`LatencyRecorder` implements the realfeel methodology: the test
reads the TSC after every blocking wait; the time beyond the expected
period between consecutive returns is latency.  A response that sleeps
through N periods therefore books ``N*period + delay`` of latency into
one sample, exactly as realfeel's histogram does.

:class:`JitterRecorder` implements the determinism-test methodology:
each iteration of a fixed CPU-bound loop is timed; the excess over the
best (ideal) iteration is jitter.

Ingestion is batched: samples land in a small Python staging list (one
``list.append`` on the hot path, nothing else) and are flushed into a
preallocated ``int64`` array in one vectorised copy the next time any
statistic or array view is requested.  Summary statistics (min, max,
mean) are computed in a single pass and cached, keyed by the sample
count -- recorders are append-only, so a count match proves the cache
is current.  The old implementation rebuilt a fresh ndarray from the
sample list on *every* ``min()``/``max()``/``percentile()`` call, which
made exporting a figure O(samples * statistics).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Smallest backing-array allocation; tiny recorders (unit tests,
#: diagnostics) shouldn't pay for regrowth churn either.
_MIN_CAPACITY = 256


class _Int64Buffer:
    """Append-only int64 storage: staging list + preallocated array."""

    __slots__ = ("_buf", "_n", "_pending")

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._buf = np.empty(max(capacity or 0, _MIN_CAPACITY),
                             dtype=np.int64)
        self._n = 0
        self._pending: List[int] = []

    def __len__(self) -> int:
        return self._n + len(self._pending)

    def append(self, value: int) -> None:
        self._pending.append(value)

    def view(self) -> np.ndarray:
        """All samples as one int64 array view (flushes staging)."""
        if self._pending:
            self._flush()
        return self._buf[:self._n]

    def tolist(self) -> List[int]:
        """All samples as a list of Python ints (JSON-safe)."""
        return self.view().tolist()

    def extend_array(self, arr: np.ndarray) -> None:
        """Bulk-append another buffer's view (merge support)."""
        if self._pending:
            self._flush()
        n = self._n
        need = n + arr.size
        if need > self._buf.size:
            self._grow(need)
        self._buf[n:need] = arr
        self._n = need

    def _flush(self) -> None:
        pending = np.asarray(self._pending, dtype=np.int64)
        self._pending.clear()
        n = self._n
        need = n + pending.size
        if need > self._buf.size:
            self._grow(need)
        self._buf[n:need] = pending
        self._n = need

    def _grow(self, need: int) -> None:
        grown = np.empty(max(need, 2 * self._buf.size), dtype=np.int64)
        grown[:self._n] = self._buf[:self._n]
        self._buf = grown


class LatencyRecorder:
    """Interrupt-response samples (realfeel / RCIM style).

    ``capacity`` is an optional preallocation hint -- measurement
    programs that know their sample budget pass it so the backing
    array never regrows mid-run.
    """

    def __init__(self, name: str, period_ns: Optional[int] = None,
                 capacity: Optional[int] = None) -> None:
        self.name = name
        self.period_ns = period_ns
        self._data = _Int64Buffer(capacity)
        self._last_return: Optional[int] = None
        self._summary: Optional[Tuple[int, int, int, float]] = None

    # -- realfeel style: consecutive return timestamps ------------------
    def record_return(self, tsc_now: int) -> Optional[int]:
        """Feed one post-read TSC value; returns the computed latency.

        The first call only arms the recorder (returns None).
        """
        if self.period_ns is None:
            raise ValueError(f"{self.name}: record_return needs a period")
        if self._last_return is None:
            self._last_return = tsc_now
            return None
        delta = tsc_now - self._last_return
        self._last_return = tsc_now
        latency = delta - self.period_ns
        if latency < 0:
            latency = 0
        self._data.append(latency)
        return latency

    # -- RCIM style: direct count-register read --------------------------
    def record_latency(self, latency_ns: int) -> None:
        """Feed a directly measured latency (count-register method)."""
        self._data.append(latency_ns if latency_ns > 0 else 0)

    # -- statistics ------------------------------------------------------
    @property
    def samples(self) -> List[int]:
        """The samples as a list of Python ints (JSON-safe, read-only)."""
        return self._data.tolist()

    def as_array(self) -> np.ndarray:
        return self._data.view()

    @property
    def count(self) -> int:
        return len(self._data)

    def _stats(self) -> Tuple[int, int, int, float]:
        """(count, min, max, mean), one pass, cached by count."""
        n = len(self._data)
        cached = self._summary
        if cached is not None and cached[0] == n:
            return cached
        if n:
            arr = self._data.view()
            stats = (n, int(arr.min()), int(arr.max()), float(arr.mean()))
        else:
            stats = (0, 0, 0, 0.0)
        self._summary = stats
        return stats

    def min(self) -> int:
        return self._stats()[1]

    def max(self) -> int:
        return self._stats()[2]

    def mean(self) -> float:
        return self._stats()[3]

    def percentile(self, q: float) -> float:
        if not len(self._data):
            return 0.0
        return float(np.percentile(self._data.view(), q))

    def fraction_below(self, threshold_ns: int) -> float:
        """Fraction of samples strictly below *threshold_ns*."""
        if not len(self._data):
            return 0.0
        return float((self._data.view() < threshold_ns).mean())

    def count_in(self, lo_ns: int, hi_ns: int) -> int:
        """Samples with lo <= latency < hi."""
        arr = self._data.view()
        return int(((arr >= lo_ns) & (arr < hi_ns)).sum())

    # -- merging (campaign support) --------------------------------------
    def merge_from(self, other: "LatencyRecorder") -> None:
        """Append *other*'s samples (order-preserving, deterministic)."""
        self._data.extend_array(other._data.view())

    @classmethod
    def merged(cls, name: str, recorders: Sequence["LatencyRecorder"]
               ) -> "LatencyRecorder":
        """Combine several recorders into one (e.g. a multi-seed sweep).

        The period is kept only if all inputs agree; a merged recorder
        is for statistics, not for feeding further ``record_return``
        calls.
        """
        periods = {r.period_ns for r in recorders}
        period = periods.pop() if len(periods) == 1 else None
        out = cls(name, period_ns=period,
                  capacity=sum(r.count for r in recorders))
        for rec in recorders:
            out.merge_from(rec)
        return out


class JitterRecorder:
    """Execution-determinism samples (section 5 style)."""

    def __init__(self, name: str, ideal_ns: Optional[int] = None,
                 capacity: Optional[int] = None) -> None:
        self.name = name
        self._data = _Int64Buffer(capacity)
        self._forced_ideal = ideal_ns
        self._summary: Optional[Tuple[int, int, int, float]] = None

    def record_duration(self, duration_ns: int) -> None:
        """Feed one timed iteration of the computational loop."""
        self._data.append(duration_ns)

    @property
    def durations(self) -> List[int]:
        """The durations as a list of Python ints (JSON-safe, read-only)."""
        return self._data.tolist()

    def as_array(self) -> np.ndarray:
        return self._data.view()

    @property
    def count(self) -> int:
        return len(self._data)

    def _stats(self) -> Tuple[int, int, int, float]:
        """(count, min, max, mean), one pass, cached by count."""
        n = len(self._data)
        cached = self._summary
        if cached is not None and cached[0] == n:
            return cached
        if n:
            arr = self._data.view()
            stats = (n, int(arr.min()), int(arr.max()), float(arr.mean()))
        else:
            stats = (0, 0, 0, 0.0)
        self._summary = stats
        return stats

    def ideal(self) -> int:
        """The best-case duration.

        The paper determines the ideal on an unloaded system; when a
        forced value is not supplied we use the minimum observation,
        which the unloaded run is designed to produce.
        """
        if self._forced_ideal is not None:
            return self._forced_ideal
        return self._stats()[1]

    def set_ideal(self, ideal_ns: int) -> None:
        self._forced_ideal = ideal_ns

    def max(self) -> int:
        return self._stats()[2]

    def jitter_ns(self) -> int:
        """Worst-case excess over ideal."""
        return self.max() - self.ideal() if len(self._data) else 0

    def jitter_fraction(self) -> float:
        """Jitter as a fraction of the ideal (the paper's percentage)."""
        ideal = self.ideal()
        if ideal <= 0:
            return 0.0
        return self.jitter_ns() / ideal

    def variances_ms(self) -> np.ndarray:
        """Per-iteration excess in ms (the figures' x axis)."""
        return (self._data.view() - self.ideal()) / 1e6

    # -- merging (campaign support) --------------------------------------
    def merge_from(self, other: "JitterRecorder") -> None:
        """Append *other*'s iterations; the ideal becomes the best one."""
        self._data.extend_array(other._data.view())
        if other._forced_ideal is not None:
            if self._forced_ideal is None:
                self._forced_ideal = other._forced_ideal
            else:
                self._forced_ideal = min(self._forced_ideal,
                                         other._forced_ideal)

    @classmethod
    def merged(cls, name: str, recorders: Sequence["JitterRecorder"]
               ) -> "JitterRecorder":
        out = cls(name, capacity=sum(r.count for r in recorders))
        for rec in recorders:
            out.merge_from(rec)
        return out
