"""Sample recorders for the two measurement styles the paper uses.

:class:`LatencyRecorder` implements the realfeel methodology: the test
reads the TSC after every blocking wait; the time beyond the expected
period between consecutive returns is latency.  A response that sleeps
through N periods therefore books ``N*period + delay`` of latency into
one sample, exactly as realfeel's histogram does.

:class:`JitterRecorder` implements the determinism-test methodology:
each iteration of a fixed CPU-bound loop is timed; the excess over the
best (ideal) iteration is jitter.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class LatencyRecorder:
    """Interrupt-response samples (realfeel / RCIM style)."""

    def __init__(self, name: str, period_ns: Optional[int] = None) -> None:
        self.name = name
        self.period_ns = period_ns
        self.samples: List[int] = []
        self._last_return: Optional[int] = None

    # -- realfeel style: consecutive return timestamps ------------------
    def record_return(self, tsc_now: int) -> Optional[int]:
        """Feed one post-read TSC value; returns the computed latency.

        The first call only arms the recorder (returns None).
        """
        if self.period_ns is None:
            raise ValueError(f"{self.name}: record_return needs a period")
        if self._last_return is None:
            self._last_return = tsc_now
            return None
        delta = tsc_now - self._last_return
        self._last_return = tsc_now
        latency = max(0, delta - self.period_ns)
        self.samples.append(latency)
        return latency

    # -- RCIM style: direct count-register read --------------------------
    def record_latency(self, latency_ns: int) -> None:
        """Feed a directly measured latency (count-register method)."""
        self.samples.append(max(0, latency_ns))

    # -- statistics ------------------------------------------------------
    def as_array(self) -> np.ndarray:
        return np.asarray(self.samples, dtype=np.int64)

    @property
    def count(self) -> int:
        return len(self.samples)

    def min(self) -> int:
        return int(self.as_array().min()) if self.samples else 0

    def max(self) -> int:
        return int(self.as_array().max()) if self.samples else 0

    def mean(self) -> float:
        return float(self.as_array().mean()) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.as_array(), q)) if self.samples else 0.0

    def fraction_below(self, threshold_ns: int) -> float:
        """Fraction of samples strictly below *threshold_ns*."""
        if not self.samples:
            return 0.0
        return float((self.as_array() < threshold_ns).mean())

    def count_in(self, lo_ns: int, hi_ns: int) -> int:
        """Samples with lo <= latency < hi."""
        arr = self.as_array()
        return int(((arr >= lo_ns) & (arr < hi_ns)).sum())

    # -- merging (campaign support) --------------------------------------
    def merge_from(self, other: "LatencyRecorder") -> None:
        """Append *other*'s samples (order-preserving, deterministic)."""
        self.samples.extend(other.samples)

    @classmethod
    def merged(cls, name: str, recorders: Sequence["LatencyRecorder"]
               ) -> "LatencyRecorder":
        """Combine several recorders into one (e.g. a multi-seed sweep).

        The period is kept only if all inputs agree; a merged recorder
        is for statistics, not for feeding further ``record_return``
        calls.
        """
        periods = {r.period_ns for r in recorders}
        period = periods.pop() if len(periods) == 1 else None
        out = cls(name, period_ns=period)
        for rec in recorders:
            out.merge_from(rec)
        return out


class JitterRecorder:
    """Execution-determinism samples (section 5 style)."""

    def __init__(self, name: str, ideal_ns: Optional[int] = None) -> None:
        self.name = name
        self.durations: List[int] = []
        self._forced_ideal = ideal_ns

    def record_duration(self, duration_ns: int) -> None:
        """Feed one timed iteration of the computational loop."""
        self.durations.append(duration_ns)

    def as_array(self) -> np.ndarray:
        return np.asarray(self.durations, dtype=np.int64)

    @property
    def count(self) -> int:
        return len(self.durations)

    def ideal(self) -> int:
        """The best-case duration.

        The paper determines the ideal on an unloaded system; when a
        forced value is not supplied we use the minimum observation,
        which the unloaded run is designed to produce.
        """
        if self._forced_ideal is not None:
            return self._forced_ideal
        return int(self.as_array().min()) if self.durations else 0

    def set_ideal(self, ideal_ns: int) -> None:
        self._forced_ideal = ideal_ns

    def max(self) -> int:
        return int(self.as_array().max()) if self.durations else 0

    def jitter_ns(self) -> int:
        """Worst-case excess over ideal."""
        return self.max() - self.ideal() if self.durations else 0

    def jitter_fraction(self) -> float:
        """Jitter as a fraction of the ideal (the paper's percentage)."""
        ideal = self.ideal()
        if ideal <= 0:
            return 0.0
        return self.jitter_ns() / ideal

    def variances_ms(self) -> np.ndarray:
        """Per-iteration excess in ms (the figures' x axis)."""
        arr = self.as_array()
        return (arr - self.ideal()) / 1e6

    # -- merging (campaign support) --------------------------------------
    def merge_from(self, other: "JitterRecorder") -> None:
        """Append *other*'s iterations; the ideal becomes the best one."""
        self.durations.extend(other.durations)
        if other._forced_ideal is not None:
            if self._forced_ideal is None:
                self._forced_ideal = other._forced_ideal
            else:
                self._forced_ideal = min(self._forced_ideal,
                                         other._forced_ideal)

    @classmethod
    def merged(cls, name: str, recorders: Sequence["JitterRecorder"]
               ) -> "JitterRecorder":
        out = cls(name)
        for rec in recorders:
            out.merge_from(rec)
        return out
