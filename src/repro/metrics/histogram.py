"""Histograms matching the paper's figure style.

The interrupt-response figures are log-y histograms of sample counts
per latency bin; the summaries under them are cumulative bucket
tables.  :class:`Histogram` bins linearly (the determinism figures);
:class:`LogHistogram` uses logarithmic bin edges suited to latency
distributions spanning 10 us .. 100 ms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass
class BinCount:
    lo: float
    hi: float
    count: int


class Histogram:
    """Fixed-width linear histogram."""

    def __init__(self, lo: float, hi: float, nbins: int) -> None:
        if hi <= lo or nbins <= 0:
            raise ValueError("bad histogram parameters")
        self.lo = lo
        self.hi = hi
        self.nbins = nbins
        self.counts = np.zeros(nbins + 2, dtype=np.int64)  # +under/overflow

    def add(self, value: float) -> None:
        if value < self.lo:
            self.counts[0] += 1
        elif value >= self.hi:
            self.counts[-1] += 1
        else:
            idx = int((value - self.lo) / (self.hi - self.lo) * self.nbins)
            self.counts[1 + idx] += 1

    def add_many(self, values: Sequence[float]) -> None:
        for v in values:
            self.add(v)

    @property
    def underflow(self) -> int:
        return int(self.counts[0])

    @property
    def overflow(self) -> int:
        return int(self.counts[-1])

    def bins(self) -> List[BinCount]:
        width = (self.hi - self.lo) / self.nbins
        return [BinCount(self.lo + i * width, self.lo + (i + 1) * width,
                         int(self.counts[1 + i]))
                for i in range(self.nbins)]

    def total(self) -> int:
        return int(self.counts.sum())

    def merge_from(self, other: "Histogram") -> None:
        """Add *other*'s counts bin-for-bin (identical binning only)."""
        if (other.lo, other.hi, other.nbins) != (self.lo, self.hi,
                                                 self.nbins):
            raise ValueError("cannot merge histograms with different bins")
        self.counts += other.counts


class LogHistogram:
    """Histogram with logarithmically spaced bin edges."""

    def __init__(self, lo: float, hi: float, bins_per_decade: int = 10) -> None:
        if lo <= 0 or hi <= lo:
            raise ValueError("log histogram needs 0 < lo < hi")
        self.lo = lo
        self.hi = hi
        decades = math.log10(hi / lo)
        self.nbins = max(1, int(math.ceil(decades * bins_per_decade)))
        self.edges = np.logspace(math.log10(lo), math.log10(hi),
                                 self.nbins + 1)
        self.counts = np.zeros(self.nbins + 2, dtype=np.int64)

    def add(self, value: float) -> None:
        if value < self.lo:
            self.counts[0] += 1
        elif value >= self.hi:
            self.counts[-1] += 1
        else:
            idx = int(np.searchsorted(self.edges, value, side="right")) - 1
            idx = min(max(idx, 0), self.nbins - 1)
            self.counts[1 + idx] += 1

    def add_many(self, values: Sequence[float]) -> None:
        for v in values:
            self.add(v)

    def bins(self) -> List[BinCount]:
        return [BinCount(float(self.edges[i]), float(self.edges[i + 1]),
                         int(self.counts[1 + i]))
                for i in range(self.nbins)]

    def total(self) -> int:
        return int(self.counts.sum())

    def merge_from(self, other: "LogHistogram") -> None:
        """Add *other*'s counts bin-for-bin (identical binning only)."""
        if (other.lo, other.hi, other.nbins) != (self.lo, self.hi,
                                                 self.nbins):
            raise ValueError("cannot merge histograms with different bins")
        self.counts += other.counts

    def render_ascii(self, width: int = 60, unit: str = "ms",
                     scale: float = 1e6) -> str:
        """Log-count bar chart, one line per occupied bin.

        *scale* divides raw (ns) bin edges into *unit*.
        """
        lines = []
        occupied = [(b.lo / scale, b.hi / scale, b.count)
                    for b in self.bins() if b.count > 0]
        if not occupied:
            return "(empty histogram)"
        max_log = max(math.log10(c + 1) for _lo, _hi, c in occupied)
        for lo, hi, count in occupied:
            bar = "#" * max(1, int(width * math.log10(count + 1) / max_log))
            lines.append(f"{lo:>10.3f}-{hi:<10.3f}{unit} |{bar} {count}")
        return "\n".join(lines)
