"""repro.store: content-addressed, resumable result persistence.

Every scenario run is keyed by a stable digest of *(ScenarioSpec
fields, seed, config overrides, fault plan + intensity, code
version)*; because the simulator is byte-deterministic (the golden
suites pin it), a key hit can be loaded instead of recomputed with no
observable difference -- exports are byte-identical cold, warm or
resumed.  See :mod:`repro.store.keys` for the keying contract,
:mod:`repro.store.entry` for the checksummed on-disk format, and
:mod:`repro.store.store` for the store/journal API used by the
campaign runner and the shield-margin ladder.
"""

from repro.store.entry import (
    StoreCorruptError,
    decode,
    encode_result,
    encode_stalled,
    result_from_entry,
)
from repro.store.keys import canonical, code_version, digest_of, job_key
from repro.store.store import (
    DEFAULT_STORE_DIR,
    JournalWriter,
    ResultStore,
    StoreEntry,
    open_store,
)

__all__ = [
    "DEFAULT_STORE_DIR",
    "JournalWriter",
    "ResultStore",
    "StoreCorruptError",
    "StoreEntry",
    "canonical",
    "code_version",
    "decode",
    "digest_of",
    "encode_result",
    "encode_stalled",
    "job_key",
    "open_store",
    "result_from_entry",
]
