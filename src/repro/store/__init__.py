"""repro.store: content-addressed, resumable result persistence.

Every scenario run is keyed by a stable digest of *(ScenarioSpec
fields, seed, config overrides, fault plan + intensity, code
version)*; because the simulator is byte-deterministic (the golden
suites pin it), a key hit can be loaded instead of recomputed with no
observable difference -- exports are byte-identical cold, warm or
resumed.  See :mod:`repro.store.keys` for the keying contract,
:mod:`repro.store.entry` for the checksummed on-disk format, and
:mod:`repro.store.store` for the store/journal API used by the
campaign runner and the shield-margin ladder.

Two entry kinds share the store: ``RRSTORE1`` results (``.rrs``) and
``RTRACE1`` trace recordings (``.rts``) -- the persisted tracepoint
streams ``repro.observe.diff`` (simdiff) aligns and diffs.
"""

from repro.store.entry import (
    StoreCorruptError,
    decode,
    decode_recording,
    encode_recording,
    encode_result,
    encode_stalled,
    entry_kind_of,
    result_from_entry,
)
from repro.store.keys import (
    canonical,
    code_version,
    digest_of,
    job_key,
    recording_key,
)
from repro.store.store import (
    DEFAULT_STORE_DIR,
    GcReport,
    JournalWriter,
    ResultStore,
    StoreEntry,
    open_store,
)

__all__ = [
    "DEFAULT_STORE_DIR",
    "GcReport",
    "JournalWriter",
    "ResultStore",
    "StoreCorruptError",
    "StoreEntry",
    "canonical",
    "code_version",
    "decode",
    "decode_recording",
    "digest_of",
    "encode_recording",
    "encode_result",
    "encode_stalled",
    "entry_kind_of",
    "job_key",
    "open_store",
    "recording_key",
    "result_from_entry",
]
