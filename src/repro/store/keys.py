"""Stable content-addressed keys for scenario runs.

A run's identity is the pair *(what would execute, what code would
execute it)*:

* **what** -- every field of the :class:`~repro.experiments.scenario.
  ScenarioSpec`, recursively canonicalised: dataclasses become
  ``{"__dataclass__": name, fields...}`` maps, mappings are sorted by
  key, and the ``config_overrides`` pair-tuple is order-insensitive
  (two specs differing only in override insertion order share a key);
* **code** -- a digest of every ``*.py`` file under the installed
  ``repro`` package, so *any* source edit invalidates every cached
  run cleanly.  Byte-identity across refactors is exactly what the
  golden suites prove, but the store never assumes it: a changed tree
  is a changed key, and re-running repopulates the store.

Keys are hex SHA-256 digests of the canonical JSON encoding; they are
stable across processes, platforms and Python versions (the encoding
uses ``sort_keys`` and no floats-from-repr ambiguity beyond what JSON
itself defines).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, Optional

#: Cache of tree digests, keyed by resolved root directory: hashing
#: ~180 source files once per process is cheap, once per job is not.
_CODE_VERSIONS: Dict[str, str] = {}


def canonical(value: Any) -> Any:
    """Recursively reduce *value* to a JSON-stable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: Dict[str, Any] = {
            "__dataclass__": type(value).__name__,
        }
        for field in dataclasses.fields(value):
            out[field.name] = canonical(getattr(value, field.name))
        return out
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Last resort for exotic override values: a typed repr is stable
    # enough to key on and never silently collides with JSON scalars.
    return {"__repr__": f"{type(value).__name__}:{value!r}"}


def digest_of(value: Any) -> str:
    """Hex SHA-256 of the canonical JSON encoding of *value*."""
    text = json.dumps(canonical(value), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _package_root() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def code_version(root: Optional[str] = None) -> str:
    """Digest of the ``repro`` source tree (or an explicit *root*).

    Every ``*.py`` file under the tree contributes its relative path
    and raw bytes, in sorted path order; ``__pycache__`` is skipped.
    The result is cached per root for the life of the process.
    """
    base = os.path.abspath(root) if root is not None else _package_root()
    cached = _CODE_VERSIONS.get(base)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    paths = []
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in filenames:
            if name.endswith(".py"):
                paths.append(os.path.join(dirpath, name))
    for path in sorted(paths):
        rel = os.path.relpath(path, base).replace(os.sep, "/")
        hasher.update(rel.encode("utf-8"))
        hasher.update(b"\0")
        with open(path, "rb") as fh:
            hasher.update(fh.read())
        hasher.update(b"\0")
    digest = hasher.hexdigest()
    _CODE_VERSIONS[base] = digest
    return digest


def _canonical_spec(spec: Any) -> Any:
    """Canonical spec form with order-insensitive config overrides."""
    form = canonical(spec)
    overrides = form.get("config_overrides")
    if isinstance(overrides, list):
        form["config_overrides"] = sorted(
            overrides, key=lambda pair: json.dumps(pair, sort_keys=True))
    return form


def job_key(spec: Any, code: Optional[str] = None) -> str:
    """The store key for one scenario run.

    *spec* is a :class:`~repro.experiments.scenario.ScenarioSpec`; it
    already carries the seed, config overrides, fault plan and fault
    intensity, so the key covers the full (scenario, seed, overrides,
    faults, code version) identity the store is contracted to.
    """
    return digest_of({
        "spec": _canonical_spec(spec),
        "code": code if code is not None else code_version(),
    })


def recording_key(spec: Any, capacity: int,
                  code: Optional[str] = None) -> str:
    """The store key for one trace recording (RTRACE1 entry).

    Recordings key on the same (spec, code) identity as results plus
    the ring *capacity* (a wrapped ring records a different event
    window) and a kind marker so a recording can never collide with
    the result of the same run.
    """
    return digest_of({
        "kind": "rtrace",
        "spec": _canonical_spec(spec),
        "capacity": int(capacity),
        "code": code if code is not None else code_version(),
    })
