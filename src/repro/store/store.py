"""The content-addressed result store and campaign journals.

Layout under the store root::

    objects/<k[:2]>/<key>.rrs     one entry per run (see entry.py)
    objects/<k[:2]>/<key>.rts     one RTRACE1 trace recording
    campaigns/<ckey>.journal      completed-job checkpoint, one line
                                  per finished job: "<index> <key>"

Writes are atomic (tmp file + ``os.replace``), so a concurrent reader
never sees a half-written entry and an interrupted writer leaves at
worst an orphaned ``*.tmp`` (swept by ``gc``).  Reads validate the
entry checksum; anything corrupt or truncated is reported as a miss
(and counted on :attr:`ResultStore.corrupt_reads`), never an error --
the runner simply recomputes and overwrites.

The journal is the resume checkpoint: the campaign runner truncates it
at start-up, appends a line the moment each job's result is safely in
the store, and flushes per line, so a ``Ctrl-C``/``SIGKILL``/CI-timeout
at any point leaves a prefix of completed work that the next
``--resume`` invocation trusts (after re-checking each journaled key
against the current job list -- a stale journal from different code or
a different matrix is ignored line by line).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.store.entry import (
    StoreCorruptError,
    decode,
    decode_recording,
    encode_recording,
    encode_result,
    encode_stalled,
    entry_kind_of,
    result_from_entry,
)
from repro.store.keys import code_version

#: Entry-file suffix per kind: results and stalled markers share the
#: RRSTORE1 frame (``.rrs``); trace recordings are RTRACE1 (``.rts``).
ENTRY_SUFFIXES = (".rrs", ".rts")

#: Default store location (relative to the working directory); the
#: CLI and benchmarks use this unless told otherwise.
DEFAULT_STORE_DIR = ".repro-store"

#: Process-wide tmp-file sequence.  Two *processes* writing the same
#: key already get distinct tmp names from the pid; the counter makes
#: the name unique per writer *within* a process too (the service
#: scheduler and worker threads may race on one hot key), so no two
#: writers ever share a tmp path and ``os.replace`` keeps every entry
#: whole -- last writer wins, both succeed, no torn bytes.
#: ``itertools.count`` is atomic under the GIL.
_TMP_SEQ = itertools.count()


@dataclass
class StoreEntry:
    """One validated entry: metadata plus the rebuilt result."""

    key: str
    meta: Dict[str, Any]
    result: Any = None          # ScenarioResult, None when stalled

    @property
    def stalled(self) -> bool:
        return bool(self.meta.get("stalled"))

    @property
    def error(self) -> Optional[str]:
        return self.meta.get("error")


@dataclass
class GcReport:
    """What one ``gc`` pass removed (or, dry-run, would remove)."""

    removed: List[str]                       # keys, path order
    reclaimed_bytes: int = 0
    by_kind: Dict[str, int] = None           # type: ignore[assignment]
    tmp_swept: int = 0
    dry_run: bool = False

    def __post_init__(self) -> None:
        if self.by_kind is None:
            self.by_kind = {}

    def to_dict(self) -> Dict[str, Any]:
        return {"removed": list(self.removed),
                "reclaimed_bytes": self.reclaimed_bytes,
                "by_kind": dict(self.by_kind),
                "tmp_swept": self.tmp_swept,
                "dry_run": self.dry_run}


class ResultStore:
    """Content-addressed persistence for scenario runs."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.corrupt_reads = 0

    # -- paths ----------------------------------------------------------
    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def path_for(self, key: str) -> str:
        return os.path.join(self._objects_dir(), key[:2], f"{key}.rrs")

    def recording_path_for(self, key: str) -> str:
        return os.path.join(self._objects_dir(), key[:2], f"{key}.rts")

    def journal_path(self, campaign_key: str) -> str:
        return os.path.join(self.root, "campaigns",
                            f"{campaign_key}.journal")

    # -- entries --------------------------------------------------------
    def contains(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    @staticmethod
    def _touch(path: str) -> None:
        """Bump an entry's mtime on a hit (best effort).

        The mtime doubles as the recency clock for ``gc --max-bytes``:
        entries a long-running service keeps hitting stay young,
        entries nobody reads age out first (LRU, not insertion order).
        """
        try:
            os.utime(path)
        except OSError:
            pass

    def get(self, key: str) -> Optional[StoreEntry]:
        """Load and validate one entry; None on miss *or* corruption."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        try:
            meta, arr = decode(blob)
            if meta.get("key") != key:
                raise StoreCorruptError("entry key does not match path")
            result = None if meta.get("stalled") \
                else result_from_entry(meta, arr)
        except StoreCorruptError:
            self.corrupt_reads += 1
            return None
        self._touch(path)
        return StoreEntry(key=key, meta=meta, result=result)

    def _write(self, key: str, blob: bytes,
               path: Optional[str] = None) -> str:
        if path is None:
            path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.{os.getpid()}.{next(_TMP_SEQ)}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
        return path

    def put(self, key: str, result: Any,
            code: Optional[str] = None) -> str:
        """Store one completed ScenarioResult atomically."""
        return self._write(key, encode_result(
            result, key, code if code is not None else code_version()))

    def put_stalled(self, key: str, scenario: str, error: str,
                    code: Optional[str] = None) -> str:
        """Store a stalled-run marker (margin ladder support)."""
        return self._write(key, encode_stalled(
            scenario, error, key, code if code is not None
            else code_version()))

    def put_recording(self, key: str, body: Dict[str, Any],
                      code: Optional[str] = None) -> str:
        """Store one trace-recording body (RTRACE1) atomically."""
        blob = encode_recording(
            body, key, code if code is not None else code_version())
        return self._write(key, blob,
                           path=self.recording_path_for(key))

    def get_recording(self, key: str) -> Optional[Dict[str, Any]]:
        """Load one recording body; None on miss *or* corruption."""
        path = self.recording_path_for(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        try:
            meta, body = decode_recording(blob)
            if meta.get("key") != key:
                raise StoreCorruptError("entry key does not match path")
        except StoreCorruptError:
            self.corrupt_reads += 1
            return None
        self._touch(path)
        return body

    # -- maintenance ----------------------------------------------------
    def _entry_paths(self) -> Iterator[str]:
        objects = self._objects_dir()
        if not os.path.isdir(objects):
            return
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(ENTRY_SUFFIXES):
                    yield os.path.join(shard_dir, name)

    @staticmethod
    def _key_of(path: str) -> str:
        return os.path.splitext(os.path.basename(path))[0]

    @staticmethod
    def _read_entry(path: str) -> Dict[str, Any]:
        """Decode whichever entry kind *path* holds; returns its meta.

        Raises :class:`StoreCorruptError` (or ``OSError``) on any
        failure, including a meta key that disagrees with the path.
        """
        with open(path, "rb") as fh:
            blob = fh.read()
        if path.endswith(".rts"):
            meta, _body = decode_recording(blob)
        else:
            meta, arr = decode(blob)
            if not meta.get("stalled"):
                result_from_entry(meta, arr)
        if meta.get("key") != ResultStore._key_of(path):
            raise StoreCorruptError("entry key does not match path")
        return meta

    def ls(self, kind: Optional[str] = None
           ) -> Iterator[Tuple[str, Dict[str, Any], int]]:
        """Yield (key, meta, size_bytes) for every readable entry.

        Corrupt entries yield ``(key, {}, size)`` so callers can still
        see and clean them.  *kind* filters to one entry kind
        (``result`` | ``stalled`` | ``rtrace``); corrupt entries are
        always reported regardless of the filter.
        """
        for path in self._entry_paths():
            key = self._key_of(path)
            size = os.path.getsize(path)
            try:
                meta = self._read_entry(path)
            except (OSError, StoreCorruptError):
                yield key, {}, size
                continue
            if kind is not None and entry_kind_of(meta) != kind:
                continue
            yield key, meta, size

    def verify(self, delete: bool = False) -> Tuple[int, List[str]]:
        """Fully decode every entry; returns (ok_count, corrupt_keys).

        With *delete*, corrupt entries are removed so the next run
        recomputes them.
        """
        ok = 0
        corrupt: List[str] = []
        for path in self._entry_paths():
            try:
                self._read_entry(path)
                ok += 1
            except (OSError, StoreCorruptError):
                corrupt.append(self._key_of(path))
                if delete:
                    try:
                        os.remove(path)
                    except OSError:
                        pass
        return ok, corrupt

    def gc(self, keep_code: Optional[str] = None,
           max_age_s: Optional[float] = None,
           now_s: Optional[float] = None,
           max_bytes: Optional[int] = None,
           dry_run: bool = False) -> GcReport:
        """Collect entries from other code versions (and stale temps).

        *keep_code* defaults to the current tree digest: entries whose
        recorded code version differs can never be hit again (the key
        embeds the digest), so they are pure disk waste.  *max_age_s*
        additionally drops entries older than the given age relative
        to *now_s* (callers supply the clock; the store itself stays
        wall-clock-free).  *max_bytes* bounds the store for
        long-running hosts (the service): after the code/age passes,
        surviving entries are evicted least-recently-used first (the
        store bumps an entry's mtime on every hit) until the total
        size fits the budget.  Returns a :class:`GcReport` with the
        removed (or, under *dry_run*, removable) keys, the bytes they
        occupied and a per-entry-kind breakdown.
        """
        keep = keep_code if keep_code is not None else code_version()
        report = GcReport(removed=[], dry_run=dry_run)
        kept: List[Tuple[float, str, str, int]] = []  # (mtime, path, kind, size)

        def drop_path(path: str, kind: str, size: int) -> None:
            report.removed.append(self._key_of(path))
            report.reclaimed_bytes += size
            report.by_kind[kind] = report.by_kind.get(kind, 0) + 1
            if not dry_run:
                try:
                    os.remove(path)
                except OSError:
                    pass

        for path in self._entry_paths():
            kind = "corrupt"
            drop = False
            try:
                meta = self._read_entry(path)
                kind = entry_kind_of(meta)
                if meta.get("code") != keep:
                    drop = True
            except (OSError, StoreCorruptError):
                drop = True
            try:
                size = os.path.getsize(path)
                mtime = os.path.getmtime(path)
            except OSError:
                size, mtime = 0, 0.0
            if not drop and max_age_s is not None and now_s is not None:
                if now_s - mtime > max_age_s:
                    drop = True
            if drop:
                drop_path(path, kind, size)
            else:
                kept.append((mtime, path, kind, size))
        # LRU budget: evict the coldest survivors until we fit.
        if max_bytes is not None:
            total = sum(size for _, _, _, size in kept)
            for mtime, path, kind, size in sorted(kept):
                if total <= max_bytes:
                    break
                drop_path(path, kind, size)
                total -= size
        # Sweep orphaned tmp files from interrupted writers.
        if not dry_run:
            for dirpath, _dirnames, filenames in os.walk(self.root):
                for name in filenames:
                    if name.endswith(".tmp"):
                        tmp = os.path.join(dirpath, name)
                        try:
                            report.reclaimed_bytes += os.path.getsize(tmp)
                            os.remove(tmp)
                            report.tmp_swept += 1
                        except OSError:
                            pass
        return report

    def stats(self) -> Dict[str, Any]:
        """Entry count and total size (for ``store ls`` footers)."""
        count = 0
        size = 0
        by_kind: Dict[str, int] = {}
        for path in self._entry_paths():
            count += 1
            size += os.path.getsize(path)
            kind = "rtrace" if path.endswith(".rts") else "result"
            by_kind[kind] = by_kind.get(kind, 0) + 1
        return {"entries": count, "bytes": size, "by_kind": by_kind,
                "root": self.root}

    # -- journals -------------------------------------------------------
    def read_journal(self, campaign_key: str) -> Dict[int, str]:
        """Completed job indices -> entry keys from a prior run.

        Malformed lines (a torn final write) are skipped: the journal
        is a checkpoint, not a ledger, and a lost tail line merely
        recomputes one job.
        """
        path = self.journal_path(campaign_key)
        done: Dict[int, str] = {}
        try:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    parts = line.split()
                    if len(parts) != 2:
                        continue
                    index, key = parts
                    try:
                        done[int(index)] = key
                    except ValueError:
                        continue
        except OSError:
            return {}
        return done

    def journal_writer(self, campaign_key: str) -> "JournalWriter":
        return JournalWriter(self.journal_path(campaign_key))


class JournalWriter:
    """Append-per-completion checkpoint file, flushed per line."""

    def __init__(self, path: str) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        self._fh = open(path, "w", encoding="utf-8")

    def record(self, index: int, key: str) -> None:
        self._fh.write(f"{index} {key}\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def open_store(store: Any) -> Optional[ResultStore]:
    """Coerce a store argument: ResultStore | path | None."""
    if store is None:
        return None
    if isinstance(store, ResultStore):
        return store
    return ResultStore(str(store))
