"""On-disk entry format: one scenario run, binary + JSON, checksummed.

Layout (little-endian)::

    offset  size      field
    0       8         magic  b"RRSTORE1"
    8       4         u32    meta_len
    12      meta_len  utf-8  canonical JSON metadata (sort_keys)
    ...     8*count   i64[]  recorder samples / durations
    end-4   4         u32    CRC-32 of everything before it

The metadata carries everything a :class:`~repro.experiments.scenario.
ScenarioResult` export needs except the sample array itself: scenario
identity, kernel description, recorder reconstruction parameters
(type, name, period, forced ideal), the details dict, and the fault
summary (injection counts + CRC timeline digest -- the margin ladder's
cell inputs).  Observational attachments (``lockdep``, ``trace``) are
deliberately **not** stored: exports must stay byte-identical with and
without observation, so a cache hit reproduces the unobserved result.

A *stalled* entry (``meta["stalled"]`` true, zero-length array) records
a run that raised :class:`~repro.sim.errors.SimulationStalledError`;
the margin ladder caches those as unbounded cells instead of re-running
interference heavy enough to stall the simulation.

A second entry kind shares the frame: **trace recordings** (magic
``b"RTRACE1\\0"``, suffix ``.rts``) persist a traced run's typed
tracepoint stream, per-CPU accounting snapshot and attribution
timeline for ``repro.observe.diff`` (simdiff).  The payload is the
zlib-compressed canonical-JSON recording body; the metadata carries
``entry_kind: "rtrace"`` plus the identity fields (scenario, seed,
knobs, code digest) and the exact compressed/raw byte counts, so a
flipped bit anywhere fails either the CRC or the length checks.

Any mismatch -- bad magic, short file, trailing garbage, CRC failure,
meta/payload length disagreement -- raises :class:`StoreCorruptError`;
callers treat corrupt entries as cache misses.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.metrics.recorder import JitterRecorder, LatencyRecorder

MAGIC = b"RRSTORE1"
TRACE_MAGIC = b"RTRACE1\x00"
FORMAT_VERSION = 1


class StoreCorruptError(ValueError):
    """An entry failed validation (truncated, flipped bits, bad magic)."""


def _meta_for(result: Any, key: str, code: str) -> Dict[str, Any]:
    recorder = result.recorder
    if isinstance(recorder, JitterRecorder):
        rec_meta: Dict[str, Any] = {
            "type": "jitter",
            "name": recorder.name,
            "forced_ideal": recorder._forced_ideal,
        }
    elif isinstance(recorder, LatencyRecorder):
        rec_meta = {
            "type": "latency",
            "name": recorder.name,
            "period_ns": recorder.period_ns,
        }
    else:
        raise TypeError(f"unstorable recorder {type(recorder).__name__}")
    faults: Optional[Dict[str, Any]] = None
    if result.faults is not None:
        # The timeline is O(injections) and only the digest is ever
        # compared downstream; store the summary, not the event list.
        faults = {k: result.faults[k]
                  for k in ("plan", "intensity", "enabled",
                            "lockdep_composed", "injections",
                            "by_injector", "digest")
                  if k in result.faults}
    return {
        "format": FORMAT_VERSION,
        "key": key,
        "code": code,
        "stalled": False,
        "error": None,
        "scenario": result.scenario,
        "title": result.title,
        "kind": result.kind,
        "kernel_name": result.kernel_name,
        "seed": result.seed,
        "report_style": result.report_style,
        "ideal_ns": result.ideal_ns,
        "details": dict(result.details),
        "recorder": rec_meta,
        "faults": faults,
    }


def _frame(meta: Dict[str, Any], payload: bytes,
           magic: bytes = MAGIC) -> bytes:
    meta_bytes = json.dumps(meta, sort_keys=True,
                            separators=(",", ":")).encode("utf-8")
    body = b"".join((magic, struct.pack("<I", len(meta_bytes)),
                     meta_bytes, payload))
    return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)


def _unframe(blob: bytes,
             magic: bytes = MAGIC) -> Tuple[Dict[str, Any], bytes]:
    """Validate the shared frame; returns (meta, payload bytes)."""
    if len(blob) < len(magic) + 8:
        raise StoreCorruptError("entry truncated (shorter than header)")
    if blob[:len(magic)] != magic:
        raise StoreCorruptError("bad magic (not a store entry)")
    body, (crc,) = blob[:-4], struct.unpack("<I", blob[-4:])
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise StoreCorruptError("CRC mismatch (corrupted entry)")
    (meta_len,) = struct.unpack_from("<I", blob, len(magic))
    meta_start = len(magic) + 4
    meta_end = meta_start + meta_len
    if meta_end > len(body):
        raise StoreCorruptError("meta length exceeds entry size")
    try:
        meta = json.loads(body[meta_start:meta_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptError(f"unreadable metadata: {exc}") from None
    if not isinstance(meta, dict) or meta.get("format") != FORMAT_VERSION:
        raise StoreCorruptError("unknown entry format")
    return meta, body[meta_end:]


def encode_result(result: Any, key: str, code: str) -> bytes:
    """Serialise a ScenarioResult into one checksummed entry."""
    arr = np.ascontiguousarray(result.recorder.as_array(),
                               dtype="<i8")
    meta = _meta_for(result, key, code)
    meta["count"] = int(arr.size)
    return _frame(meta, arr.tobytes())


def encode_stalled(scenario: str, error: str, key: str,
                   code: str) -> bytes:
    """Serialise a stalled-run marker (no samples, just the error)."""
    meta = {
        "format": FORMAT_VERSION,
        "key": key,
        "code": code,
        "stalled": True,
        "error": error,
        "scenario": scenario,
        "count": 0,
    }
    return _frame(meta, b"")


def decode(blob: bytes) -> Tuple[Dict[str, Any], np.ndarray]:
    """Validate and split a result entry into (meta, samples array).

    Raises :class:`StoreCorruptError` on any inconsistency.
    """
    meta, payload = _unframe(blob, MAGIC)
    count = meta.get("count", 0)
    if len(payload) != 8 * count:
        raise StoreCorruptError(
            f"payload holds {len(payload) // 8} samples, "
            f"meta promises {count}")
    arr = np.frombuffer(payload, dtype="<i8").astype(np.int64)
    return meta, arr


#: Recording body fields lifted into the entry metadata so ``store
#: ls``/``gc`` can identify a recording without decompressing it.
_RECORDING_META_FIELDS = ("scenario", "kind", "kernel_name", "seed",
                         "samples_target", "iterations", "capacity",
                         "shielded", "fault_plan", "fault_intensity")


def encode_recording(body: Dict[str, Any], key: str,
                     code: str) -> bytes:
    """Serialise a trace-recording body into one RTRACE1 entry.

    *body* is the plain-dict recording produced by
    :mod:`repro.observe.diff.recording`; it is stored as
    zlib-compressed canonical JSON so an entry stays a few hundred KB
    even with tens of thousands of tracepoint events.
    """
    raw = json.dumps(body, sort_keys=True,
                     separators=(",", ":")).encode("utf-8")
    payload = zlib.compress(raw, 9)
    meta: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "entry_kind": "rtrace",
        "key": key,
        "code": code,
        "payload_bytes": len(payload),
        "raw_bytes": len(raw),
    }
    for field in _RECORDING_META_FIELDS:
        if field in body:
            meta[field] = body[field]
    return _frame(meta, payload, magic=TRACE_MAGIC)


def decode_recording(blob: bytes) -> Tuple[Dict[str, Any],
                                           Dict[str, Any]]:
    """Validate and split an RTRACE1 entry into (meta, body dict)."""
    meta, payload = _unframe(blob, TRACE_MAGIC)
    if meta.get("entry_kind") != "rtrace":
        raise StoreCorruptError("RTRACE1 frame without rtrace meta")
    if len(payload) != meta.get("payload_bytes"):
        raise StoreCorruptError(
            f"payload holds {len(payload)} bytes, "
            f"meta promises {meta.get('payload_bytes')}")
    try:
        raw = zlib.decompress(payload)
    except zlib.error as exc:
        raise StoreCorruptError(
            f"undecompressable recording: {exc}") from None
    if len(raw) != meta.get("raw_bytes"):
        raise StoreCorruptError(
            f"recording inflates to {len(raw)} bytes, "
            f"meta promises {meta.get('raw_bytes')}")
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptError(
            f"unreadable recording body: {exc}") from None
    if not isinstance(body, dict):
        raise StoreCorruptError("recording body is not an object")
    return meta, body


def entry_kind_of(meta: Dict[str, Any]) -> str:
    """Classify an entry's metadata: result | stalled | rtrace."""
    if meta.get("entry_kind") == "rtrace":
        return "rtrace"
    if meta.get("stalled"):
        return "stalled"
    return "result"


def result_from_entry(meta: Dict[str, Any], arr: np.ndarray) -> Any:
    """Rebuild the ScenarioResult a non-stalled entry describes."""
    from repro.experiments.scenario import ScenarioResult

    rec_meta = meta["recorder"]
    if rec_meta["type"] == "jitter":
        recorder: Any = JitterRecorder(rec_meta["name"],
                                       ideal_ns=rec_meta["forced_ideal"],
                                       capacity=int(arr.size))
    else:
        recorder = LatencyRecorder(rec_meta["name"],
                                   period_ns=rec_meta["period_ns"],
                                   capacity=int(arr.size))
    if arr.size:
        recorder._data.extend_array(arr)
    return ScenarioResult(
        scenario=meta["scenario"],
        title=meta["title"],
        kind=meta["kind"],
        kernel_name=meta["kernel_name"],
        seed=meta["seed"],
        recorder=recorder,
        report_style=meta["report_style"],
        ideal_ns=meta["ideal_ns"],
        details=dict(meta["details"]),
        faults=dict(meta["faults"]) if meta["faults"] is not None
        else None,
    )
