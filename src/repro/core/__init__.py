"""The paper's primary contribution: shielded-processor support.

:mod:`repro.core.affinity` provides CPU-mask arithmetic and the
effective-affinity semantics; :mod:`repro.core.shield` implements the
``/proc/shield`` controller that rewrites process and interrupt
affinities and gates the local timer interrupt.
"""

from repro.core.affinity import CpuMask, effective_affinity
from repro.core.shield import ShieldController, ShieldState
from repro.core.shield_cmd import ShieldCommand, ShieldCommandError

__all__ = [
    "CpuMask",
    "effective_affinity",
    "ShieldController",
    "ShieldState",
    "ShieldCommand",
    "ShieldCommandError",
]
