"""The ``shield(1)`` command: RedHawk's administrator front end.

RedHawk ships a ``shield`` utility so administrators do not poke
``/proc/shield`` masks by hand.  This module reproduces its interface
against the simulated kernel's procfs:

    shield                     # show current shielding
    shield -a 1                # shield CPU 1 from everything (all)
    shield -p 1 -i 1           # processes + interrupts only
    shield -l 1                # local timer only
    shield -r                  # reset (remove all shielding)
    shield -c                  # show per-CPU status listing

Masks accumulate the way the real flags do: each flag names the CPUs
(comma-separated list or hex mask with a ``0x`` prefix) that should be
shielded for that category; flags given together are applied in one
update.  All writes go through the same ``/proc/shield`` files a human
would use, so everything the command does is reproducible by hand.
"""

from __future__ import annotations

import argparse
import io
from typing import List, Optional, TYPE_CHECKING

from repro.core.affinity import CpuMask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


class ShieldCommandError(Exception):
    """Bad usage of the shield command."""


def parse_cpu_list(text: str, ncpus: int) -> CpuMask:
    """Parse ``1``, ``0,1``, ``0x2`` into a mask, validating range."""
    text = text.strip()
    try:
        if text.lower().startswith("0x"):
            mask = CpuMask(int(text, 16))
        else:
            mask = CpuMask([int(part) for part in text.split(",") if part])
    except (ValueError, TypeError) as exc:
        raise ShieldCommandError(f"bad CPU list {text!r}") from exc
    if not mask.issubset(CpuMask.all(ncpus)):
        raise ShieldCommandError(
            f"CPU list {text!r} references CPUs beyond 0..{ncpus - 1}")
    return mask


class ShieldCommand:
    """Programmatic ``shield(1)``."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    # ------------------------------------------------------------------
    def run(self, argv: Optional[List[str]] = None) -> str:
        """Execute one invocation; returns the printed output."""
        parser = argparse.ArgumentParser(prog="shield", add_help=False)
        parser.add_argument("-a", "--all", default=None,
                            help="shield CPUS from procs+irqs+ltmr")
        parser.add_argument("-p", "--procs", default=None)
        parser.add_argument("-i", "--irqs", default=None)
        parser.add_argument("-l", "--ltmr", default=None)
        parser.add_argument("-r", "--reset", action="store_true")
        parser.add_argument("-c", "--status", action="store_true")
        try:
            args = parser.parse_args(argv or [])
        except SystemExit as exc:  # argparse's error path
            raise ShieldCommandError("bad shield usage") from exc

        if self.kernel.shield is None:
            raise ShieldCommandError(
                "shield: kernel has no shielded-processor support")

        out = io.StringIO()
        ncpus = self.kernel.ncpus
        if args.reset:
            self._write_masks(CpuMask(0), CpuMask(0), CpuMask(0))
        updates = {}
        if args.all is not None:
            mask = parse_cpu_list(args.all, ncpus)
            updates = {"procs": mask, "irqs": mask, "ltmr": mask}
        for key in ("procs", "irqs", "ltmr"):
            value = getattr(args, key)
            if value is not None:
                updates[key] = parse_cpu_list(value, ncpus)
        if updates:
            shield = self.kernel.shield
            self._write_masks(
                updates.get("procs", shield.procs_mask),
                updates.get("irqs", shield.irqs_mask),
                updates.get("ltmr", shield.ltmr_mask))
        if args.status:
            out.write(self._status_listing())
        else:
            out.write(self._summary())
        return out.getvalue()

    # ------------------------------------------------------------------
    def _write_masks(self, procs: CpuMask, irqs: CpuMask,
                     ltmr: CpuMask) -> None:
        procfs = self.kernel.procfs
        procfs.write("/proc/shield/procs", procs.to_proc())
        procfs.write("/proc/shield/irqs", irqs.to_proc())
        procfs.write("/proc/shield/ltmr", ltmr.to_proc())

    def _summary(self) -> str:
        procfs = self.kernel.procfs
        lines = []
        for name in ("procs", "irqs", "ltmr"):
            mask = CpuMask.parse(procfs.read(f"/proc/shield/{name}"))
            cpus = ",".join(str(c) for c in mask) or "none"
            lines.append(f"{name:<6} shielded cpus: {cpus}")
        return "\n".join(lines) + "\n"

    def _status_listing(self) -> str:
        shield = self.kernel.shield
        header = f"{'CPU':>4}  {'procs':>6}  {'irqs':>6}  {'ltmr':>6}"
        lines = [header]
        for cpu in range(self.kernel.ncpus):
            flags = ["yes" if cpu in mask else "no"
                     for mask in (shield.procs_mask, shield.irqs_mask,
                                  shield.ltmr_mask)]
            lines.append(f"{cpu:>4}  {flags[0]:>6}  {flags[1]:>6}  "
                         f"{flags[2]:>6}")
        return "\n".join(lines) + "\n"
