"""The shielded-processor controller (``/proc/shield``).

This is the paper's contribution (section 3).  Three independent masks
select which CPUs are shielded from:

* ``procs`` -- ordinary processes,
* ``irqs``  -- device interrupts that have a settable affinity,
* ``ltmr``  -- the per-CPU local timer interrupt.

Writing a mask dynamically re-applies the shield: every task's and
every IRQ's *effective* affinity is recomputed from its *requested*
affinity via :func:`repro.core.affinity.effective_affinity`, tasks
currently on a newly shielded CPU are migrated off it, and the local
timer is stopped or restarted per CPU.

The controller talks to the kernel through a deliberately narrow
interface (``iter_tasks``, ``reapply_task_affinity``,
``set_local_timer_enabled``) so that the shielding semantics are
testable in isolation from the full kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.core.affinity import CpuMask, effective_affinity
from repro.sim.errors import InvalidMaskError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.machine import Machine


@dataclass(frozen=True)
class ShieldState:
    """Snapshot of the three shield masks."""

    procs: CpuMask
    irqs: CpuMask
    ltmr: CpuMask

    def shields_anything(self) -> bool:
        return bool(self.procs) or bool(self.irqs) or bool(self.ltmr)


class ShieldController:
    """Implements the ``/proc/shield`` semantics."""

    def __init__(self, machine: "Machine", kernel) -> None:
        self.machine = machine
        self.kernel = kernel
        self._procs = CpuMask(0)
        self._irqs = CpuMask(0)
        self._ltmr = CpuMask(0)
        self.enabled = True  # cleared on kernels without shield support

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def state(self) -> ShieldState:
        return ShieldState(self._procs, self._irqs, self._ltmr)

    @property
    def procs_mask(self) -> CpuMask:
        return self._procs

    @property
    def irqs_mask(self) -> CpuMask:
        return self._irqs

    @property
    def ltmr_mask(self) -> CpuMask:
        return self._ltmr

    # ------------------------------------------------------------------
    # Mask updates (the /proc/shield write path)
    # ------------------------------------------------------------------
    def set_masks(self, procs: Optional[CpuMask] = None,
                  irqs: Optional[CpuMask] = None,
                  ltmr: Optional[CpuMask] = None) -> None:
        """Update any subset of the masks and re-apply shielding."""
        if not self.enabled:
            raise InvalidMaskError(
                "this kernel was built without shielded-processor support")
        ncpus = self.machine.ncpus
        allcpus = CpuMask.all(ncpus)
        for mask in (procs, irqs, ltmr):
            if mask is not None and not mask.issubset(allcpus):
                raise InvalidMaskError(
                    f"shield mask {mask} references CPUs beyond 0..{ncpus - 1}")
        if procs is not None and procs == allcpus:
            raise InvalidMaskError(
                "cannot shield every CPU from processes: nothing could run")
        if procs is not None:
            self._procs = procs
        if irqs is not None:
            self._irqs = irqs
        if ltmr is not None:
            self._ltmr = ltmr
        sim = self.machine.sim
        tp = sim.tp
        if tp.enabled:
            tp.shield_update(sim.now, 0, self._procs.bits,
                             self._irqs.bits, self._ltmr.bits)
        self.reapply()

    def shield_cpu(self, cpu: int, procs: bool = True, irqs: bool = True,
                   ltmr: bool = True) -> None:
        """Convenience: add *cpu* to the selected masks."""
        one = CpuMask.single(cpu)
        self.set_masks(
            procs=(self._procs | one) if procs else None,
            irqs=(self._irqs | one) if irqs else None,
            ltmr=(self._ltmr | one) if ltmr else None,
        )

    def unshield_cpu(self, cpu: int) -> None:
        """Remove *cpu* from all three masks."""
        one = CpuMask.single(cpu)
        self.set_masks(procs=self._procs - one, irqs=self._irqs - one,
                       ltmr=self._ltmr - one)

    def clear(self) -> None:
        """Drop all shielding."""
        self.set_masks(procs=CpuMask(0), irqs=CpuMask(0), ltmr=CpuMask(0))

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def reapply(self) -> None:
        """Recompute every effective affinity and migrate/stop as needed.

        This is the "dynamically enabled" behaviour from the paper:
        modifying one of the /proc files immediately examines and
        modifies the affinity masks of all processes and interrupts.
        """
        for desc in self.machine.apic.irqs.values():
            desc.effective_affinity = effective_affinity(
                desc.requested_affinity, self._irqs)
        for task in self.kernel.iter_tasks():
            self.kernel.reapply_task_affinity(task)
        for cpu in self.machine.cpus:
            self.kernel.set_local_timer_enabled(
                cpu.index, cpu.index not in self._ltmr)

    def effective_task_affinity(self, requested: CpuMask) -> CpuMask:
        """Effective affinity of a task under the current procs mask."""
        return effective_affinity(requested, self._procs)

    def effective_irq_affinity(self, requested: CpuMask) -> CpuMask:
        """Effective affinity of an IRQ under the current irqs mask."""
        return effective_affinity(requested, self._irqs)

    def is_shielded(self, cpu: int) -> bool:
        """True if *cpu* appears in any shield mask."""
        return (cpu in self._procs) or (cpu in self._irqs) or (cpu in self._ltmr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Shield procs={self._procs.to_proc()} "
                f"irqs={self._irqs.to_proc()} ltmr={self._ltmr.to_proc()}>")
