"""CPU masks and the shielded-CPU affinity semantics.

A :class:`CpuMask` is an immutable set of CPU indices backed by an
integer bitmask, mirroring the kernel's ``cpumask_t``.  The function
:func:`effective_affinity` implements the interaction rule from the
paper (section 3):

    "In general, the CPUs that are shielded are removed from the CPU
    affinity of a process or interrupt.  The only processes or
    interrupts that are allowed to execute on a shielded CPU are
    processes or interrupts that would otherwise be precluded from
    running unless they are allowed to run on a shielded CPU.  In
    other words, to run on a shielded CPU, a process must set its CPU
    affinity such that it contains only shielded CPUs."
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.sim.errors import InvalidMaskError

MaskLike = Union["CpuMask", int, Iterable[int]]


class CpuMask:
    """Immutable set of CPU indices.

    Accepts an integer bitmask, an iterable of CPU indices, or another
    mask.  Supports the usual set algebra through operators.
    """

    __slots__ = ("bits",)

    def __init__(self, value: MaskLike = 0) -> None:
        if isinstance(value, CpuMask):
            bits = value.bits
        elif isinstance(value, int):
            if value < 0:
                raise InvalidMaskError(f"negative bitmask {value:#x}")
            bits = value
        else:
            bits = 0
            for cpu in value:
                if cpu < 0:
                    raise InvalidMaskError(f"negative cpu index {cpu}")
                bits |= 1 << cpu
        object.__setattr__(self, "bits", bits)

    # Immutability ------------------------------------------------------
    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("CpuMask is immutable")

    # Constructors ------------------------------------------------------
    @classmethod
    def all(cls, ncpus: int) -> "CpuMask":
        """Mask with CPUs 0..ncpus-1 set."""
        return cls((1 << ncpus) - 1)

    @classmethod
    def single(cls, cpu: int) -> "CpuMask":
        """Mask with exactly one CPU set."""
        return cls(1 << cpu)

    @classmethod
    def parse(cls, text: str) -> "CpuMask":
        """Parse the hex form used by ``/proc`` files (e.g. ``\"2\"``)."""
        return cls(int(text.strip(), 16))

    # Set algebra -------------------------------------------------------
    def __and__(self, other: MaskLike) -> "CpuMask":
        return CpuMask(self.bits & CpuMask(other).bits)

    def __or__(self, other: MaskLike) -> "CpuMask":
        return CpuMask(self.bits | CpuMask(other).bits)

    def __sub__(self, other: MaskLike) -> "CpuMask":
        return CpuMask(self.bits & ~CpuMask(other).bits)

    def __xor__(self, other: MaskLike) -> "CpuMask":
        return CpuMask(self.bits ^ CpuMask(other).bits)

    def issubset(self, other: MaskLike) -> bool:
        other_bits = CpuMask(other).bits
        return (self.bits & ~other_bits) == 0

    def intersects(self, other: MaskLike) -> bool:
        return (self.bits & CpuMask(other).bits) != 0

    def __contains__(self, cpu: int) -> bool:
        return bool(self.bits >> cpu & 1)

    # Queries -----------------------------------------------------------
    def __bool__(self) -> bool:
        return self.bits != 0

    def __len__(self) -> int:
        return self.bits.bit_count()

    def __iter__(self) -> Iterator[int]:
        bits = self.bits
        cpu = 0
        while bits:
            if bits & 1:
                yield cpu
            bits >>= 1
            cpu += 1

    def first(self) -> int:
        """Lowest CPU index in the mask (raises on empty mask)."""
        if not self.bits:
            raise InvalidMaskError("first() on empty mask")
        return (self.bits & -self.bits).bit_length() - 1

    def cpus(self) -> list:
        """CPU indices as a sorted list."""
        return list(self)

    # Identity ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, CpuMask):
            return self.bits == other.bits
        if isinstance(other, int):
            return self.bits == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("CpuMask", self.bits))

    def __repr__(self) -> str:
        return f"CpuMask({self.cpus()})"

    def to_proc(self) -> str:
        """Hex string as written to ``/proc`` affinity files."""
        return f"{self.bits:x}"


def effective_affinity(requested: CpuMask, shielded: CpuMask) -> CpuMask:
    """Apply the paper's shield-interaction rule to one affinity mask.

    * If the requested mask contains only shielded CPUs, it is honoured
      unchanged: the owner asked to run *on* the shield.
    * Otherwise all shielded CPUs are removed from the mask.
    * If removal would empty the mask entirely (impossible when the
      requested mask is non-empty, since the only-shielded case was
      handled above) the requested mask is returned as a safety net.

    Raises :class:`InvalidMaskError` for an empty requested mask, which
    has no meaning for either a process or an interrupt.
    """
    if not requested:
        raise InvalidMaskError("requested affinity mask is empty")
    if requested.issubset(shielded):
        return requested
    stripped = requested - shielded
    if not stripped:  # pragma: no cover - unreachable, kept as a guard
        return requested
    return stripped
