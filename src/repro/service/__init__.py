"""simserve: the asynchronous campaign service.

Three layers over the content-addressed result store:

* a **job queue + scheduler** (:mod:`repro.service.queue`,
  :mod:`repro.service.scheduler`) accepting campaign / margin /
  twin-diff / figure jobs as declarative specs, deduping them against
  the store by content key, sharding cache-miss cells across a
  process-pool with the campaign runner's adaptive chunking, and
  journaling job state so a killed server resumes on restart;
* an **HTTP API** (:mod:`repro.service.http`, stdlib asyncio only)
  serving submissions, status polling/streaming, artifact and report
  fetches, and store/queue health to any number of concurrent
  clients -- every artifact byte-identical to the direct CLI's;
* a **client + CLI** (:mod:`repro.service.client`, the ``serve`` /
  ``submit`` / ``status`` subcommands) used by tests and CI.

The correctness contract is byte-identity: a payload served over HTTP
equals the same artifact produced by the one-shot CLI, whatever the
worker count, scheduling order, or cache temperature.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    JOB_KINDS,
    Cell,
    CellOutcome,
    JobArtifact,
    JobError,
    JobSpec,
    expand_cells,
    fold_job,
    run_cell,
)
from repro.service.queue import (
    JOB_STATES,
    JobJournal,
    JobQueue,
    JobRecord,
    QueueFullError,
    UnknownJobError,
)
from repro.service.scheduler import Scheduler, ServiceDraining

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "Cell",
    "CellOutcome",
    "JobArtifact",
    "JobError",
    "JobJournal",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "QueueFullError",
    "Scheduler",
    "ServiceClient",
    "ServiceDraining",
    "ServiceError",
    "UnknownJobError",
    "expand_cells",
    "fold_job",
    "run_cell",
]
