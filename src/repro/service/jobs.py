"""Declarative service jobs and their store-backed cell model.

A :class:`JobSpec` is the wire format of one unit of service work --
a campaign, a shield-margin ladder, a storm twin-diff, or a single
figure export -- as plain JSON-able data.  Each job *expands* into
:class:`Cell`\\ s: independent, picklable work units (one scenario run
or one trace recording each) that carry their own content key into
the result store.  The scheduler dedupes cells against the store,
ships the misses to worker processes (:func:`run_cell` is the worker
entry point), and *folds* the ordered outcomes back into the job's
artifact with :func:`fold_job`.

The fold goes through exactly the code paths the one-shot CLI uses
(:func:`~repro.experiments.export.campaign_to_dict`,
:class:`~repro.faults.margin.MarginResult`,
:class:`~repro.faults.twindiff.TwinDiffResult`, ...), so the artifact
text is **byte-identical** to what ``python -m repro.experiments``
would have written to disk -- the service identity contract.

Job identity (:meth:`JobSpec.job_id`) is content-derived: the
canonical spec plus the code-tree digest.  Re-submitting the same
spec names the same job (idempotent submission); editing the source
tree names a new one, exactly like the store's cell keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.scenario import (
    ScenarioResult,
    ScenarioSpec,
    ShieldSpec,
    UnknownScenarioError,
    run_scenario,
    scenario,
)
from repro.sim.errors import SimulationStalledError
from repro.store.keys import code_version, digest_of, job_key, recording_key

#: The job kinds the service accepts.
JOB_KINDS = ("campaign", "figure", "margin", "twin-diff")

#: Default margin intensity ladder (mirrors the faults CLI default).
DEFAULT_INTENSITIES = (0.25, 0.5, 1.0, 2.0, 4.0)


class JobError(ValueError):
    """A job spec that cannot be accepted (unknown kind/scenario/...)."""


@dataclass(frozen=True)
class JobSpec:
    """One service job, as plain data (the POST /jobs body).

    Fields are a union over the kinds; each kind reads its own subset
    and :meth:`validate` rejects specs whose required fields are
    missing or name unknown registry entries.  ``priority`` and
    ``max_workers`` are scheduling hints: they never enter the job
    identity, so two clients racing to submit the same work at
    different priorities still dedupe onto one job.
    """

    kind: str
    # campaign
    scenarios: Tuple[str, ...] = ()
    seeds: Tuple[int, ...] = (1,)
    fault_plan: str = ""
    fault_intensity: Optional[float] = None
    # figure / margin / twin-diff
    scenario: str = ""
    seed: Optional[int] = None
    # margin / twin-diff
    plan: str = ""
    intensities: Tuple[float, ...] = DEFAULT_INTENSITIES
    bound_us: float = 1000.0
    # twin-diff
    intensity: float = 1.0
    capacity: int = 65536
    # shared knobs
    samples: Optional[int] = None
    iterations: Optional[int] = None
    # service hints (not part of the job identity)
    priority: int = 0
    max_workers: int = 0
    use_cache: bool = True

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "scenarios": list(self.scenarios),
            "seeds": list(self.seeds),
            "fault_plan": self.fault_plan,
            "fault_intensity": self.fault_intensity,
            "scenario": self.scenario,
            "seed": self.seed,
            "plan": self.plan,
            "intensities": list(self.intensities),
            "bound_us": self.bound_us,
            "intensity": self.intensity,
            "capacity": self.capacity,
            "samples": self.samples,
            "iterations": self.iterations,
            "priority": self.priority,
            "max_workers": self.max_workers,
            "use_cache": self.use_cache,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        if not isinstance(data, dict):
            raise JobError("job spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise JobError(f"unknown job field(s): {', '.join(unknown)}")
        if "kind" not in data:
            raise JobError(f"job spec needs a 'kind' "
                           f"(one of {', '.join(JOB_KINDS)})")
        out = dict(data)
        if "scenarios" in out:
            value = out["scenarios"]
            if isinstance(value, str):
                value = [n.strip() for n in value.split(",") if n.strip()]
            out["scenarios"] = tuple(str(n) for n in value)
        if "seeds" in out:
            value = out["seeds"]
            if isinstance(value, str):
                from repro.experiments.campaign import parse_seeds

                try:
                    value = parse_seeds(value)
                except ValueError as exc:
                    raise JobError(str(exc)) from None
            try:
                out["seeds"] = tuple(int(s) for s in value)
            except (TypeError, ValueError):
                raise JobError(f"malformed seeds {value!r}") from None
        if "intensities" in out:
            try:
                out["intensities"] = tuple(float(x)
                                           for x in out["intensities"])
            except (TypeError, ValueError):
                raise JobError(
                    f"malformed intensities {out['intensities']!r}"
                ) from None
        try:
            spec = cls(**out)
        except TypeError as exc:
            raise JobError(str(exc)) from None
        spec.validate()
        return spec

    # ------------------------------------------------------------------
    def identity(self) -> Dict[str, Any]:
        """The content identity: everything except scheduling hints."""
        data = self.to_dict()
        for hint in ("priority", "max_workers"):
            data.pop(hint)
        return data

    def job_id(self, code: Optional[str] = None) -> str:
        """Content-derived job name: same spec + same tree = same job."""
        return digest_of({
            "job": self.identity(),
            "code": code if code is not None else code_version(),
        })[:16]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Reject specs the scheduler could never run (raises JobError)."""
        if self.kind not in JOB_KINDS:
            raise JobError(f"unknown job kind {self.kind!r} "
                           f"(one of {', '.join(JOB_KINDS)})")
        try:
            if self.kind == "campaign":
                if not self.scenarios:
                    raise JobError("a campaign job needs 'scenarios'")
                if not self.seeds:
                    raise JobError("a campaign job needs 'seeds'")
                for name in self.scenarios:
                    scenario(name)
            else:
                if not self.scenario:
                    raise JobError(
                        f"a {self.kind} job needs 'scenario'")
                base = scenario(self.scenario)
                if self.kind in ("margin", "twin-diff"):
                    self._resolve_plan(base)
                if self.kind == "margin" and not self.intensities:
                    raise JobError("a margin job needs 'intensities'")
                if (self.kind == "twin-diff"
                        and not base.shield.any_component):
                    raise JobError(
                        f"scenario {self.scenario!r} runs unshielded; "
                        f"twin-diff needs a shielded baseline to strip")
        except UnknownScenarioError as exc:
            raise JobError(str(exc)) from None

    def _resolve_plan(self, base: ScenarioSpec) -> str:
        from repro.faults.plan import UnknownFaultPlanError, fault_plan
        from repro.faults.twindiff import resolve_plan_name

        name = resolve_plan_name(base, self.scenario, self.plan)
        try:
            return fault_plan(name).name
        except UnknownFaultPlanError as exc:
            raise JobError(str(exc)) from None


# ----------------------------------------------------------------------
# Cells: the independent, store-keyed work units of a job
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Cell:
    """One picklable work unit: a scenario run or a trace recording.

    ``op`` selects the worker behaviour and the store entry kind:

    * ``"scenario"`` -- run and persist a full result; a stall is an
      error (campaign semantics);
    * ``"margin"`` -- run, but a stall is a *data point* (the ladder's
      unbounded cell), persisted as a stalled marker;
    * ``"record"`` -- run traced and persist the RTRACE1 body.
    """

    index: int
    op: str
    spec: ScenarioSpec
    capacity: int = 0


@dataclass
class CellOutcome:
    """What came back for one cell (exactly one field set per op)."""

    index: int
    result: Optional[ScenarioResult] = None
    error: Optional[str] = None
    body: Optional[Dict[str, Any]] = None


def expand_cells(job: JobSpec) -> List[Cell]:
    """The job's deterministic cell list (validates as a side effect)."""
    job.validate()
    if job.kind == "campaign":
        spec = _campaign_spec(job)
        return [Cell(index=cj.index, op="scenario", spec=cj.spec)
                for cj in spec.expand()]
    if job.kind == "figure":
        spec = scenario(job.scenario).configured(
            samples=job.samples, iterations=job.iterations,
            seed=job.seed)
        return [Cell(index=0, op="scenario", spec=spec)]
    if job.kind == "margin":
        return [Cell(index=mj.index, op="margin", spec=mj.spec)
                for mj in _margin_spec(job).expand()]
    # twin-diff: the shielded recording then its unshielded twin.
    shielded, unshielded = _twin_specs(job)
    return [Cell(index=0, op="record", spec=shielded,
                 capacity=job.capacity),
            Cell(index=1, op="record", spec=unshielded,
                 capacity=job.capacity)]


def cell_key(cell: Cell, code: str) -> str:
    """The content-store key this cell's outcome lives under."""
    if cell.op == "record":
        return recording_key(cell.spec, cell.capacity, code=code)
    return job_key(cell.spec, code)


def load_cached(store: Any, cell: Cell, code: str
                ) -> Optional[CellOutcome]:
    """The cell's outcome from the store, or None on a miss.

    A stalled marker is a *hit* for margin cells (the ladder caches
    unbounded rungs) and a miss for scenario cells (the campaign
    recomputes, mirroring :class:`CampaignRunner`).
    """
    if cell.op == "record":
        body = store.get_recording(cell_key(cell, code))
        if body is None:
            return None
        return CellOutcome(index=cell.index, body=body)
    entry = store.get(cell_key(cell, code))
    if entry is None:
        return None
    if entry.stalled:
        if cell.op == "margin":
            return CellOutcome(index=cell.index, error=entry.error or "")
        return None
    return CellOutcome(index=cell.index, result=entry.result)


def persist(store: Any, cell: Cell, outcome: CellOutcome,
            code: str) -> None:
    """Write one computed outcome to the store (atomic, keyed)."""
    key = cell_key(cell, code)
    if cell.op == "record":
        store.put_recording(key, outcome.body, code=code)
    elif outcome.result is not None:
        store.put(key, outcome.result, code)
    else:
        store.put_stalled(key, cell.spec.name, outcome.error or "", code)


# ----------------------------------------------------------------------
# Worker entry points (module-level: must pickle under spawn)
# ----------------------------------------------------------------------
def run_cell(cell: Cell) -> CellOutcome:
    """Execute one cell in a worker process."""
    if cell.op == "record":
        from repro.observe.diff import record_scenario

        rec, _result = record_scenario(cell.spec, capacity=cell.capacity)
        return CellOutcome(index=cell.index, body=rec.to_body())
    if cell.op == "margin":
        try:
            result = run_scenario(cell.spec)
        except SimulationStalledError as exc:
            return CellOutcome(index=cell.index, error=str(exc))
        return CellOutcome(index=cell.index, result=result)
    return CellOutcome(index=cell.index, result=run_scenario(cell.spec))


def run_cells(cells: List[Cell]) -> List[CellOutcome]:
    """One worker chunk: several cells, one IPC round trip."""
    return [run_cell(cell) for cell in cells]


# ----------------------------------------------------------------------
# Folding: ordered outcomes -> the job's artifact
# ----------------------------------------------------------------------
@dataclass
class JobArtifact:
    """The finished job: exact CLI bytes plus the human report."""

    #: The artifact text, byte-for-byte what the CLI would have
    #: written with ``--json`` (trailing newline included).
    artifact: str
    #: The rendered human report (campaign summary, margin ladder,
    #: twin-diff blame table, figure bucket table).
    report: str
    stats: Dict[str, Any] = field(default_factory=dict)


def fold_job(job: JobSpec, outcomes: List[CellOutcome]) -> JobArtifact:
    """Fold ordered cell outcomes into the job artifact.

    *outcomes* must be complete and in cell-index order; the fold is
    pure, so re-folding the same outcomes (e.g. after a server
    restart re-loads every cell from the store) reproduces the same
    bytes.
    """
    from repro.experiments.export import to_json

    if job.kind == "campaign":
        return _fold_campaign(job, outcomes, to_json)
    if job.kind == "figure":
        return _fold_figure(job, outcomes, to_json)
    if job.kind == "margin":
        return _fold_margin(job, outcomes, to_json)
    return _fold_twin(job, outcomes, to_json)


def _artifact_text(to_json: Any, data: Dict[str, Any]) -> str:
    # The CLI writes ``to_json(...) + "\n"`` to its --json sinks; the
    # served artifact must be those bytes exactly.
    return to_json(data) + "\n"


def _fold_campaign(job: JobSpec, outcomes: List[CellOutcome],
                   to_json: Any) -> JobArtifact:
    from repro.experiments.campaign import CampaignResult
    from repro.experiments.export import campaign_to_dict

    spec = _campaign_spec(job)
    jobs = spec.expand()
    runs = []
    for outcome in outcomes:
        if outcome.result is None:
            raise JobError(
                f"campaign cell {outcome.index} has no result "
                f"({outcome.error or 'missing'})")
        runs.append(outcome.result)
    result = CampaignResult(campaign=spec, jobs=jobs, runs=runs)
    stats = {name: {"count": rec.count, "max_ns": int(rec.max())}
             for name, rec in sorted(result.merged.items())}
    return JobArtifact(
        artifact=_artifact_text(to_json, campaign_to_dict(result)),
        report=result.summary(),
        stats={"jobs": len(jobs), "merged": stats})


def _fold_figure(job: JobSpec, outcomes: List[CellOutcome],
                 to_json: Any) -> JobArtifact:
    from repro.experiments.export import scenario_to_dict

    result = outcomes[0].result
    if result is None:
        raise JobError(f"figure cell has no result "
                       f"({outcomes[0].error or 'missing'})")
    return JobArtifact(
        artifact=_artifact_text(to_json, scenario_to_dict(result)),
        report=result.report(),
        stats={"scenario": result.scenario, "seed": result.seed,
               "max_ns": int(result.recorder.max())})


def _fold_margin(job: JobSpec, outcomes: List[CellOutcome],
                 to_json: Any) -> JobArtifact:
    from repro.faults.margin import (
        MarginResult,
        cell_from_result,
        stalled_cell,
    )

    mspec = _margin_spec(job)
    jobs = mspec.expand()
    cells = []
    for outcome in outcomes:
        if outcome.result is not None:
            cells.append(cell_from_result(outcome.result))
        else:
            cells.append(stalled_cell(outcome.error or ""))
    result = MarginResult(spec=mspec, jobs=jobs, cells=cells)
    return JobArtifact(
        artifact=_artifact_text(to_json, result.to_dict()),
        report=result.summary(),
        stats={"margin": result.margin,
               "unshielded_degraded": result.unshielded_degraded})


def _fold_twin(job: JobSpec, outcomes: List[CellOutcome],
               to_json: Any) -> JobArtifact:
    from repro.faults.twindiff import TwinDiffResult, TwinDiffSpec
    from repro.observe.diff import TraceRecording, diff_recordings

    recs = []
    for outcome in outcomes:
        if outcome.body is None:
            raise JobError(
                f"twin-diff cell {outcome.index} has no recording "
                f"({outcome.error or 'missing'})")
        recs.append(TraceRecording.from_body(outcome.body))
    shielded, unshielded = recs
    diff = diff_recordings(shielded, unshielded,
                           a_label="shielded", b_label="unshielded")
    twin = TwinDiffSpec(scenario=job.scenario, plan=job.plan,
                        intensity=job.intensity, samples=job.samples,
                        iterations=job.iterations, seed=job.seed,
                        capacity=job.capacity)
    plan_name = job._resolve_plan(scenario(job.scenario))
    result = TwinDiffResult(spec=twin, shielded=shielded,
                            unshielded=unshielded, diff=diff,
                            details={"plan": plan_name})
    return JobArtifact(
        artifact=_artifact_text(to_json, result.to_dict()),
        report=result.summary(),
        stats={"shielded_within_bound": result.shielded_within_bound,
               "shielded_max_ns": shielded.max_latency_ns(),
               "unshielded_max_ns": unshielded.max_latency_ns()})


# ----------------------------------------------------------------------
# Spec builders (shared by expansion and fold: one source of truth)
# ----------------------------------------------------------------------
def _campaign_spec(job: JobSpec) -> Any:
    from repro.experiments.campaign import CampaignSpec

    return CampaignSpec(
        scenarios=tuple(job.scenarios), seeds=tuple(job.seeds),
        samples=job.samples, iterations=job.iterations,
        fault_plan=job.fault_plan,
        fault_intensity=job.fault_intensity)


def _margin_spec(job: JobSpec) -> Any:
    from repro.faults.margin import MarginSpec

    base = scenario(job.scenario)
    plan_name = job._resolve_plan(base)
    return MarginSpec(
        scenario=base.name, plan=plan_name,
        intensities=tuple(job.intensities),
        bound_ns=int(job.bound_us * 1_000),
        samples=job.samples, seed=job.seed)


def _twin_specs(job: JobSpec) -> Tuple[ScenarioSpec, ScenarioSpec]:
    base = scenario(job.scenario)
    plan_name = job._resolve_plan(base)
    spec = base.configured(samples=job.samples,
                           iterations=job.iterations, seed=job.seed,
                           fault_plan=plan_name,
                           fault_intensity=job.intensity)
    unshielded = spec.with_overrides(
        shield=ShieldSpec(cpu=spec.shield.cpu))
    return spec, unshielded


# Keep `replace` importable for callers tweaking specs functionally.
__all__ = [
    "JOB_KINDS",
    "Cell",
    "CellOutcome",
    "JobArtifact",
    "JobError",
    "JobSpec",
    "cell_key",
    "expand_cells",
    "fold_job",
    "load_cached",
    "persist",
    "replace",
    "run_cell",
    "run_cells",
]
