"""A small synchronous client for the simserve HTTP API.

Built on :mod:`http.client` (stdlib only, like the server).  Used by
the ``repro submit`` / ``repro status`` CLI, the identity tests, and
the service benchmark; one connection per request, matching the
server's ``Connection: close`` discipline.

Blocking waits go through the server's long-poll (``?wait=S``) rather
than a client-side sleep loop, so there is no wall-clock polling
anywhere in the stack: :meth:`ServiceClient.wait` just re-issues
bounded long-polls until the job leaves the live states.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Any, Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlsplit


class ServiceError(RuntimeError):
    """A non-2xx response, carrying the HTTP status and server text."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to one simserve instance at ``http://host:port``."""

    def __init__(self, address: str, timeout: float = 120.0) -> None:
        split = urlsplit(address if "//" in address
                         else f"http://{address}")
        if not split.hostname:
            raise ValueError(f"malformed server address {address!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 timeout: Optional[float] = None
                 ) -> Tuple[int, bytes]:
        conn = HTTPConnection(self.host, self.port,
                              timeout=timeout or self.timeout)
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            headers = ({"Content-Type": "application/json"}
                       if payload is not None else {})
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, data
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None,
              timeout: Optional[float] = None) -> Dict[str, Any]:
        status, data = self._request(method, path, body,
                                     timeout=timeout)
        try:
            decoded = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            decoded = {"error": data.decode("utf-8", "replace")}
        if status >= 400:
            raise ServiceError(status,
                               decoded.get("error", "unknown error"))
        return decoded

    # ------------------------------------------------------------------
    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """POST the job spec; returns its status (``created`` set)."""
        return self._json("POST", "/jobs", body=spec)

    def status(self, job_id: str,
               wait: Optional[float] = None) -> Dict[str, Any]:
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
            return self._json("GET", path, timeout=wait + 30.0)
        return self._json("GET", path)

    def wait(self, job_id: str, poll_s: float = 10.0,
             max_polls: int = 360) -> Dict[str, Any]:
        """Long-poll until the job finishes (or *max_polls* expire)."""
        status = self.status(job_id)
        for _ in range(max_polls):
            if status["state"] not in ("queued", "running"):
                return status
            status = self.status(job_id, wait=poll_s)
        raise ServiceError(
            408, f"job {job_id} still {status['state']} after "
            f"{max_polls} x {poll_s:g}s long-polls")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/jobs")["jobs"]

    def artifact(self, job_id: str) -> bytes:
        """The finished artifact: exact CLI ``--json`` bytes."""
        status, data = self._request("GET", f"/jobs/{job_id}/artifact")
        if status >= 400:
            raise ServiceError(status,
                               data.decode("utf-8", "replace").strip())
        return data

    def report(self, job_id: str) -> str:
        status, data = self._request("GET", f"/jobs/{job_id}/report")
        if status >= 400:
            raise ServiceError(status,
                               data.decode("utf-8", "replace").strip())
        return data.decode("utf-8")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def health(self) -> Dict[str, Any]:
        return self._json("GET", "/health")

    def stream(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield NDJSON status lines until the server's end sentinel.

        The server terminates the stream with ``{"stream_end":
        true}`` (not just EOF -- forked pool workers may hold the
        connection's fd open), so iteration stops on the sentinel or
        on socket close, whichever comes first.
        """
        conn = HTTPConnection(self.host, self.port,
                              timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/stream")
            response = conn.getresponse()
            if response.status >= 400:
                text = response.read().decode("utf-8", "replace")
                raise ServiceError(response.status, text.strip())
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    return
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if not line.strip():
                        continue
                    decoded = json.loads(line.decode("utf-8"))
                    if decoded.get("stream_end"):
                        return
                    yield decoded
        finally:
            conn.close()
