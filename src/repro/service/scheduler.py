"""The simserve scheduler: store-deduped, pooled, drainable.

One asyncio task (:meth:`Scheduler.run`) owns the dispatch loop: it
pops jobs off the :class:`~repro.service.queue.JobQueue` in priority
order, runs up to ``parallel_jobs`` of them concurrently, and for
each job

1. expands the spec into cells and looks every cell up in the result
   store by content key -- a **fully cached job folds straight to its
   artifact without ever creating the worker pool** (the pool is
   lazy, which is how warm re-submission provably spawns nothing);
2. shards the misses across a fork-context
   :class:`~concurrent.futures.ProcessPoolExecutor` using the
   campaign runner's adaptive chunking
   (``max(1, misses // (workers * 8))``), persisting each outcome to
   the store the moment its chunk lands;
3. folds the ordered outcomes through the same export code the
   one-shot CLI uses, so the artifact is byte-identical whatever the
   worker count, chunk order, or cache temperature.

:meth:`drain` is the graceful-shutdown half: no new jobs start, no
new chunks are submitted, in-flight chunks finish and persist, and
interrupted jobs go back to ``queued`` in the journal -- a restarted
server picks them up and completes them mostly from cache.  While
draining, submissions raise :class:`ServiceDraining` (HTTP 503).

Every externally visible change bumps :attr:`Scheduler.version` and
wakes :attr:`Scheduler.condition`, which is what status long-polls
and streams wait on.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.service.jobs import (
    Cell,
    CellOutcome,
    JobSpec,
    expand_cells,
    fold_job,
    load_cached,
    persist,
    run_cells,
)
from repro.service.queue import JobQueue, JobRecord
from repro.store.keys import code_version
from repro.store.store import ResultStore, open_store


class ServiceDraining(RuntimeError):
    """Submission refused: the server is shutting down (HTTP 503)."""


class Scheduler:
    """Owns the dispatch loop, the lazy worker pool, and the store."""

    def __init__(self, store: Any, queue: JobQueue,
                 workers: int = 2, parallel_jobs: int = 2) -> None:
        resolved: Optional[ResultStore] = open_store(store)
        if resolved is None:
            raise ValueError("the scheduler needs a result store")
        self.store: ResultStore = resolved
        self.queue = queue
        self.workers = max(1, workers)
        self.parallel_jobs = max(1, parallel_jobs)
        self.code = code_version()
        #: Bumped on every externally visible change; streams and
        #: long-polls wait for it to move.
        self.version = 0
        self.condition: asyncio.Condition = asyncio.Condition()
        self.cells_computed = 0
        self.cells_cached = 0
        self.jobs_finished = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._pool_created = False
        self._draining = False
        self._stopped = asyncio.Event()
        self._active: Dict[str, asyncio.Task] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def workers_spawned(self) -> bool:
        """True once the process pool was ever created (a miss ran).

        Stays true after drain tears the pool down: the question the
        identity tests ask is "did this server ever need a worker",
        not "is one alive right now".
        """
        return self._pool_created

    @property
    def draining(self) -> bool:
        return self._draining

    def health(self) -> Dict[str, Any]:
        return {
            "draining": self._draining,
            "workers": self.workers,
            "workers_spawned": self.workers_spawned,
            "cells_computed": self.cells_computed,
            "cells_cached": self.cells_cached,
            "jobs_finished": self.jobs_finished,
            "queue": self.queue.stats(),
            "store": self.store.stats(),
        }

    # ------------------------------------------------------------------
    # Submission (called from HTTP handlers / tests, same event loop)
    # ------------------------------------------------------------------
    async def submit(self, spec: JobSpec) -> Tuple[JobRecord, bool]:
        """Validate, dedupe, and enqueue one job.

        Raises :class:`~repro.service.jobs.JobError` on a bad spec
        (400), :class:`~repro.service.queue.QueueFullError` at
        capacity (429), :class:`ServiceDraining` during shutdown
        (503).  Returns ``(record, created)``.
        """
        if self._draining:
            raise ServiceDraining("server is draining; resubmit to "
                                  "the restarted server")
        spec.validate()
        record, created = self.queue.submit(spec,
                                            spec.job_id(self.code))
        if created:
            await self._bump()
        return record, created

    async def wait_for(self, job_id: str,
                       timeout: Optional[float] = None) -> JobRecord:
        """Block until the job leaves the live states (long-poll)."""
        record = self.queue.get(job_id)

        async def _wait() -> None:
            async with self.condition:
                await self.condition.wait_for(lambda: record.finished)

        if not record.finished:
            await asyncio.wait_for(_wait(), timeout=timeout)
        return record

    async def wait_version(self, version: int,
                           timeout: Optional[float] = None) -> int:
        """Block until :attr:`version` moves past *version* (stream)."""

        async def _wait() -> None:
            async with self.condition:
                await self.condition.wait_for(
                    lambda: self.version > version)

        if self.version <= version:
            await asyncio.wait_for(_wait(), timeout=timeout)
        return self.version

    async def _bump(self) -> None:
        async with self.condition:
            self.version += 1
            self.condition.notify_all()

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Dispatch until :meth:`drain` completes; then clean up."""
        try:
            while True:
                while (not self._draining
                       and len(self._active) < self.parallel_jobs):
                    record = self.queue.pop()
                    if record is None:
                        break
                    task = asyncio.create_task(
                        self._run_job(record),
                        name=f"job-{record.job_id}")
                    self._active[record.job_id] = task
                    task.add_done_callback(
                        lambda _t, jid=record.job_id:
                        self._job_slot_freed(jid))
                if self._draining and not self._active:
                    break
                async with self.condition:
                    await self.condition.wait_for(
                        lambda: self._draining
                        or (len(self._active) < self.parallel_jobs
                            and self._has_queued()))
                if self._draining and self._active:
                    await asyncio.gather(*self._active.values(),
                                         return_exceptions=True)
        finally:
            self._shutdown_pool()
            self._stopped.set()
            await self._bump()

    def _job_slot_freed(self, job_id: str) -> None:
        # Done-callback: the job task bumped *before* leaving
        # ``_active``, so re-notify now that the slot is really free
        # or the dispatch loop could sleep through a queued job.
        self._active.pop(job_id, None)
        asyncio.ensure_future(self._bump())

    def _has_queued(self) -> bool:
        return any(r.state == "queued" for r in self.queue.records())

    async def drain(self) -> None:
        """Graceful stop: finish in-flight chunks, requeue the rest."""
        self._draining = True
        await self._bump()
        await self._stopped.wait()

    def _shutdown_pool(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # One job
    # ------------------------------------------------------------------
    async def _run_job(self, record: JobRecord) -> None:
        try:
            interrupted = await self._execute(record)
            if interrupted:
                self.queue.requeue(record.job_id)
        except Exception:
            self.queue.fail(record.job_id,
                            traceback.format_exc(limit=8))
        finally:
            if record.finished:
                self.jobs_finished += 1
            await self._bump()

    async def _execute(self, record: JobRecord) -> bool:
        """Run one job; True if drain interrupted it mid-cells."""
        spec = record.spec
        cells = expand_cells(spec)
        outcomes: Dict[int, CellOutcome] = {}
        pending: List[Cell] = []
        for cell in cells:
            cached = (load_cached(self.store, cell, self.code)
                      if spec.use_cache else None)
            if cached is not None:
                outcomes[cell.index] = cached
            else:
                pending.append(cell)
        self.cells_cached += len(outcomes)
        self.queue.progress(record.job_id, cells_done=len(outcomes),
                            cells_total=len(cells),
                            cache_hits=len(outcomes))
        await self._bump()

        if pending:
            interrupted = await self._run_pending(record, spec, cells,
                                                  pending, outcomes)
            if interrupted:
                return True

        ordered = [outcomes[cell.index] for cell in cells]
        artifact = await asyncio.get_running_loop().run_in_executor(
            None, fold_job, spec, ordered)
        self.queue.finish(record.job_id, artifact)
        return False

    async def _run_pending(self, record: JobRecord, spec: JobSpec,
                           cells: List[Cell], pending: List[Cell],
                           outcomes: Dict[int, CellOutcome]) -> bool:
        """Shard the cache misses across the pool; True on drain."""
        workers = self.workers
        if spec.max_workers:
            workers = max(1, min(workers, spec.max_workers))
        chunksize = max(1, len(pending) // (workers * 8))
        chunks = [pending[i:i + chunksize]
                  for i in range(0, len(pending), chunksize)]
        executor = self._ensure_pool()
        loop = asyncio.get_running_loop()
        in_flight: Dict[asyncio.Future, List[Cell]] = {}
        next_chunk = 0
        interrupted = False
        while next_chunk < len(chunks) or in_flight:
            if self._draining:
                interrupted = True  # let in-flight land, submit no more
            while (not interrupted and next_chunk < len(chunks)
                   and len(in_flight) < workers * 2):
                chunk = chunks[next_chunk]
                next_chunk += 1
                future = asyncio.ensure_future(asyncio.wrap_future(
                    executor.submit(run_cells, chunk), loop=loop))
                in_flight[future] = chunk
            if not in_flight:
                break
            done, _ = await asyncio.wait(
                in_flight, return_when=asyncio.FIRST_COMPLETED)
            for future in done:
                chunk = in_flight.pop(future)
                results = future.result()  # raises job-failing errors
                for cell, outcome in zip(chunk, results):
                    persist(self.store, cell, outcome, self.code)
                    outcomes[cell.index] = outcome
                    self.cells_computed += 1
                self.queue.progress(
                    record.job_id, cells_done=len(outcomes),
                    cells_total=len(cells),
                    cache_hits=record.cache_hits)
                await self._bump()
        return interrupted and len(outcomes) < len(cells)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Create the worker pool on first cache miss (lazy)."""
        if self._executor is None:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                ctx = multiprocessing.get_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx)
            self._pool_created = True
        return self._executor
