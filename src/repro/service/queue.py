"""The service's job queue: bounded, prioritised, journaled.

:class:`JobQueue` holds :class:`JobRecord`\\ s through the job state
machine ``queued -> running -> done | failed`` (plus ``cancelled``
from either live state).  Admission is **idempotent by job id** --
re-submitting a spec that is already queued, running, or finished
returns the existing record instead of a duplicate -- and **bounded**:
once ``capacity`` jobs are live (queued + running), further *new*
submissions raise :class:`QueueFullError`, which the HTTP layer maps
to 429 back-pressure.

Dispatch order is priority-major (higher first), FIFO within a
priority -- a plain heap on ``(-priority, seq)``.

Every state change is journaled through :class:`JobJournal` -- one
atomically-replaced JSON file per job under
``<store_root>/service/jobs/`` with the finished artifact embedded --
so a killed server :meth:`recovers <JobQueue.recover>` on restart:
finished jobs come back with their artifacts, and jobs that were
queued or mid-run come back ``queued`` (their completed cells are in
the result store, so re-running them is mostly cache hits).
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.service.jobs import JobArtifact, JobSpec

#: The job state machine's states.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States in which a job still owns a queue slot.
LIVE_STATES = ("queued", "running")


class QueueFullError(RuntimeError):
    """Admission refused: the queue is at capacity (HTTP 429)."""


class UnknownJobError(KeyError):
    """Lookup of a job id the queue has never seen (HTTP 404)."""


@dataclass
class JobRecord:
    """One job's lifecycle, from submission to artifact."""

    job_id: str
    spec: JobSpec
    state: str = "queued"
    seq: int = 0
    cells_total: int = 0
    cells_done: int = 0
    cache_hits: int = 0
    resumes: int = 0
    error: str = ""
    artifact: Optional[JobArtifact] = None

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def status(self) -> Dict[str, Any]:
        """The wire status object (artifact text not included)."""
        out: Dict[str, Any] = {
            "id": self.job_id,
            "kind": self.spec.kind,
            "state": self.state,
            "priority": self.spec.priority,
            "cells_total": self.cells_total,
            "cells_done": self.cells_done,
            "cache_hits": self.cache_hits,
        }
        if self.resumes:
            out["resumes"] = self.resumes
        if self.error:
            out["error"] = self.error
        if self.artifact is not None:
            out["stats"] = dict(self.artifact.stats)
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "id": self.job_id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "seq": self.seq,
            "cells_total": self.cells_total,
            "cells_done": self.cells_done,
            "cache_hits": self.cache_hits,
            "resumes": self.resumes,
            "error": self.error,
        }
        if self.artifact is not None:
            data["artifact"] = {
                "artifact": self.artifact.artifact,
                "report": self.artifact.report,
                "stats": self.artifact.stats,
            }
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        artifact = None
        if data.get("artifact") is not None:
            blob = data["artifact"]
            artifact = JobArtifact(artifact=blob["artifact"],
                                   report=blob["report"],
                                   stats=dict(blob.get("stats", {})))
        return cls(job_id=data["id"],
                   spec=JobSpec.from_dict(data["spec"]),
                   state=data.get("state", "queued"),
                   seq=int(data.get("seq", 0)),
                   cells_total=int(data.get("cells_total", 0)),
                   cells_done=int(data.get("cells_done", 0)),
                   cache_hits=int(data.get("cache_hits", 0)),
                   resumes=int(data.get("resumes", 0)),
                   error=data.get("error", ""),
                   artifact=artifact)


# ----------------------------------------------------------------------
class JobJournal:
    """Atomic per-job JSON files: the queue's crash-safe memory."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._tmp_seq = itertools.count()

    def path_for(self, job_id: str) -> str:
        return os.path.join(self.root, f"{job_id}.json")

    def save(self, record: JobRecord) -> None:
        path = self.path_for(record.job_id)
        tmp = f"{path}.{os.getpid()}.{next(self._tmp_seq)}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record.to_dict(), fh, sort_keys=True)
        os.replace(tmp, path)

    def delete(self, job_id: str) -> None:
        try:
            os.remove(self.path_for(job_id))
        except OSError:
            pass

    def load_all(self) -> List[JobRecord]:
        """Every decodable journaled record, in submission order."""
        records = []
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                with open(path, encoding="utf-8") as fh:
                    records.append(JobRecord.from_dict(json.load(fh)))
            except (OSError, ValueError, KeyError):
                continue  # torn/corrupt journal: the job is just lost
        records.sort(key=lambda r: r.seq)
        return records


# ----------------------------------------------------------------------
class JobQueue:
    """Bounded priority admission + the job state machine."""

    def __init__(self, capacity: int = 64,
                 journal: Optional[JobJournal] = None) -> None:
        self.capacity = capacity
        self.journal = journal
        self._records: Dict[str, JobRecord] = {}
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = itertools.count(1)

    # ------------------------------------------------------------------
    def recover(self) -> List[JobRecord]:
        """Reload journaled jobs; interrupted ones re-queue.

        Returns the records that went back to ``queued`` (so the
        caller can log/kick the scheduler).
        """
        if self.journal is None:
            return []
        requeued = []
        top = 0
        for record in self.journal.load_all():
            self._records[record.job_id] = record
            top = max(top, record.seq)
            if record.state in LIVE_STATES:
                if record.state == "running":
                    record.state = "queued"
                    record.resumes += 1
                    self.journal.save(record)
                self._push(record)
                requeued.append(record)
        self._seq = itertools.count(top + 1)
        return requeued

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec, job_id: str
               ) -> Tuple[JobRecord, bool]:
        """Admit a job; idempotent on *job_id*.

        Returns ``(record, created)``.  A known id returns its
        existing record untouched (same spec + same code = same work,
        whatever its state); a new one must fit under ``capacity``
        live jobs or :class:`QueueFullError` is raised.
        """
        existing = self._records.get(job_id)
        if existing is not None:
            return existing, False
        if self.live_count() >= self.capacity:
            raise QueueFullError(
                f"queue full ({self.live_count()}/{self.capacity} "
                f"jobs live); retry after one finishes")
        record = JobRecord(job_id=job_id, spec=spec,
                           seq=next(self._seq))
        self._records[job_id] = record
        self._push(record)
        self._save(record)
        return record, True

    def _push(self, record: JobRecord) -> None:
        heapq.heappush(self._heap,
                       (-record.spec.priority, record.seq,
                        record.job_id))

    # ------------------------------------------------------------------
    def pop(self) -> Optional[JobRecord]:
        """The next queued job (highest priority, FIFO), now running."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            record = self._records.get(job_id)
            if record is not None and record.state == "queued":
                record.state = "running"
                self._save(record)
                return record
        return None

    def requeue(self, job_id: str) -> None:
        """Put an interrupted running job back in line (drain path)."""
        record = self.get(job_id)
        if record.state == "running":
            record.state = "queued"
            record.resumes += 1
            self._push(record)
            self._save(record)

    def finish(self, job_id: str, artifact: JobArtifact) -> JobRecord:
        record = self.get(job_id)
        record.state = "done"
        record.artifact = artifact
        record.error = ""
        self._save(record)
        return record

    def fail(self, job_id: str, error: str) -> JobRecord:
        record = self.get(job_id)
        record.state = "failed"
        record.error = error
        self._save(record)
        return record

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job (running jobs finish their chunks)."""
        record = self.get(job_id)
        if record.state == "queued":
            record.state = "cancelled"
            self._save(record)
        return record

    def progress(self, job_id: str, cells_done: int,
                 cells_total: int, cache_hits: int) -> JobRecord:
        record = self.get(job_id)
        record.cells_done = cells_done
        record.cells_total = cells_total
        record.cache_hits = cache_hits
        self._save(record)
        return record

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def records(self) -> List[JobRecord]:
        """All known jobs in submission order."""
        return sorted(self._records.values(), key=lambda r: r.seq)

    def live_count(self) -> int:
        return sum(1 for r in self._records.values()
                   if r.state in LIVE_STATES)

    def stats(self) -> Dict[str, Any]:
        by_state = {state: 0 for state in JOB_STATES}
        for record in self._records.values():
            by_state[record.state] += 1
        return {"capacity": self.capacity,
                "live": self.live_count(),
                "by_state": by_state}

    def _save(self, record: JobRecord) -> None:
        if self.journal is not None:
            self.journal.save(record)
