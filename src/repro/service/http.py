"""simserve's HTTP face: a tiny asyncio HTTP/1.1 server, stdlib only.

No web framework: :func:`asyncio.start_server` plus a hand-rolled
request parser is all the protocol this API needs (small JSON bodies,
one request per connection, ``Connection: close``).  The routes:

========  ==============================  ===============================
POST      /jobs                           submit a job spec (JSON body)
GET       /jobs                           list all job statuses
GET       /jobs/<id>                      one status; ``?wait=S`` long-polls
GET       /jobs/<id>/artifact             the artifact, **exact CLI bytes**
GET       /jobs/<id>/report               the human report (text/plain)
GET       /jobs/<id>/stream               NDJSON status stream until done
POST      /jobs/<id>/cancel               cancel a queued job
GET       /health                         queue + store + pool health
========  ==============================  ===============================

Error mapping: bad spec -> 400, unknown job -> 404, artifact of an
unfinished job -> 409, queue full -> 429 (back-pressure), draining ->
503.  All error bodies are ``{"error": ...}`` JSON.

The artifact route serves :attr:`JobArtifact.artifact` verbatim --
the same ``to_json(...) + "\\n"`` text the one-shot CLI writes to its
``--json`` files -- which is what the byte-identity tests ``cmp``
against CLI output.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.jobs import JobError, JobSpec
from repro.service.queue import QueueFullError, UnknownJobError
from repro.service.scheduler import Scheduler, ServiceDraining

#: Upper bound on one request (headers + body); jobs specs are tiny.
MAX_REQUEST_BYTES = 1 << 20
#: Longest server-side long-poll before the client must re-ask.
MAX_WAIT_S = 60.0

_REASONS = {200: "OK", 201: "Created", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


class HttpError(Exception):
    """A request that maps to a non-200 response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _response(status: int, body: bytes, content_type: str) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("ascii") + body


def _json_response(status: int, data: Any) -> bytes:
    body = (json.dumps(data, sort_keys=True) + "\n").encode("utf-8")
    return _response(status, body, "application/json")


class ServiceServer:
    """The HTTP front end over one :class:`Scheduler`."""

    def __init__(self, scheduler: Scheduler,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            await self._route(method, path, query, body, writer)
        except HttpError as exc:
            writer.write(_json_response(exc.status,
                                        {"error": exc.message}))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # pragma: no cover - defensive
            try:
                writer.write(_json_response(500, {"error": str(exc)}))
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.IncompleteReadError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str,
                                                Dict[str, str], bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        except asyncio.LimitOverrunError:
            raise HttpError(413, "request head too large") from None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise HttpError(400, f"malformed request line "
                            f"{lines[0]!r}") from None
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, value = line.split(":", 1)
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_REQUEST_BYTES:
            raise HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {name: values[-1] for name, values
                 in parse_qs(split.query).items()}
        return method.upper(), split.path, query, body

    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str,
                     query: Dict[str, str], body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        parts = [p for p in path.split("/") if p]
        if parts == ["health"] and method == "GET":
            writer.write(_json_response(200, self.scheduler.health()))
            return
        if parts == ["jobs"]:
            if method == "POST":
                writer.write(await self._submit(body))
                return
            if method == "GET":
                statuses = [r.status()
                            for r in self.scheduler.queue.records()]
                writer.write(_json_response(200, {"jobs": statuses}))
                return
            raise HttpError(405, f"{method} not allowed on /jobs")
        if len(parts) >= 2 and parts[0] == "jobs":
            await self._job_route(method, parts[1], parts[2:], query,
                                  writer)
            return
        raise HttpError(404, f"no route for {path}")

    async def _submit(self, body: bytes) -> bytes:
        try:
            data = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise HttpError(400, "body is not valid JSON") from None
        try:
            spec = JobSpec.from_dict(data)
            record, created = await self.scheduler.submit(spec)
        except JobError as exc:
            raise HttpError(400, str(exc)) from None
        except QueueFullError as exc:
            raise HttpError(429, str(exc)) from None
        except ServiceDraining as exc:
            raise HttpError(503, str(exc)) from None
        status = record.status()
        status["created"] = created
        return _json_response(201 if created else 200, status)

    async def _job_route(self, method: str, job_id: str, rest: list,
                         query: Dict[str, str],
                         writer: asyncio.StreamWriter) -> None:
        try:
            record = self.scheduler.queue.get(job_id)
        except UnknownJobError:
            raise HttpError(404, f"unknown job {job_id!r}") from None
        if not rest and method == "GET":
            if "wait" in query:
                timeout = min(float(query["wait"]), MAX_WAIT_S)
                try:
                    record = await self.scheduler.wait_for(
                        job_id, timeout=timeout)
                except asyncio.TimeoutError:
                    pass  # long-poll expired: report where we are
            writer.write(_json_response(200, record.status()))
            return
        if rest == ["artifact"] and method == "GET":
            if record.state != "done" or record.artifact is None:
                raise HttpError(
                    409, f"job {job_id} is {record.state}, not done")
            writer.write(_response(
                200, record.artifact.artifact.encode("utf-8"),
                "application/json"))
            return
        if rest == ["report"] and method == "GET":
            if record.state != "done" or record.artifact is None:
                raise HttpError(
                    409, f"job {job_id} is {record.state}, not done")
            writer.write(_response(
                200, record.artifact.report.encode("utf-8"),
                "text/plain; charset=utf-8"))
            return
        if rest == ["stream"] and method == "GET":
            await self._stream(record, writer)
            return
        if rest == ["cancel"] and method == "POST":
            record = self.scheduler.queue.cancel(job_id)
            await self.scheduler._bump()
            writer.write(_json_response(200, record.status()))
            return
        raise HttpError(404,
                        f"no route for /jobs/{job_id}/{'/'.join(rest)}")

    async def _stream(self, record: Any,
                      writer: asyncio.StreamWriter) -> None:
        """NDJSON status lines until the job finishes (or we drain).

        The stream ends with an explicit ``{"stream_end": true}``
        sentinel rather than relying on EOF: lazily forked pool
        workers inherit this connection's fd, so the client may not
        see a FIN when we close our copy -- the sentinel makes the
        protocol self-terminating regardless.
        """
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("ascii"))
        while True:
            version = self.scheduler.version
            line = json.dumps(record.status(), sort_keys=True) + "\n"
            writer.write(line.encode("utf-8"))
            await writer.drain()
            if record.finished or self.scheduler.draining:
                break
            try:
                await self.scheduler.wait_version(version, timeout=10.0)
            except asyncio.TimeoutError:
                pass  # heartbeat: re-emit the unchanged status
        writer.write(b'{"stream_end": true}\n')
        await writer.drain()


# ----------------------------------------------------------------------
# Serving loop (the `repro serve` entry) and the in-thread test rig
# ----------------------------------------------------------------------
async def serve(store_root: str, host: str = "127.0.0.1",
                port: int = 0, workers: int = 2, capacity: int = 64,
                parallel_jobs: int = 2,
                announce: Optional[Callable[[str], None]] = None,
                drain_signals: bool = True,
                ready: Optional[Callable[["ServiceServer",
                                          Scheduler], None]] = None
                ) -> int:
    """Run the whole stack until drained; returns the exit code.

    Builds store + journal + queue + scheduler + HTTP server,
    recovers journaled jobs, and serves until SIGTERM/SIGINT (or a
    programmatic :meth:`Scheduler.drain`).  Shutdown is graceful:
    in-flight chunks land and persist, interrupted jobs are
    re-journaled as queued, and *announce* is told how to resume.
    """
    from repro.service.queue import JobJournal, JobQueue
    from repro.store.store import ResultStore
    import os

    say = announce or (lambda _msg: None)
    store = ResultStore(store_root)
    journal = JobJournal(os.path.join(store_root, "service", "jobs"))
    queue = JobQueue(capacity=capacity, journal=journal)
    recovered = queue.recover()
    scheduler = Scheduler(store, queue, workers=workers,
                          parallel_jobs=parallel_jobs)
    server = ServiceServer(scheduler, host=host, port=port)
    await server.start()
    if recovered:
        say(f"recovered {len(recovered)} unfinished job(s) "
            f"from the journal")
    say(f"simserve listening on {server.address} "
        f"(store {store_root}, {workers} workers, "
        f"capacity {capacity})")

    loop = asyncio.get_running_loop()
    if drain_signals:
        import signal

        def _request_drain(signame: str) -> None:
            say(f"{signame}: draining (in-flight chunks will land; "
                f"resume with: repro serve --store {store_root})")
            asyncio.ensure_future(scheduler.drain())

        for signame in ("SIGTERM", "SIGINT"):
            try:
                loop.add_signal_handler(
                    getattr(signal, signame),
                    _request_drain, signame)
            except (NotImplementedError, RuntimeError,
                    ValueError):  # pragma: no cover - non-POSIX
                pass
    if ready is not None:
        ready(server, scheduler)

    run_task = asyncio.ensure_future(scheduler.run())
    try:
        await run_task
    finally:
        await server.stop()
    leftover = [r for r in queue.records() if not r.finished]
    if leftover:
        say(f"drained with {len(leftover)} job(s) still queued; "
            f"they will resume on restart")
    say("simserve stopped")
    return 0


class ServerThread:
    """Run the full service on a private loop in a daemon thread.

    The test rig and the CLI's self-hosted submissions use this:
    ``with ServerThread(store_root) as address: ...`` serves on an
    ephemeral port and drains cleanly on exit.
    """

    def __init__(self, store_root: str, workers: int = 2,
                 capacity: int = 64, parallel_jobs: int = 2) -> None:
        self.store_root = store_root
        self.workers = workers
        self.capacity = capacity
        self.parallel_jobs = parallel_jobs
        self.address = ""
        self.scheduler: Optional[Scheduler] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[Any] = None
        self._ready: Optional[Any] = None

    def start(self) -> str:
        import threading

        self._ready = threading.Event()

        def _main() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            def _on_ready(server: ServiceServer,
                          scheduler: Scheduler) -> None:
                self.address = server.address
                self.scheduler = scheduler
                self._ready.set()

            try:
                loop.run_until_complete(serve(
                    self.store_root, workers=self.workers,
                    capacity=self.capacity,
                    parallel_jobs=self.parallel_jobs,
                    drain_signals=False, ready=_on_ready))
            finally:
                loop.close()
                self._ready.set()  # unblock start() on crash

        self._thread = threading.Thread(
            target=_main, name="simserve", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if not self.address:
            raise RuntimeError("simserve thread failed to start")
        return self.address

    def stop(self) -> None:
        if self._loop is not None and self.scheduler is not None:
            future = asyncio.run_coroutine_threadsafe(
                self.scheduler.drain(), self._loop)
            future.result(timeout=60.0)
        if self._thread is not None:
            self._thread.join(timeout=60.0)

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()
