"""Workload plumbing: specs and spawning."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, TYPE_CHECKING

from repro.kernel.syscalls import UserApi
from repro.kernel.task import SchedPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.affinity import CpuMask
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task

#: A body factory receives a fresh UserApi and returns the generator.
BodyFactory = Callable[[UserApi], Generator]


@dataclass
class WorkloadSpec:
    """Everything needed to start one workload process."""

    name: str
    body: BodyFactory
    policy: SchedPolicy = SchedPolicy.OTHER
    rt_prio: int = 0
    nice: int = 0
    affinity: Optional["CpuMask"] = None


def spawn(kernel: "Kernel", spec: WorkloadSpec) -> "Task":
    """Create the task for one workload spec."""
    api = UserApi(kernel)
    return kernel.create_task(
        spec.name, spec.body(api), policy=spec.policy,
        rt_prio=spec.rt_prio, nice=spec.nice, affinity=spec.affinity)


def spawn_all(kernel: "Kernel", specs: List[WorkloadSpec]) -> List["Task"]:
    return [spawn(kernel, spec) for spec in specs]
