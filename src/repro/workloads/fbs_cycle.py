"""Frequency-based-scheduling frame-jitter measurement program.

A single high-rate FBS process ("servo") runs every minor cycle and
records the absolute deviation of each wakeup from its nominal cycle
time.  On a shielded CPU the frame structure holds with microsecond
wakeup jitter and zero overruns; unshielded, jitter grows by orders of
magnitude and frames overrun.

Unlike the sample-counting measurement programs, this one runs for a
fixed simulated duration, so it drives the bench itself through
:meth:`FbsCycleTest.drive`.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from repro.fbs import FrequencyBasedScheduler
from repro.kernel.syscalls import UserApi
from repro.kernel.task import SchedPolicy
from repro.metrics.recorder import LatencyRecorder
from repro.sim.simtime import MSEC, SEC, USEC
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.affinity import CpuMask
    from repro.experiments.harness import Bench

#: Settle time between boot and starting the cyclic schedule.
SETTLE_NS = 2 * MSEC


class FbsCycleTest:
    """One FBS servo process timed against its nominal cycle."""

    def __init__(self, bench: "Bench",
                 duration_ns: int = 3 * SEC,
                 cycle_ns: int = 2_500 * USEC,
                 cycles_per_frame: int = 20,
                 compute_ns: int = 600 * USEC,
                 rt_prio: int = 80,
                 affinity: Optional["CpuMask"] = None,
                 name: str = "servo") -> None:
        self.bench = bench
        self.duration_ns = duration_ns
        self.cycle_ns = cycle_ns
        self.compute_ns = compute_ns
        self.rt_prio = rt_prio
        self.affinity = affinity
        self.name = name
        self.fbs = FrequencyBasedScheduler(bench.kernel, cycle_ns=cycle_ns,
                                           cycles_per_frame=cycles_per_frame,
                                           rcim=bench.rcim)
        self.proc = self.fbs.register(name, period=1)
        #: Absolute wakeup deviation from the nominal cycle time (ns).
        self.recorder = LatencyRecorder(name,
                                        capacity=duration_ns // cycle_ns + 1)
        self.finished = False

    def spec(self) -> WorkloadSpec:
        return WorkloadSpec(name=self.name, body=self._body,
                            policy=SchedPolicy.FIFO, rt_prio=self.rt_prio,
                            affinity=self.affinity)

    def _body(self, api: UserApi) -> Generator:
        yield from api.mlockall()
        yield from api.sched_setscheduler(SchedPolicy.FIFO, self.rt_prio)
        if self.affinity is not None:
            yield from api.sched_setaffinity(self.affinity)
        expected = None
        while True:
            yield from self.fbs.wait(api, self.proc)
            now = self.bench.sim.now
            if expected is not None:
                self.recorder.record_latency(abs(now - expected))
            expected = now + self.cycle_ns
            yield from api.compute(self.compute_ns, label=self.name)

    # ------------------------------------------------------------------
    def drive(self, bench: "Bench") -> None:
        """Run the fixed-duration schedule (scenario-runner hook)."""
        bench.run_for(SETTLE_NS)
        self.fbs.start()
        bench.run_for(self.duration_ns)
        self.finished = True

    def stats(self):
        """The monitor's cycle statistics for the servo process."""
        return self.fbs.monitor.stats_for(self.name)

    def estimated_sim_ns(self) -> int:
        return self.duration_ns + SETTLE_NS
