"""Network loads: the scp copy loop and ttcp over Ethernet.

The determinism experiments use a shell loop on a foreign machine that
repeatedly scp's a compressed kernel image to the test system; the
second interrupt-response experiment adds ttcp reading and writing
across a 10BaseT connection.  Both decompose into:

* a receive *flow* on the NIC (hardware interrupt + NET_RX softirq
  traffic), and
* a receiving process (sshd/scp or the ttcp sink) that wakes per
  burst, does protocol/decryption work in user mode, and writes to
  disk (scp) or discards (ttcp).
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.hw.devices.nic import TrafficFlow
from repro.kernel import ops as op
from repro.kernel.syscalls import UserApi
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.devices.nic import EthernetNic
    from repro.kernel.kernel import Kernel


def scp_copy_loop(kernel: "Kernel", nic: "EthernetNic",
                  packets_per_sec: float = 9500.0,
                  burst_mean: float = 6.0) -> WorkloadSpec:
    """The ``while true; do scp bzImage wahoo:/tmp; done`` load.

    A saturated ~100 Mb/s link is ~8300 full-size frames per second.
    The sshd/scp receiver decrypts (substantial user CPU on 2003-era
    hardware) and writes out the file (disk I/O).
    """
    net = kernel.drivers["net"]
    sock = net.socket("scp")
    nic.add_flow(TrafficFlow("scp", packets_per_sec, burst_mean))
    # Route every 2nd burst's payload to the scp process; the rest is
    # protocol-level work absorbed by the softirq alone (ack traffic,
    # retransmits, in-kernel buffering).
    _wire_flow_to_socket(kernel, nic, sock, deliver_every=2)

    def body(api: UserApi) -> Generator:
        disk = kernel.drivers.get("/dev/sda")
        while True:
            # Wait for a chunk of ciphertext.
            if not sock.has_data:
                yield from api.pipe_wait(sock.wq)
            packets = 0
            while sock.has_data:
                packets += sock.take()
            packets = max(packets, 1)
            # ssh 3DES/blowfish decryption: tens of microseconds of
            # user CPU per 1.5 KB frame on a 1.4 GHz P4.
            yield from api.compute(packets * 115_000, label="scp:decrypt")

            def writeout() -> Generator:
                yield from api.kernel_section(
                    api.timing.sample("fs.lock_section", api.rng),
                    lock=kernel.locks.file_lock, label="scp:write")
                if disk is not None and packets >= 16:
                    yield from disk.submit_and_wait(api, sectors=packets)

            yield from api.syscall("write", writeout())

    return WorkloadSpec(name="scp-recv", body=body)


def ttcp_ethernet(kernel: "Kernel", nic: "EthernetNic",
                  packets_per_sec: float = 800.0,
                  burst_mean: float = 4.0) -> WorkloadSpec:
    """ttcp reading and writing across 10BaseT (Figure 7's load).

    10 Mb/s of full-size frames is ~800 packets/s inbound; the
    benchmark echoes data back, generating transmit completions.
    """
    net = kernel.drivers["net"]
    sock = net.socket("ttcp-eth")
    nic.add_flow(TrafficFlow("ttcp-eth", packets_per_sec, burst_mean))
    _wire_flow_to_socket(kernel, nic, sock, deliver_every=2)

    def body(api: UserApi) -> Generator:
        while True:
            if not sock.has_data:
                yield from api.pipe_wait(sock.wq)
            packets = 0
            while sock.has_data:
                packets += sock.take()
            packets = max(packets, 1)
            yield from api.compute(packets * 2_000, label="ttcp:sink")

            def echo() -> Generator:
                cost = packets * api.timing.sample("net.tx_per_packet",
                                                   api.rng)
                yield op.Compute(cost, kernel=True, label="ttcp:tx")
                yield op.Call(nic.inject_tx, (packets,))

            yield from api.syscall("sendmsg", echo())

    return WorkloadSpec(name="ttcp-eth", body=body)


def _wire_flow_to_socket(kernel: "Kernel", nic: "EthernetNic", sock,
                         deliver_every: int) -> None:
    """Patch the NIC handler so every Nth burst wakes *sock*'s owner.

    The NetDriver's default handler raises anonymous NET_RX work; this
    hook additionally routes some bursts' payload to a socket so the
    receiving process participates, without double-charging softirq
    time.
    """
    net = kernel.drivers["net"]
    counter = {"n": 0}
    original_action = kernel._irq_table[nic.irq][1]
    cost_key = kernel._irq_table[nic.irq][0]

    def action(cpu_idx: int) -> None:
        counter["n"] += 1
        if counter["n"] % deliver_every == 0:
            packets = max(1, nic.last_rx_count)
            net._queue_rx_work(cpu_idx, packets, sock, from_irq=True)
        else:
            original_action(cpu_idx)

    kernel.register_irq_handler(nic.irq, cost_key, action)
