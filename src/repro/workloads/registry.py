"""By-name factories for background loads and measurement programs.

The declarative scenario layer (:mod:`repro.experiments.scenario`)
refers to workloads and measurement programs by *name* so that a
:class:`~repro.experiments.scenario.ScenarioSpec` stays plain picklable
data: campaign workers rebuild everything from the registry inside the
worker process.

Background loads
    A :class:`LoadEntry` applies one named load to a bench.  Loads in
    the ``pre-start`` phase run before ``bench.start_devices()`` (for
    traffic flows that must exist when the device starts); ``post-boot``
    loads spawn after devices are running.

Measurement programs
    A :class:`MeasurementEntry` builds the scenario's measurement
    program from the bench and the (duck-typed) measurement spec.  The
    returned program exposes the usual protocol: ``spec()``,
    ``finished``, ``recorder`` and ``estimated_sim_ns()``; programs
    that drive the simulation themselves (FBS) additionally provide
    ``drive(bench)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.workloads.base import spawn, spawn_all
from repro.workloads.cyclictest import CyclicTest
from repro.workloads.determinism import DeterminismTest
from repro.workloads.disknoise import disknoise
from repro.workloads.fbs_cycle import FbsCycleTest
from repro.workloads.netload import scp_copy_loop, ttcp_ethernet
from repro.workloads.realfeel import Realfeel
from repro.workloads.rcim_response import RcimResponseTest
from repro.workloads.stress_kernel import stress_kernel_suite
from repro.workloads.x11perf import x11perf

#: Load phases, in application order.
PRE_START = "pre-start"
POST_BOOT = "post-boot"


@dataclass(frozen=True)
class LoadEntry:
    """One registered background load."""

    name: str
    apply: Callable[[Any], None]          # receives the Bench
    phase: str = POST_BOOT
    description: str = ""


_LOADS: Dict[str, LoadEntry] = {}


def register_load(name: str, phase: str = POST_BOOT,
                  description: str = "") -> Callable:
    """Decorator registering *name* as a background-load applier."""
    def deco(fn: Callable[[Any], None]) -> Callable[[Any], None]:
        if name in _LOADS:
            raise ValueError(f"load {name!r} already registered")
        _LOADS[name] = LoadEntry(name, fn, phase, description)
        return fn
    return deco


def load_entry(name: str) -> LoadEntry:
    try:
        return _LOADS[name]
    except KeyError:
        raise KeyError(f"unknown load {name!r}; registered: "
                       f"{sorted(_LOADS)}") from None


def load_names() -> List[str]:
    return sorted(_LOADS)


# ----------------------------------------------------------------------
# The paper's background loads
# ----------------------------------------------------------------------
@register_load("broadcast", phase=PRE_START,
               description="section 6.1's standard broadcast traffic")
def _broadcast(bench: Any) -> None:
    bench.add_background_broadcast()


@register_load("stress-kernel",
               description="Red Hat stress-kernel suite")
def _stress_kernel(bench: Any) -> None:
    spawn_all(bench.kernel, stress_kernel_suite(bench.kernel))


@register_load("scp-copy",
               description="the scp network copy loop (section 5.1)")
def _scp_copy(bench: Any) -> None:
    spawn(bench.kernel, scp_copy_loop(bench.kernel, bench.nic))


@register_load("disknoise",
               description="the recursive-cat disknoise script")
def _disknoise(bench: Any) -> None:
    spawn(bench.kernel, disknoise(bench.kernel))


@register_load("x11perf",
               description="X11perf graphics load (section 6.2)")
def _x11perf(bench: Any) -> None:
    spawn(bench.kernel, x11perf(bench.kernel, bench.gpu))


@register_load("ttcp",
               description="ttcp over Ethernet (section 6.2)")
def _ttcp(bench: Any) -> None:
    spawn(bench.kernel, ttcp_ethernet(bench.kernel, bench.nic))


# ----------------------------------------------------------------------
# Measurement programs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MeasurementEntry:
    """One registered measurement-program builder."""

    name: str
    build: Callable[[Any, Any, Optional[Any]], Any]
    kind: str                              # "determinism" | "latency" | "fbs"
    description: str = ""


_MEASUREMENTS: Dict[str, MeasurementEntry] = {}


def register_measurement(name: str, kind: str,
                         description: str = "") -> Callable:
    """Decorator registering a measurement-program builder.

    The builder is called ``build(bench, m, affinity)`` where *m* is
    the scenario's measurement spec (duck-typed: only attribute access)
    and *affinity* the pre-computed :class:`CpuMask` or None.
    """
    def deco(fn: Callable) -> Callable:
        if name in _MEASUREMENTS:
            raise ValueError(f"measurement {name!r} already registered")
        _MEASUREMENTS[name] = MeasurementEntry(name, fn, kind, description)
        return fn
    return deco


def measurement_entry(name: str) -> MeasurementEntry:
    try:
        return _MEASUREMENTS[name]
    except KeyError:
        raise KeyError(f"unknown measurement {name!r}; registered: "
                       f"{sorted(_MEASUREMENTS)}") from None


def measurement_names() -> List[str]:
    return sorted(_MEASUREMENTS)


@register_measurement("determinism", kind="determinism",
                      description="sine-loop execution determinism test")
def _build_determinism(bench: Any, m: Any, affinity: Optional[Any]
                       ) -> DeterminismTest:
    return DeterminismTest(iterations=m.iterations, loop_ns=m.loop_ns,
                           rt_prio=m.rt_prio, affinity=affinity)


@register_measurement("realfeel", kind="latency",
                      description="realfeel RTC latency benchmark")
def _build_realfeel(bench: Any, m: Any, affinity: Optional[Any]) -> Realfeel:
    return Realfeel(bench.rtc, samples=m.samples, rt_prio=m.rt_prio,
                    affinity=affinity)


@register_measurement("rcim", kind="latency",
                      description="RCIM ioctl response test")
def _build_rcim(bench: Any, m: Any, affinity: Optional[Any]
                ) -> RcimResponseTest:
    return RcimResponseTest(bench.rcim, samples=m.samples,
                            affinity=affinity)


@register_measurement("cyclictest", kind="latency",
                      description="periodic nanosleep wakeup latency")
def _build_cyclictest(bench: Any, m: Any, affinity: Optional[Any]
                      ) -> CyclicTest:
    return CyclicTest(interval_ns=m.interval_ns, cycles=m.samples,
                      rt_prio=m.rt_prio, affinity=affinity)


@register_measurement("fbs-cycle", kind="fbs",
                      description="frequency-based-scheduler frame jitter")
def _build_fbs_cycle(bench: Any, m: Any, affinity: Optional[Any]
                     ) -> FbsCycleTest:
    return FbsCycleTest(bench, duration_ns=m.duration_ns,
                        cycle_ns=m.fbs_cycle_ns,
                        cycles_per_frame=m.fbs_cycles_per_frame,
                        compute_ns=m.fbs_compute_ns,
                        rt_prio=m.rt_prio, affinity=affinity)
