"""Workloads: the paper's measurement programs and background loads.

Measurement programs
    * :mod:`repro.workloads.determinism` -- the sine-loop execution
      determinism test (section 5.1);
    * :mod:`repro.workloads.realfeel` -- Andrew Morton's realfeel RTC
      latency benchmark (section 6.1);
    * :mod:`repro.workloads.rcim_response` -- the RCIM ioctl response
      test (section 6.2).

Background loads
    * :mod:`repro.workloads.netload` -- the scp copy loop and ttcp
      over Ethernet;
    * :mod:`repro.workloads.disknoise` -- the recursive-cat disk noise
      script;
    * :mod:`repro.workloads.x11perf` -- graphics benchmark load;
    * :mod:`repro.workloads.stress_kernel` -- the Red Hat stress-kernel
      suite (NFS-COMPILE, TTCP, FIFOS_MMAP, P3_FPU, FS, CRASHME).
"""

from repro.workloads.base import WorkloadSpec, spawn, spawn_all
from repro.workloads.determinism import DeterminismTest
from repro.workloads.disknoise import disknoise
from repro.workloads.fbs_cycle import FbsCycleTest
from repro.workloads.netload import scp_copy_loop, ttcp_ethernet
from repro.workloads.realfeel import Realfeel
from repro.workloads.rcim_response import RcimResponseTest
from repro.workloads.registry import (
    load_entry,
    load_names,
    measurement_entry,
    measurement_names,
    register_load,
    register_measurement,
)
from repro.workloads.x11perf import x11perf
from repro.workloads.stress_kernel import stress_kernel_suite

__all__ = [
    "WorkloadSpec",
    "spawn",
    "spawn_all",
    "DeterminismTest",
    "FbsCycleTest",
    "Realfeel",
    "RcimResponseTest",
    "disknoise",
    "scp_copy_loop",
    "ttcp_ethernet",
    "x11perf",
    "stress_kernel_suite",
    # registries
    "load_entry",
    "load_names",
    "measurement_entry",
    "measurement_names",
    "register_load",
    "register_measurement",
]
