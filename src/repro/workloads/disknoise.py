"""The disk-noise shell script (paper section 5.1).

The script recursively concatenates files in a temp directory --
``for f in 0..9: cat * > $f`` -- producing a continuous stream of
buffered reads and writes: dcache walks, file-layer lock traffic, and
disk requests whose completions interrupt the system.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.kernel.syscalls import UserApi
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


def disknoise(kernel: "Kernel", name: str = "disknoise") -> WorkloadSpec:
    """The recursive-cat load."""

    def body(api: UserApi) -> Generator:
        disk = kernel.drivers.get("/dev/sda")
        locks = kernel.locks
        while True:
            # `cat * > $f`: open each source (path walk under
            # dcache_lock), read (page-cache hits plus misses that go
            # to disk), write out (file-layer lock + dirty buffers).
            def cat_op() -> Generator:
                yield from api.kernel_section(
                    api.timing.sample("fs.lock_section", api.rng),
                    lock=locks.dcache_lock, label="cat:lookup")
                yield from api.kernel_section(
                    api.timing.sample("fs.section", api.rng),
                    label="cat:copy")
                yield from api.kernel_section(
                    api.timing.sample("fs.lock_section", api.rng),
                    lock=locks.file_lock, label="cat:write")
                if disk is not None:
                    yield from disk.submit_and_wait(api, sectors=32)

            yield from api.syscall("read", cat_op())
            # The shell between cats: fork/exec bookkeeping, mostly
            # user-mode and short.
            yield from api.compute(120_000, label="sh")

    return WorkloadSpec(name=name, body=body)
