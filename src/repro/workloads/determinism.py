"""The execution-determinism test (paper section 5.1).

    "The determinism test simply measures the length of time it takes
    to execute a function using double precision arithmetic to compute
    a sine wave.  The sine function is called in a loop such that the
    total execution time of the outer loop should be around one second
    in length.  Before starting this loop, the IA32 TSC register is
    read and at the end of the loop the TSC register is again read."

The test locks its pages and runs SCHED_FIFO.  Each iteration's wall
time goes to a :class:`~repro.metrics.recorder.JitterRecorder`; the
excess of the worst iteration over the ideal is the reported jitter.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from repro.kernel.syscalls import UserApi
from repro.kernel.task import SchedPolicy
from repro.metrics.recorder import JitterRecorder
from repro.sim.simtime import SEC
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.affinity import CpuMask

#: The paper's ideal loop duration on the unloaded P4 testbed.
PAPER_IDEAL_NS = 1_147_000_000


class DeterminismTest:
    """The CPU-bound sine-loop measurement program."""

    def __init__(self, iterations: int = 60,
                 loop_ns: int = PAPER_IDEAL_NS,
                 rt_prio: int = 90,
                 affinity: Optional["CpuMask"] = None,
                 name: str = "determinism") -> None:
        self.iterations = iterations
        self.loop_ns = loop_ns
        self.rt_prio = rt_prio
        self.affinity = affinity
        self.name = name
        self.recorder = JitterRecorder(name, ideal_ns=None,
                                       capacity=iterations)
        self.finished = False

    def spec(self) -> WorkloadSpec:
        return WorkloadSpec(name=self.name, body=self._body,
                            policy=SchedPolicy.FIFO, rt_prio=self.rt_prio,
                            affinity=self.affinity)

    def _body(self, api: UserApi) -> Generator:
        yield from api.mlockall()
        yield from api.sched_setscheduler(SchedPolicy.FIFO, self.rt_prio)
        if self.affinity is not None:
            yield from api.sched_setaffinity(self.affinity)
        for _i in range(self.iterations):
            t0 = yield api.tsc()
            # The sine loop: pure user-mode double-precision compute.
            # Pages are locked, so this is one unbroken segment whose
            # wall time is stretched only by interrupts and contention.
            yield from api.compute(self.loop_ns, label="sine-loop")
            t1 = yield api.tsc()
            self.recorder.record_duration(t1 - t0)
        self.finished = True

    # ------------------------------------------------------------------
    def ideal_ns(self) -> int:
        return self.recorder.ideal()

    def jitter_percent(self) -> float:
        return 100.0 * self.recorder.jitter_fraction()

    def estimated_sim_ns(self) -> int:
        """Rough simulated time needed to finish (for run_until)."""
        # Generous factor-of-two headroom over the unloaded duration.
        return 2 * self.iterations * self.loop_ns + SEC
