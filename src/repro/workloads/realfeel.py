"""The realfeel interrupt-response benchmark (paper section 6.1).

realfeel programs the RTC for periodic interrupts at 2048 Hz, then
loops reading ``/dev/rtc``; the time between consecutive returns in
excess of the period is latency.  The measurement therefore runs
through the full wake-up path *including* the generic file-layer exit
the paper blames for the RedHawk tail.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from repro.kernel.syscalls import UserApi
from repro.kernel.task import SchedPolicy
from repro.metrics.recorder import LatencyRecorder
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.affinity import CpuMask
    from repro.hw.devices.rtc import RtcDevice


class Realfeel:
    """RTC latency sampler."""

    def __init__(self, device: "RtcDevice", samples: int = 100_000,
                 rt_prio: int = 90,
                 affinity: Optional["CpuMask"] = None,
                 name: str = "realfeel") -> None:
        self.device = device
        self.samples = samples
        self.rt_prio = rt_prio
        self.affinity = affinity
        self.name = name
        self.recorder = LatencyRecorder(name, period_ns=device.period_ns,
                                        capacity=samples)
        #: Direct fire-to-return latencies (diagnostic; not what
        #: realfeel itself can measure).
        self.direct = LatencyRecorder(f"{name}-direct", capacity=samples)
        self.finished = False

    def spec(self) -> WorkloadSpec:
        return WorkloadSpec(name=self.name, body=self._body,
                            policy=SchedPolicy.FIFO, rt_prio=self.rt_prio,
                            affinity=self.affinity)

    def _body(self, api: UserApi) -> Generator:
        yield from api.mlockall()
        yield from api.sched_setscheduler(SchedPolicy.FIFO, self.rt_prio)
        if self.affinity is not None:
            yield from api.sched_setaffinity(self.affinity)
        fd = api.open("/dev/rtc")
        # One priming read so the recorder's first delta is clean.
        fire = yield from api.read(fd)
        t = yield api.tsc()
        self.recorder.record_return(t)
        while self.recorder.count < self.samples:
            fire = yield from api.read(fd)
            t = yield api.tsc()
            self.recorder.record_return(t)
            self.direct.record_latency(t - fire)
        self.finished = True

    def estimated_sim_ns(self) -> int:
        """Simulated time to collect the requested samples (+slack)."""
        return int(self.samples * self.device.period_ns * 1.5) + 10 ** 9
