"""P3_FPU: floating-point matrix operations.

    "The P3_FPU test does operations on floating point matrices."

Almost pure user-mode compute -- its kernel-visible role in the stress
mix is to keep CPUs busy (so wakeups must preempt someone), to take
page faults (its working set is not locked), and, on hyperthreaded
hardware, to contend for the sibling's execution unit.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.kernel.syscalls import UserApi
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


def p3_fpu(kernel: "Kernel", name: str = "p3_fpu") -> WorkloadSpec:
    """The FPU matrix grinder."""

    def body(api: UserApi) -> Generator:
        rng = api.rng
        while True:
            # One matrix pass: a few ms of double-precision work.
            yield from api.compute(int(rng.uniform(1.5e6, 6e6)),
                                   label="fpu:matmul")
            # Report progress / reseed (brief syscall).
            def touch() -> Generator:
                yield from api.kernel_section(5_000, label="fpu:touch")

            yield from api.syscall("write", touch())

    return WorkloadSpec(name=name, body=body)
