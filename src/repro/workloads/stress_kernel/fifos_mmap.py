"""FIFOS_MMAP: FIFO ping-pong alternating with mmap'd-file operations.

    "FIFOS_MMAP is a combination test that alternates between sending
    data between two processes via a FIFO and operations on an mmap'd
    file."

The FIFO side exercises the pipe code (copy + wakeup, lots of context
switches); the mmap side exercises page-table and filesystem sections.
"""

from __future__ import annotations

from typing import Generator, List, TYPE_CHECKING

from repro.kernel.syscalls import UserApi
from repro.kernel.sync.waitqueue import WaitQueue
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


def fifos_mmap(kernel: "Kernel") -> List[WorkloadSpec]:
    """The FIFO ping-pong pair."""
    ping_wq = WaitQueue("fifo:ping")
    pong_wq = WaitQueue("fifo:pong")

    def side(api: UserApi, my_wq: WaitQueue, peer_wq: WaitQueue,
             starts: bool) -> Generator:
        disk = kernel.drivers.get("/dev/sda")
        first = True
        while True:
            if not (first and starts):
                yield from api.pipe_wait(my_wq)
            first = False
            # A little user work on the received buffer.
            yield from api.compute(int(api.rng.uniform(1e4, 6e4)),
                                   label="fifo:chew")
            # Occasionally do the mmap'd-file phase.
            if api.rng.random() < 0.3:
                def mmap_op() -> Generator:
                    yield from api.kernel_section(
                        api.timing.sample("mmap.section", api.rng),
                        label="mmap:fault-in")
                    yield from api.kernel_section(
                        api.timing.sample("fs.lock_section", api.rng),
                        lock=kernel.locks.file_lock, label="mmap:sync")
                    if disk is not None and api.rng.random() < 0.3:
                        yield from disk.submit_and_wait(api, sectors=8)

                yield from api.syscall("msync", mmap_op())
            yield from api.pipe_transfer(peer_wq)

    def a_body(api: UserApi) -> Generator:
        yield from side(api, ping_wq, pong_wq, starts=True)

    def b_body(api: UserApi) -> Generator:
        yield from side(api, pong_wq, ping_wq, starts=False)

    return [
        WorkloadSpec(name="fifos_mmap:a", body=a_body),
        WorkloadSpec(name="fifos_mmap:b", body=b_body),
    ]
