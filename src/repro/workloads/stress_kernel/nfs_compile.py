"""NFS-COMPILE: kernel compilation over NFS-on-loopback.

    "The NFS-COMPILE script is the repeated compilation of a Linux
    kernel via an NFS file system exported over the loopback device."

Two processes: the compiler (gcc: user-mode CPU bursts, then file
accesses that become NFS RPCs over loopback) and nfsd (kernel thread
servicing the RPCs with filesystem sections and disk I/O).  The RPC
traffic raises NET_RX softirq work on the sending CPU -- this load is
the main source of the multi-millisecond bottom-half bursts the paper
describes.
"""

from __future__ import annotations

from typing import Generator, List, TYPE_CHECKING

from repro.kernel import ops as op
from repro.kernel.syscalls import UserApi
from repro.kernel.sync.waitqueue import WaitQueue
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


def nfs_compile(kernel: "Kernel") -> List[WorkloadSpec]:
    """The gcc + nfsd pair."""
    net = kernel.drivers["net"]
    nfsd_sock = net.socket("nfs-rpc")

    def gcc_body(api: UserApi) -> Generator:
        rng = api.rng
        while True:
            # Compile a unit: heavy user-mode CPU.
            yield from api.compute(int(rng.uniform(2e6, 12e6)),
                                   label="gcc:compile")
            # Source/include reads and object writes over NFS: each is
            # an RPC round trip through the loopback stack.
            for _ in range(int(rng.integers(2, 6))):  # lint: ok(scalar-rng)
                packets = int(rng.integers(4, 24))  # lint: ok(scalar-rng)

                def rpc(packets=packets) -> Generator:
                    cost = packets * api.timing.sample(
                        "net.tx_per_packet", api.rng)
                    yield op.Compute(cost, kernel=True, label="nfs:rpc-tx")
                    yield op.Call(net.loopback_deliver, (packets, "nfs-rpc"))

                yield from api.syscall("sendmsg", rpc())
                # Think briefly while nfsd answers (reply handled as
                # anonymous softirq work).
                yield from api.compute(int(rng.uniform(2e4, 1e5)),
                                       label="gcc:wait")

    def nfsd_body(api: UserApi) -> Generator:
        disk = kernel.drivers.get("/dev/sda")
        while True:
            if not nfsd_sock.has_data:
                yield from api.pipe_wait(nfsd_sock.wq)
            while nfsd_sock.has_data:
                nfsd_sock.take()

                def service() -> Generator:
                    # Queue the RPC reply first (NET_RX work for the
                    # client side of the loopback), *then* do the
                    # filesystem work.  If this task is preempted
                    # during the section, the reply work sits pending
                    # and the next interrupt exit on this CPU runs it
                    # -- the bottom-half burst of section 6.2.
                    reply = int(api.rng.integers(2, 16))  # lint: ok(scalar-rng)
                    yield op.Call(net.loopback_deliver, (reply,))
                    # Exported-filesystem work: a potentially long
                    # kernel stretch plus dcache traffic.
                    yield from api.kernel_section(
                        api.timing.sample("nfs.section", api.rng),
                        label="nfsd:fs")
                    yield from api.kernel_section(
                        api.timing.sample("fs.lock_section", api.rng),
                        lock=kernel.locks.dcache_lock, label="nfsd:dcache")
                    if disk is not None and api.rng.random() < 0.4:
                        yield from disk.submit_and_wait(api, sectors=16)

                yield from api.syscall("nfsd", service())

    return [
        WorkloadSpec(name="nfs-compile:gcc", body=gcc_body),
        WorkloadSpec(name="nfs-compile:nfsd", body=nfsd_body),
    ]
