"""The Red Hat stress-kernel suite (paper section 6.1).

    "The following programs from stress-kernel are used: NFS-COMPILE,
    TTCP, FIFOS_MMAP, P3_FPU, FS, CRASHME."

Each module reproduces the kernel-visible behaviour of one program;
:func:`stress_kernel_suite` assembles the full load the interrupt
response experiments run.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.workloads.base import WorkloadSpec
from repro.workloads.stress_kernel.crashme import crashme
from repro.workloads.stress_kernel.fifos_mmap import fifos_mmap
from repro.workloads.stress_kernel.fs import fs_stress
from repro.workloads.stress_kernel.nfs_compile import nfs_compile
from repro.workloads.stress_kernel.p3_fpu import p3_fpu
from repro.workloads.stress_kernel.ttcp import ttcp_loopback

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel

__all__ = [
    "crashme",
    "fifos_mmap",
    "fs_stress",
    "nfs_compile",
    "p3_fpu",
    "ttcp_loopback",
    "stress_kernel_suite",
]


def stress_kernel_suite(kernel: "Kernel") -> List[WorkloadSpec]:
    """All six stress-kernel programs, ready to spawn."""
    specs: List[WorkloadSpec] = []
    specs.extend(nfs_compile(kernel))
    specs.extend(ttcp_loopback(kernel))
    specs.extend(fifos_mmap(kernel))
    specs.append(p3_fpu(kernel))
    specs.append(fs_stress(kernel))
    specs.append(crashme(kernel))
    return specs
