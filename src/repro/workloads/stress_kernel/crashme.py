"""CRASHME: executing random bytes.

    "Finally the CRASHME test generates buffers of random data, then
    jumps to that data and tries to execute it."

Kernel-visible effects: a dense stream of synchronous exceptions
(illegal instruction, segfault) each requiring fault decoding and
signal delivery, plus the fork/exec churn of respawning the victim
after it dies.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.kernel.syscalls import UserApi
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


def crashme(kernel: "Kernel", name: str = "crashme") -> WorkloadSpec:
    """The random-code executor."""

    def body(api: UserApi) -> Generator:
        rng = api.rng
        while True:
            # Generate a buffer of random bytes.
            yield from api.compute(int(rng.uniform(1e5, 3e5)),
                                   label="crashme:gen")
            # Jump into it: a handful of instructions execute, then an
            # exception.  Fault handling + signal delivery in the
            # kernel, repeated for each attempt in the buffer.
            for _ in range(int(rng.integers(2, 8))):  # lint: ok(scalar-rng)
                yield from api.compute(int(rng.uniform(500, 4_000)),
                                       label="crashme:run")

                def fault() -> Generator:
                    yield from api.kernel_section(
                        api.timing.sample("crashme.fault", api.rng),
                        label="crashme:fault")

                yield from api.syscall("do_signal", fault())
            # The monitor reaps the child and forks a fresh victim.
            def respawn() -> Generator:
                yield from api.kernel_section(30_000, label="crashme:fork")

            yield from api.syscall("fork", respawn())

    return WorkloadSpec(name=name, body=body)
