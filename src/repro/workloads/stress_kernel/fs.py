"""FS: filesystem torture.

    "The FS test performs all sorts of unnatural acts on a set of
    files, such as creating large files with holes in the middle, then
    truncating and extending those files."

This is the workload with the longest 2.4 kernel sections: truncate
and extend paths walk and modify large block mappings without
rescheduling.  On the vanilla kernel these sections are the dominant
cause of the 92 ms worst-case interrupt response (Figure 5); with the
low-latency patches the same operations run in bounded chunks.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.kernel.syscalls import UserApi
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


def fs_stress(kernel: "Kernel", name: str = "fs") -> WorkloadSpec:
    """The file-torture process."""

    def body(api: UserApi) -> Generator:
        disk = kernel.drivers.get("/dev/sda")
        locks = kernel.locks
        rng = api.rng
        while True:
            heavy = rng.random() < 0.12

            def fs_op(heavy=heavy) -> Generator:
                # Path lookup under dcache_lock.
                yield from api.kernel_section(
                    api.timing.sample("fs.lock_section", api.rng),
                    lock=locks.dcache_lock, label="fs:lookup")
                if heavy:
                    # Truncate/extend a large holey file: the
                    # long-tailed block-map walk plus real disk I/O.
                    yield from api.kernel_section(
                        api.timing.sample("fs.section", api.rng),
                        label="fs:blockmap")
                    if disk is not None and api.rng.random() < 0.5:
                        yield from disk.submit_and_wait(
                            api, sectors=int(rng.integers(8, 128)))  # lint: ok(scalar-rng)
                else:
                    # In-cache metadata churn: short kernel stretch.
                    yield from api.kernel_section(
                        int(rng.uniform(3e3, 2e4)), label="fs:meta")
                # File-table churn under file_lock on every op.
                yield from api.kernel_section(
                    api.timing.sample("fs.lock_section", api.rng),
                    lock=locks.file_lock, label="fs:ftable")

            yield from api.syscall("truncate", fs_op())
            # Brief user-mode gap between operations.
            yield from api.compute(int(rng.uniform(2e4, 8e4)), label="fs:gap")

    return WorkloadSpec(name=name, body=body)
