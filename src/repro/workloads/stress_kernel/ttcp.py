"""TTCP: bulk TCP over the loopback device.

    "The TTCP program sends and receives large data sets via the
    loopback device."

A sender/receiver pair: the sender's ``sendmsg`` does the transmit
work and immediately raises NET_RX softirq work on its own CPU (that
is what loopback means); the receiver drains its socket.  At bulk
rates this produces sustained multi-hundred-microsecond softirq
batches -- the bottom-half pressure in the paper's analysis.
"""

from __future__ import annotations

from typing import Generator, List, TYPE_CHECKING

from repro.kernel import ops as op
from repro.kernel.syscalls import UserApi
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


def ttcp_loopback(kernel: "Kernel",
                  burst_packets: int = 16) -> List[WorkloadSpec]:
    """The loopback TTCP pair."""
    net = kernel.drivers["net"]
    sock = net.socket("ttcp-lo")

    def sender_body(api: UserApi) -> Generator:
        while True:
            def send() -> Generator:
                cost = burst_packets * api.timing.sample(
                    "net.tx_per_packet", api.rng)
                yield op.Compute(cost, kernel=True, label="ttcp:tx")
                yield op.Call(net.loopback_deliver,
                              (burst_packets, "ttcp-lo"))

            yield from api.syscall("sendmsg", send())
            # Buffer refill in user space between bursts.
            yield from api.compute(int(api.rng.uniform(5e4, 1.5e5)),
                                   label="ttcp:fill")

    def receiver_body(api: UserApi) -> Generator:
        while True:
            if not sock.has_data:
                yield from api.pipe_wait(sock.wq)
            packets = 0
            while sock.has_data:
                packets += sock.take()

            def recv(packets=max(1, packets)) -> Generator:
                yield from api.kernel_section(packets * 1_500,
                                              label="ttcp:rxcopy")

            yield from api.syscall("recvmsg", recv())
            yield from api.compute(packets * 1_000, label="ttcp:checksum")

    return [
        WorkloadSpec(name="ttcp:send", body=sender_body),
        WorkloadSpec(name="ttcp:recv", body=receiver_body),
    ]
