"""The RCIM interrupt-response test (paper section 6.2).

The test programs the RCIM's real-time timer for a periodic interrupt,
blocks in an ioctl, and on wakeup reads the memory-mapped count
register: the elapsed count *is* the interrupt-response latency,
measured by the hardware itself with no file-layer exit path in the
way.  On kernels with the generic-ioctl change, the multithreaded RCIM
driver runs without the BKL.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from repro.kernel.syscalls import UserApi
from repro.kernel.task import SchedPolicy
from repro.metrics.recorder import LatencyRecorder
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.affinity import CpuMask
    from repro.hw.devices.rcim import RcimCard


class RcimResponseTest:
    """RCIM count-register latency sampler."""

    def __init__(self, device: "RcimCard", samples: int = 100_000,
                 rt_prio: int = 90,
                 affinity: Optional["CpuMask"] = None,
                 name: str = "rcim-response") -> None:
        self.device = device
        self.samples = samples
        self.rt_prio = rt_prio
        self.affinity = affinity
        self.name = name
        self.recorder = LatencyRecorder(name, capacity=samples)
        self.finished = False

    def spec(self) -> WorkloadSpec:
        return WorkloadSpec(name=self.name, body=self._body,
                            policy=SchedPolicy.FIFO, rt_prio=self.rt_prio,
                            affinity=self.affinity)

    def _body(self, api: UserApi) -> Generator:
        yield from api.mlockall()
        yield from api.sched_setscheduler(SchedPolicy.FIFO, self.rt_prio)
        if self.affinity is not None:
            yield from api.sched_setaffinity(self.affinity)
        fd = api.open("/dev/rcim")
        while self.recorder.count < self.samples:
            yield from api.ioctl(fd, "RCIM_WAIT_INTERRUPT")
            # Mapped-register read: negligible overhead, done from user
            # space immediately after the ioctl returns.
            latency = yield api.call(self.device.read_count)
            self.recorder.record_latency(latency)
        self.finished = True

    def estimated_sim_ns(self) -> int:
        return int(self.samples * self.device.period_ns * 1.5) + 10 ** 9
