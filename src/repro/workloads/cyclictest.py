"""A cyclictest-style timer-latency benchmark.

The canonical real-time Linux benchmark (it post-dates the paper but
measures exactly the paper's subject): a SCHED_FIFO thread sleeps
until an absolute deadline each cycle and records how late it wakes.
Timer latency combines the timer mechanism's granularity with the
scheduling latency the paper studies, so it cleanly exposes two
RedHawk components at once:

* the POSIX/high-res timers patch (vanilla 2.4 rounds every nanosleep
  up to the next 10 ms jiffy -- a disaster at millisecond periods);
* kernel preemption / shielding (wakeup-to-run latency).
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from repro.kernel.syscalls import UserApi
from repro.kernel.task import SchedPolicy
from repro.metrics.recorder import LatencyRecorder
from repro.sim.simtime import MSEC
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.affinity import CpuMask


class CyclicTest:
    """Periodic nanosleep wakeup-latency sampler."""

    def __init__(self, interval_ns: int = 1 * MSEC, cycles: int = 1_000,
                 rt_prio: int = 90,
                 affinity: Optional["CpuMask"] = None,
                 name: str = "cyclictest") -> None:
        if interval_ns <= 0:
            raise ValueError("cyclictest interval must be positive")
        self.interval_ns = interval_ns
        self.cycles = cycles
        self.rt_prio = rt_prio
        self.affinity = affinity
        self.name = name
        self.recorder = LatencyRecorder(name, capacity=cycles)
        self.finished = False

    def spec(self) -> WorkloadSpec:
        return WorkloadSpec(name=self.name, body=self._body,
                            policy=SchedPolicy.FIFO, rt_prio=self.rt_prio,
                            affinity=self.affinity)

    def _body(self, api: UserApi) -> Generator:
        yield from api.mlockall()
        yield from api.sched_setscheduler(SchedPolicy.FIFO, self.rt_prio)
        if self.affinity is not None:
            yield from api.sched_setaffinity(self.affinity)
        # clock_nanosleep(TIMER_ABSTIME) loop: next deadline advances
        # by exactly one interval per cycle so latency does not
        # accumulate across cycles.
        now = yield api.tsc()
        next_deadline = now + self.interval_ns
        for _cycle in range(self.cycles):
            now = yield api.tsc()
            wait = max(0, next_deadline - now)
            yield from api.nanosleep(wait)
            woke = yield api.tsc()
            self.recorder.record_latency(woke - next_deadline)
            next_deadline += self.interval_ns
            if next_deadline <= woke:
                # Overran whole periods (coarse timers): resynchronise
                # the way cyclictest does.
                missed = (woke - next_deadline) // self.interval_ns + 1
                next_deadline += missed * self.interval_ns
        self.finished = True

    def estimated_sim_ns(self) -> int:
        return int(self.cycles * self.interval_ns * 4) + 10 ** 9
