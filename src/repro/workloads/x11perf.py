"""The X11perf graphics load (Figure 7's additional stress).

X11perf hammers the graphics console: the X server burns CPU building
command buffers and the controller raises completion interrupts at a
high rate.  The kernel-visible effects are the interrupt/tasklet
traffic (via :class:`~repro.hw.devices.gpu.GraphicsController`) and an
X server process competing for CPU.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.kernel.syscalls import UserApi
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.devices.gpu import GraphicsController
    from repro.kernel.kernel import Kernel


def x11perf(kernel: "Kernel", gpu: "GraphicsController",
            irqs_per_sec: float = 900.0,
            name: str = "X+x11perf") -> WorkloadSpec:
    """Start graphics interrupt traffic and the X server process."""
    gpu.set_rate(irqs_per_sec)

    def body(api: UserApi) -> Generator:
        while True:
            # Build a batch of rendering commands (user CPU)...
            yield from api.compute(350_000, label="x11:render")

            # ...and submit it to the card through the DRM ioctl path.
            # 2.4's generic ioctl takes the BKL around the driver
            # routine -- making the X server a steady BKL customer,
            # which is what the RCIM driver's no-BKL flag is up
            # against (section 6.2).
            def submit() -> Generator:
                yield from api.kernel_section(
                    18_000, lock=kernel.locks.bkl, label="x11:submit")

            yield from api.syscall("ioctl", submit())

    return WorkloadSpec(name=name, body=body)
