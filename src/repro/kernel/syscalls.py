"""The user-level API: syscall generator helpers.

A workload body is a generator; it obtains a :class:`UserApi` bound to
its kernel and composes these helpers with ``yield from``.  The
helpers translate POSIX-ish calls into the primitive ops of
:mod:`repro.kernel.ops`, inserting the costs and lock acquisitions of
the corresponding 2.4 kernel paths.

The crucial helper for the paper's analysis is
:meth:`UserApi.kernel_section`: a (possibly long) stretch of kernel
work, optionally under a spinlock.  On a kernel with the low-latency
patches the work is broken into bounded chunks with ``cond_resched``
points between them -- which is literally what those patches do -- so
the same workload produces 90 ms non-preemptible windows on vanilla
2.4 and sub-millisecond ones on RedHawk.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional, TYPE_CHECKING

from repro.core.affinity import CpuMask
from repro.kernel import ops as op
from repro.kernel.mm import FaultModel
from repro.kernel.task import SchedPolicy
from repro.kernel.timekeeping import sleep_quantum
from repro.sim.simtime import MSEC, USEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.kernel.sync.spinlock import SpinLock

#: Work chunk between low-latency reschedule points.  Morton's patches
#: bound preemption-off stretches to roughly this scale.
LOWLAT_CHUNK_NS = 250 * USEC


class UserApi:
    """Per-task façade over the kernel's syscall machinery."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.config = kernel.config
        self.timing = kernel.config.timing
        self.rng = kernel.sim.rng.stream("userapi")
        self._trace = kernel.sim.trace
        self.fault_model = FaultModel()
        self.mem_locked = False

    # ------------------------------------------------------------------
    # Time and instrumentation
    # ------------------------------------------------------------------
    def tsc(self) -> op.Call:
        """Read the time-stamp counter (yield the result)."""
        return op.Call(self.kernel.machine.tsc.read)

    def call(self, fn, *args) -> op.Call:
        """Zero-cost instrumentation callback."""
        return op.Call(fn, args)

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    def compute(self, work_ns: int, label: str = "") -> Generator:
        """User-mode computation, with page faults unless mlocked."""
        if self.mem_locked or work_ns <= 0:
            yield op.Compute(work_ns, kernel=False, label=label)
            return
        faults = self.fault_model.sample_fault_count(work_ns, self.rng)
        if faults == 0:
            yield op.Compute(work_ns, kernel=False, label=label)
            return
        # Spread the faults through the segment.
        slice_ns = work_ns // (faults + 1)
        for _ in range(faults):
            yield op.Compute(slice_ns, kernel=False, label=label)
            yield from self._page_fault()
        yield op.Compute(work_ns - slice_ns * faults, kernel=False,
                         label=label)

    def _page_fault(self) -> Generator:
        """Service one fault: kernel entry, maybe disk I/O."""
        yield op.EnterSyscall("page_fault")
        yield op.Compute(self.fault_model.sample_fault_cost(self.rng),
                         kernel=True, label="minor-fault")
        if self.fault_model.is_major(self.rng):
            disk = self.kernel.drivers.get("/dev/sda")
            if disk is not None:
                yield from disk.submit_and_wait(self, sectors=8)
        yield op.ExitSyscall()

    # ------------------------------------------------------------------
    # Syscall scaffolding
    # ------------------------------------------------------------------
    def syscall(self, name: str, body: Optional[Generator] = None
                ) -> Generator:
        """Wrap *body* in kernel entry/exit with their costs."""
        # Per-syscall f-string labels are diagnostics; only build them
        # when tracing is on.
        trace = self._trace.enabled
        yield op.EnterSyscall(name)
        yield op.Compute(self.timing.sample("syscall.entry", self.rng),
                         kernel=True,
                         label=f"{name}:entry" if trace else "sys:entry")
        result = None
        if body is not None:
            result = yield from body
        yield op.Compute(self.timing.sample("syscall.exit", self.rng),
                         kernel=True,
                         label=f"{name}:exit" if trace else "sys:exit")
        yield op.ExitSyscall()
        return result

    def kernel_section(self, total_ns: int,
                       lock: Optional["SpinLock"] = None,
                       label: str = "ksection") -> Generator:
        """Kernel work, optionally under a spinlock.

        Vanilla kernel: one unbroken non-preemptible stretch.  With the
        low-latency patches: bounded chunks with reschedule points --
        and when a lock is held, the patched algorithms also drop and
        retake it around the preemption point (that is how Morton's
        rewrites shortened lock hold times).
        """
        remaining = total_ns
        if not self.config.low_latency:
            if lock is not None:
                yield op.Acquire(lock)
            yield op.Compute(remaining, kernel=True, label=label)
            if lock is not None:
                yield op.Release(lock)
            return
        while remaining > 0:
            chunk = min(remaining, LOWLAT_CHUNK_NS)
            if lock is not None:
                yield op.Acquire(lock)
            yield op.Compute(chunk, kernel=True, label=label)
            if lock is not None:
                yield op.Release(lock)
            remaining -= chunk
            if remaining > 0:
                yield op.PreemptPoint()

    # ------------------------------------------------------------------
    # Sleeping locks
    # ------------------------------------------------------------------
    def sem_down(self, sem) -> Generator:
        """``down()`` on a kernel semaphore (sleeping lock).

        Blocks -- never spins -- when the semaphore is unavailable, so
        it must not be attempted with preemption disabled; the kernel
        panics (and lockdep reports sleep-in-atomic) if a task tries
        to ``down()`` while holding a spinlock.
        """
        yield op.SemDown(sem)  # lint: ok(paired-acquire-release)

    def sem_up(self, sem) -> Generator:
        """``up()`` on a kernel semaphore; wakes the oldest waiter."""
        yield op.SemUp(sem)  # lint: ok(paired-acquire-release)

    # ------------------------------------------------------------------
    # Scheduling control
    # ------------------------------------------------------------------
    def sched_setscheduler(self, policy: SchedPolicy,
                           rt_prio: int = 0, nice: int = 0) -> Generator:
        yield from self.syscall("sched_setscheduler")
        yield op.SetScheduler(policy, rt_prio, nice)

    def sched_setaffinity(self, mask: CpuMask) -> Generator:
        yield from self.syscall("sched_setaffinity")
        yield op.SetAffinity(mask)

    def sched_yield(self) -> Generator:
        yield from self.syscall("sched_yield")
        yield op.YieldCpu()

    def mlockall(self) -> Generator:
        """Pin all current and future pages (MCL_CURRENT|MCL_FUTURE)."""
        yield from self.syscall("mlockall")
        yield op.MlockAll()
        self.mem_locked = True

    def nanosleep(self, duration_ns: int) -> Generator:
        """Sleep; granularity depends on the kernel's timer support."""
        actual = sleep_quantum(self.config, duration_ns,
                               self.config.highres_timers)
        yield op.EnterSyscall("nanosleep")
        yield op.Compute(self.timing.sample("syscall.entry", self.rng),
                         kernel=True, label="nanosleep:entry")
        yield op.Sleep(actual)
        yield op.Compute(self.timing.sample("syscall.exit", self.rng),
                         kernel=True, label="nanosleep:exit")
        yield op.ExitSyscall()

    # ------------------------------------------------------------------
    # Device access
    # ------------------------------------------------------------------
    def open(self, path: str):
        """Look up the driver registered at *path* (no syscall cost --
        opens happen once at workload start)."""
        driver = self.kernel.drivers.get(path)
        if driver is None:
            raise KeyError(f"no driver registered at {path}")
        return driver

    def read(self, driver) -> Generator:
        """``read()`` on a character device."""
        result = yield from driver.read_body(self)
        return result

    def ioctl(self, driver, cmd: str = "") -> Generator:
        """``ioctl()`` on a character device.

        Implements the generic-ioctl BKL convention the paper patches:
        the BKL is taken around the driver routine unless this kernel
        honours the driver's multithreaded flag.
        """
        needs_bkl = not (self.config.bkl_ioctl_flag
                         and getattr(driver, "multithreaded", False))
        result = yield from driver.ioctl_body(self, cmd, needs_bkl)
        return result

    # ------------------------------------------------------------------
    # IPC / networking building blocks
    # ------------------------------------------------------------------
    def loopback_send(self, packets: int) -> Generator:
        """Send over the loopback device (TTCP / NFS-over-loopback).

        The protocol work for the "received" packets is NET_RX softirq
        work raised on the sending CPU, exactly like 2.4's
        ``netif_rx`` on lo; it is processed on the way out of the
        syscall or by ksoftirqd.
        """
        net = self.kernel.drivers.get("net")

        def body() -> Generator:
            send_cost = packets * self.timing.sample(
                "net.tx_per_packet", self.rng)
            yield op.Compute(send_cost, kernel=True, label="lo:send")
            if net is not None:
                yield op.Call(net.loopback_deliver, (packets,))

        result = yield from self.syscall("sendmsg", body())
        return result

    def pipe_transfer(self, wq_peer, bytes_count: int = 4096) -> Generator:
        """Write one pipe buffer and wake the reader."""
        def body() -> Generator:
            yield op.Compute(self.timing.sample("pipe.copy", self.rng),
                             kernel=True, label="pipe:copy")
            yield op.Wake(wq_peer)

        yield from self.syscall("write", body())

    def pipe_wait(self, wq_own) -> Generator:
        """Block reading an empty pipe."""
        def body() -> Generator:
            yield op.Compute(self.timing.sample("syscall.entry", self.rng),
                             kernel=True, label="pipe:wait")
            yield op.Block(wq_own)

        yield from self.syscall("read", body())
