"""Timekeeping: jiffies-resolution vs high-resolution sleeps.

The vanilla 2.4 kernel rounds ``nanosleep`` up to the next timer tick
plus one (10-20 ms of slack at HZ=100); the POSIX timers patch the
paper lists among RedHawk's components [4] gives nanosecond-resolution
wakeups.  Workload pacing goes through :func:`sleep_quantum` so the
two kernels exhibit their real granularity difference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.config import KernelConfig


def sleep_quantum(config: "KernelConfig", requested_ns: int,
                  highres: bool) -> int:
    """Actual sleep duration for a *requested_ns* nanosleep.

    With high-resolution timers the request is honoured exactly; the
    classic timer wheel rounds up to a tick boundary and adds a tick
    (the 2.4 ``timespec_to_jiffies(...) + 1`` behaviour).
    """
    if requested_ns <= 0:
        return 0
    if highres:
        return requested_ns
    tick = config.tick_ns
    ticks = -(-requested_ns // tick)  # ceil division
    return (ticks + 1) * tick
