"""The kernel orchestrator.

This module ties the pieces together: it steps task generators,
dispatches the primitive ops they yield, implements the preemption
rules that distinguish the paper's kernel configurations, and runs the
hardirq -> softirq -> reschedule pipeline on top of the hardware
layer's execution frames.

Preemption rules implemented here (the crux of the paper's analysis):

* A task executing **user-mode** code can always be context-switched
  at interrupt return -- on every kernel.
* A task executing **kernel-mode** code (inside a system call) can be
  switched only if the kernel has the preemption patch
  (``config.preemptible``) *and* the task holds no spinlocks
  (``preempt_count == 0``).  On the vanilla kernel the switch waits
  for a voluntary reschedule point, a block, or the syscall exit --
  which is why 2.4's multi-millisecond syscalls produce Figure 5's
  92 ms interrupt-response tail.
* Interrupt handlers preempt anything except code holding an
  interrupt-disabling spinlock; bottom halves (softirqs) run at
  interrupt exit and therefore stretch critical sections protected by
  non-irq spinlocks -- the mechanism behind Figure 6's sub-millisecond
  tail.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.core.affinity import CpuMask, effective_affinity
from repro.core.shield import ShieldController
from repro.hw.apic import IrqDescriptor
from repro.hw.cpu import ExecFrame, FrameKind, LogicalCpu
from repro.hw.machine import Machine
from repro.kernel import ops as op
from repro.kernel.config import KernelConfig
from repro.kernel.irqflow.softirq import SoftirqQueue, SoftirqVector
from repro.kernel.irqflow.timer_tick import LocalTimer
from repro.kernel.sched.goodness import GoodnessScheduler
from repro.kernel.sched.o1 import O1Scheduler
from repro.kernel.sync.bkl import BigKernelLock
from repro.kernel.sync.spinlock import SpinLock
from repro.kernel.sync.waitqueue import WaitQueue
from repro.kernel.task import SchedPolicy, Task, TaskState
from repro.sim.engine import Simulator
from repro.sim.errors import KernelPanic

#: Pseudo-IRQ numbers for interrupts that bypass the I/O APIC.
IPI_RESCHED_IRQ = 999
LOCAL_TIMER_IRQ_BASE = 1000


class Kernel:
    """A booted kernel instance bound to one simulated machine."""

    def __init__(self, sim: Simulator, machine: Machine,
                 config: KernelConfig) -> None:
        self.sim = sim
        self.machine = machine
        self.config = config
        self.ncpus = machine.ncpus
        self.rng = sim.rng.stream("kernel")

        # Per-CPU state.
        self.current: List[Optional[Task]] = [None] * self.ncpus
        self.need_resched: List[bool] = [False] * self.ncpus
        self.in_softirq: List[bool] = [False] * self.ncpus
        self.softirqq: List[SoftirqQueue] = [
            SoftirqQueue(i) for i in range(self.ncpus)]
        self._scheduling: List[bool] = [False] * self.ncpus

        # Tasks.
        self.tasks: Dict[int, Task] = {}
        self._next_pid = 1

        # Scheduler.
        if config.o1_scheduler:
            self.scheduler = O1Scheduler(self)
        else:
            self.scheduler = GoodnessScheduler(self)

        # Interrupt dispatch table: irq -> (cost_key, action(cpu_idx)).
        self._irq_table: Dict[int, tuple] = {}
        self._ipi_desc = IrqDescriptor(IPI_RESCHED_IRQ, "resched-ipi",
                                       self.ncpus)
        self._ltmr_descs = [
            IrqDescriptor(LOCAL_TIMER_IRQ_BASE + i, f"local-timer-{i}",
                          self.ncpus)
            for i in range(self.ncpus)
        ]

        # Kernel global locks (the contended ones the paper discusses).
        self.locks = SimpleNamespace(
            bkl=BigKernelLock(),
            # Generic file-layer lock crossed by read()/write() exit
            # paths (stand-in for files_lock / fasync handling).
            file_lock=SpinLock("file_lock"),
            # dcache/inode-level lock hit by path-walking fs ops.
            dcache_lock=SpinLock("dcache_lock"),
            # Block-layer request lock (irq-disabling in 2.4).
            io_request_lock=SpinLock("io_request_lock", irq_disabling=True),
            # Global runqueue lock (goodness) / runqueue locks (O(1));
            # modelled inside switch cost, exposed for completeness.
            runqueue_lock=SpinLock("runqueue_lock", irq_disabling=True),
        )

        # Subsystems.
        self.local_timer = LocalTimer(self)
        self.jiffies = 0
        self.drivers: Dict[str, Any] = {}
        self.procfs = None  # created at boot
        #: CPU on which the most recent op was dispatched; lets Call-op
        #: callees (drivers) attribute work to the calling CPU.
        self.dispatching_cpu: Optional[int] = None
        self.shield: Optional[ShieldController] = None
        self.ksoftirqd_tasks: List[Optional[Task]] = [None] * self.ncpus
        self.ksoftirqd_wqs: List[WaitQueue] = [
            WaitQueue(f"ksoftirqd/{i}") for i in range(self.ncpus)]

        # Statistics.
        self.stats = SimpleNamespace(
            context_switches=0,
            hardirqs=0,
            softirq_items=0,
            ipis=0,
            syscalls=0,
            preemptions=0,
            migrations=0,
        )
        self._booted = False

    # ==================================================================
    # Boot
    # ==================================================================
    def boot(self) -> None:
        """Install hardware hooks and start kernel services."""
        if self._booted:
            raise KernelPanic("kernel booted twice")
        self._booted = True
        self.machine.apic.deliver = self._deliver_irq
        self.machine.on_irq_affinity_changed = self._irq_affinity_changed
        for cpu in self.machine.cpus:
            cpu.on_quiescent = self._on_quiescent
            # Pended-IRQ draining is handled explicitly at each
            # irq_enable site; the hook stays a no-op.
            cpu.on_irq_enabled = lambda _cpu: None
        # Local timer interrupts.
        self.register_irq_handler(IPI_RESCHED_IRQ, "irq.ipi",
                                  lambda cpu_idx: None)
        for i in range(self.ncpus):
            self.register_irq_handler(LOCAL_TIMER_IRQ_BASE + i, "tick.cost",
                                      self._tick_action)
        self.local_timer.start_all()
        # Shield support.
        if self.config.shield_support:
            self.shield = ShieldController(self.machine, self)
        from repro.kernel.procfs import ProcFs
        self.procfs = ProcFs(self)
        # ksoftirqd threads.
        if self.config.ksoftirqd:
            for i in range(self.ncpus):
                self.ksoftirqd_tasks[i] = self.create_task(
                    f"ksoftirqd/{i}", self._ksoftirqd_body(i),
                    policy=SchedPolicy.OTHER, nice=19,
                    affinity=CpuMask.single(i), kernel_thread=True)

    # ==================================================================
    # Task lifecycle
    # ==================================================================
    def create_task(self, name: str, body: Generator,
                    policy: SchedPolicy = SchedPolicy.OTHER,
                    rt_prio: int = 0, nice: int = 0,
                    affinity: Optional[CpuMask] = None,
                    kernel_thread: bool = False) -> Task:
        """Create and immediately wake a task."""
        pid = self._next_pid
        self._next_pid += 1
        task = Task(pid, name, body, policy=policy, rt_prio=rt_prio,
                    nice=nice, affinity=affinity,
                    kernel_thread=kernel_thread)
        if not task.requested_affinity:
            task.requested_affinity = CpuMask.all(self.ncpus)
        self.tasks[pid] = task
        self.reapply_task_affinity(task)
        task.counter = self.config.timeslice_ticks
        task.time_slice = self.config.timeslice_ticks
        task.last_cpu = task.effective_affinity.first()
        tp = self.sim.tp
        if tp.enabled:
            tp.task_create(self.sim.now, task.last_cpu, name)
        self._make_runnable(task, from_cpu=None)
        return task

    def iter_tasks(self):
        """All non-exited tasks (shield interface)."""
        return [t for t in self.tasks.values() if t.state is not TaskState.EXITED]

    def _task_exit(self, task: Task, cpu_idx: int, value: Any) -> None:
        task.state = TaskState.EXITED
        task.exit_code = value if isinstance(value, int) else 0
        task.on_cpu = None
        task.last_cpu = cpu_idx
        if task.preempt_count != 0:
            raise KernelPanic(f"{task.name} exited holding locks "
                              f"(preempt_count={task.preempt_count})")
        self.current[cpu_idx] = None
        tp = self.sim.tp
        if tp.enabled:
            tp.task_exit(self.sim.now, cpu_idx, task.name)
        self.schedule(cpu_idx)

    # ==================================================================
    # Affinity / shield plumbing
    # ==================================================================
    def reapply_task_affinity(self, task: Task) -> None:
        """Recompute the effective mask; migrate if now disallowed."""
        if self.shield is not None:
            task.effective_affinity = self.shield.effective_task_affinity(
                task.requested_affinity)
        else:
            task.effective_affinity = task.requested_affinity
        if task.state is TaskState.READY:
            queued_ok = True
            # O(1) keeps tasks on per-CPU queues; requeue if misplaced.
            where = getattr(self.scheduler, "_where", None)
            if where is not None:
                qcpu = where.get(task.pid)
                queued_ok = qcpu is None or qcpu in task.effective_affinity
            if not queued_ok:
                self.stats.migrations += 1
                self.scheduler.requeue(task)
        elif (task.state is TaskState.RUNNING and task.on_cpu is not None
              and task.on_cpu not in task.effective_affinity):
            # Push the task off the now-forbidden CPU at the earliest
            # legal opportunity.
            self.stats.migrations += 1
            self.need_resched[task.on_cpu] = True
            self.resched_cpu(task.on_cpu)

    def set_task_affinity(self, task: Task, mask: CpuMask) -> None:
        task.requested_affinity = mask
        self.reapply_task_affinity(task)

    def set_local_timer_enabled(self, cpu_index: int, enabled: bool) -> None:
        """Shield interface: gate one CPU's local timer tick."""
        self.local_timer.set_enabled(cpu_index, enabled)

    def _irq_affinity_changed(self, desc: IrqDescriptor) -> None:
        if self.shield is not None:
            desc.effective_affinity = self.shield.effective_irq_affinity(
                desc.requested_affinity)
        else:
            desc.effective_affinity = desc.requested_affinity

    # ==================================================================
    # Wakeups and preemption decisions
    # ==================================================================
    def wake_up(self, wq: WaitQueue, all_waiters: bool = False,
                from_cpu: Optional[int] = None) -> int:
        """Wake tasks blocked on *wq*; returns the number woken."""
        tasks = wq.pop_all() if all_waiters else wq.pop_one()
        for task in tasks:
            task.waiting_on = None
            self._make_runnable(task, from_cpu)
        return len(tasks)

    def wake_task(self, task: Task, from_cpu: Optional[int] = None) -> None:
        """Wake a specific blocked task (timer expiry path)."""
        if task.state is not TaskState.BLOCKED:
            return
        if task.waiting_on is not None:
            task.waiting_on.remove(task)
            task.waiting_on = None
        self._make_runnable(task, from_cpu)

    def _make_runnable(self, task: Task, from_cpu: Optional[int]) -> None:
        if task.state in (TaskState.READY, TaskState.RUNNING):
            return
        task.state = TaskState.READY
        target = self.scheduler.enqueue(task)
        tp = self.sim.tp
        if tp.enabled:
            tp.sched_wake(self.sim.now, target, task.name,
                          -1 if from_cpu is None else from_cpu)
        self._check_preempt(target, task, from_cpu)

    def _check_preempt(self, target: int, task: Task,
                       from_cpu: Optional[int]) -> None:
        cur = self.current[target]
        if cur is not None and not task.beats(cur):
            return
        self.need_resched[target] = True
        if target == from_cpu:
            # Same CPU: the interrupt-return / op-boundary check that
            # is already in progress will perform the switch.
            return
        self.resched_cpu(target)

    def resched_cpu(self, target: int) -> None:
        """Force *target* to notice ``need_resched``.

        Idle and frame-free: schedule right away (the 2.4 idle loop
        polls need_resched).  Otherwise deliver a reschedule IPI so the
        interrupt-return path performs the check.
        """
        cpu = self.machine.cpus[target]
        if self.current[target] is None and not cpu.busy:
            if not self._scheduling[target]:
                self.schedule(target)
            return
        self._send_ipi(target)

    def _send_ipi(self, target: int) -> None:
        self.stats.ipis += 1
        cpu = self.machine.cpus[target]
        if cpu.irqs_enabled:
            self._do_irq_on(cpu, self._ipi_desc)
        else:
            cpu.pend_irq(self._ipi_desc)

    def _can_preempt_now(self, cpu_idx: int) -> bool:
        """May a context switch be performed on this CPU right now?"""
        cpu = self.machine.cpus[cpu_idx]
        if cpu.hss_count or cpu.spin_count:
            return False
        task = self.current[cpu_idx]
        if task is None:
            return True
        if task.preempt_count > 0:
            return False
        if task.in_kernel:
            return self.config.preemptible
        return True

    # ==================================================================
    # The scheduler entry point
    # ==================================================================
    def schedule(self, cpu_idx: int) -> None:
        """Pick the next task for *cpu_idx* and switch to it."""
        if self._scheduling[cpu_idx]:
            raise KernelPanic(f"recursive schedule() on cpu{cpu_idx}")
        self._scheduling[cpu_idx] = True
        try:
            self.need_resched[cpu_idx] = False
            cpu = self.machine.cpus[cpu_idx]
            prev = self.current[cpu_idx]
            if prev is not None:
                self._deschedule_current(cpu, prev)
            nxt = self.scheduler.pick_next(cpu_idx)
        finally:
            # The guard covers only queue manipulation; the switch and
            # task continuation below may legitimately re-enter
            # schedule() (e.g. the resumed task immediately blocks).
            self._scheduling[cpu_idx] = False
        if nxt is None:
            return  # idle
        if nxt is prev:
            # Chosen again: no switch cost, just resume.
            self._install_task(cpu_idx, nxt)
            self._continue_task(nxt, cpu_idx)
            return
        self.stats.context_switches += 1
        cost = self.scheduler.switch_cost_ns(cpu_idx)
        frame = ExecFrame(FrameKind.SWITCH, cost,
                          lambda f: self._finish_switch(cpu_idx, nxt),
                          label=(f"switch->{nxt.name}"
                                 if self.sim.trace.enabled else "switch"))
        cpu.push_frame(frame)

    def _deschedule_current(self, cpu: LogicalCpu, prev: Task) -> None:
        """Take *prev* off the CPU, saving its continuation."""
        top = cpu.top
        if (top is not None and top.kind is FrameKind.TASK
                and top.owner is prev):
            # Preempted mid-compute: bank the remaining work.
            cpu._pause_top()
            prev.partial = (int(top.remaining), prev.current_compute)
            prev.frame = None
            cpu.pop_frame(top)
        prev.on_cpu = None
        prev.last_cpu = cpu.index
        self.current[cpu.index] = None
        tp = self.sim.tp
        if prev.state is TaskState.RUNNING:
            # Involuntary preemption: back on the queue, at the front.
            prev.state = TaskState.READY
            self.stats.preemptions += 1
            target = self.scheduler.enqueue(prev, preempted=True)
            if tp.enabled:
                tp.sched_desched(self.sim.now, cpu.index, prev.name,
                                 True, target)
            if target != cpu.index:
                # The task migrated (affinity change / shield enable):
                # the destination CPU must notice it, especially a
                # shielded CPU whose local timer is off.
                self._check_preempt(target, prev, from_cpu=cpu.index)
        elif tp.enabled:
            # Voluntary: the task blocked/exited before schedule() ran.
            tp.sched_desched(self.sim.now, cpu.index, prev.name,
                             prev.state is TaskState.READY, cpu.index)

    def _finish_switch(self, cpu_idx: int, nxt: Task) -> None:
        self._install_task(cpu_idx, nxt)
        self._continue_task(nxt, cpu_idx)

    def _install_task(self, cpu_idx: int, task: Task) -> None:
        task.state = TaskState.RUNNING
        task.on_cpu = cpu_idx
        task.last_cpu = cpu_idx
        task.switches += 1
        self.current[cpu_idx] = task
        tp = self.sim.tp
        if tp.enabled:
            tp.sched_switch(self.sim.now, cpu_idx, task.name)

    # ==================================================================
    # Task stepping
    # ==================================================================
    def _continue_task(self, task: Task, cpu_idx: int) -> None:
        """Resume a task's continuation on its CPU."""
        if task.partial is not None:
            remaining, compute = task.partial
            task.partial = None
            self._run_compute(task, cpu_idx, compute, remaining)
        elif task.pending_op is not None:
            pending = task.pending_op
            task.pending_op = None
            self._dispatch(task, cpu_idx, pending)
        else:
            self._step(task, cpu_idx)

    def _step(self, task: Task, cpu_idx: int) -> None:
        """Advance the task generator, op by op.

        The trivial ops (syscall entry, instrumentation calls, wakes,
        flag twiddles) are handled inline in a loop rather than through
        :meth:`_dispatch` recursion: at a few hundred thousand ops per
        figure run, one Python frame per op is the difference between
        the profile being dominated by the model or by the plumbing.
        The loop re-runs the op-boundary checks (interrupt slipped in,
        pending reschedule) before every ``send``, exactly as the
        recursive formulation did.
        """
        cpu = self.machine.cpus[cpu_idx]
        need_resched = self.need_resched
        send = task.body.send
        while True:
            if cpu.hss_count:
                # An interrupt (e.g. a self-IPI raised by the op we
                # just dispatched) slipped in at this op boundary.  Let
                # it run; the quiescent path resumes this task after.
                return
            if (need_resched[cpu_idx] and task.preempt_count == 0
                    and self._can_preempt_now(cpu_idx)):
                # Op boundary: honour a pending reschedule before
                # running the next op (approximates instruction-level
                # preemption).
                self.schedule(cpu_idx)
                return
            try:
                value, task.send_value = task.send_value, None
                next_op = send(value)
            except StopIteration as stop:
                self._task_exit(task, cpu_idx, stop.value)
                return
            self.dispatching_cpu = cpu_idx
            t = type(next_op)
            if t is op.Compute:
                self._run_compute(task, cpu_idx, next_op, next_op.work)
                return
            if t is op.EnterSyscall:
                task.in_syscall += 1
                task.syscall_name = next_op.name
                self.stats.syscalls += 1
                tp = self.sim.tp
                if tp.enabled:
                    tp.syscall_entry(self.sim.now, cpu_idx, task.name,
                                     next_op.name)
                continue
            if t is op.Call:
                task.send_value = next_op.fn(*next_op.args)
                continue
            if t is op.PreemptPoint:
                if (need_resched[cpu_idx] and task.preempt_count == 0
                        and self.current[cpu_idx] is task):
                    self.schedule(cpu_idx)
                    return
                continue
            if t is op.Wake:
                self.wake_up(next_op.wq, all_waiters=next_op.all_waiters,
                             from_cpu=cpu_idx)
                continue
            if t is op.SetScheduler:
                task.policy = next_op.policy
                task.rt_prio = next_op.rt_prio
                task.nice = next_op.nice
                continue
            if t is op.MlockAll:
                task.mm_locked = True
                continue
            # The remaining ops (locks, blocking, sleeps, syscall exit,
            # affinity, exit...) change the execution context; hand
            # them to the full dispatcher and stop stepping here.
            self._dispatch(task, cpu_idx, next_op)
            return

    def _dispatch(self, task: Task, cpu_idx: int, o: op.Op) -> None:
        """Execute one primitive op for the current task."""
        self.dispatching_cpu = cpu_idx
        t = type(o)
        if t is op.Compute:
            self._run_compute(task, cpu_idx, o, o.work)
        elif t is op.Acquire:
            self._acquire(task, cpu_idx, o.lock)
        elif t is op.Release:
            self._release(task, cpu_idx, o.lock)
        elif t is op.Block:
            self._block(task, cpu_idx, o.wq)
        elif t is op.SemDown:
            self._sem_down(task, cpu_idx, o.sem)
        elif t is op.SemUp:
            self._sem_up(task, cpu_idx, o.sem)
        elif t is op.Sleep:
            self._sleep(task, cpu_idx, o.duration)
        elif t is op.EnterSyscall:
            task.in_syscall += 1
            task.syscall_name = o.name
            self.stats.syscalls += 1
            tp = self.sim.tp
            if tp.enabled:
                tp.syscall_entry(self.sim.now, cpu_idx, task.name, o.name)
            self._step(task, cpu_idx)
        elif t is op.ExitSyscall:
            self._exit_syscall(task, cpu_idx)
        elif t is op.PreemptPoint:
            if (self.need_resched[cpu_idx] and task.preempt_count == 0
                    and self.current[cpu_idx] is task):
                self.schedule(cpu_idx)
            else:
                self._step(task, cpu_idx)
        elif t is op.YieldCpu:
            self._yield_cpu(task, cpu_idx)
        elif t is op.SetScheduler:
            task.policy = o.policy
            task.rt_prio = o.rt_prio
            task.nice = o.nice
            self._step(task, cpu_idx)
        elif t is op.SetAffinity:
            self.set_task_affinity(task, o.mask)
            if self.current[cpu_idx] is task:
                self._step(task, cpu_idx)
            # else: reapply pushed us off this CPU; we resume elsewhere.
        elif t is op.MlockAll:
            task.mm_locked = True
            self._step(task, cpu_idx)
        elif t is op.Call:
            task.send_value = o.fn(*o.args)
            self._step(task, cpu_idx)
        elif t is op.Wake:
            self.wake_up(o.wq, all_waiters=o.all_waiters, from_cpu=cpu_idx)
            self._step(task, cpu_idx)
        elif t is op.Exit:
            self._task_exit(task, cpu_idx, o.code)
        else:
            raise KernelPanic(f"{task.name} yielded unknown op {o!r}")

    # ------------------------------------------------------------------
    def _run_compute(self, task: Task, cpu_idx: int, o: op.Compute,
                     work: int) -> None:
        cpu = self.machine.cpus[cpu_idx]
        task.current_compute = o
        frame = ExecFrame(FrameKind.TASK, work if work > 0 else 0,
                          self._compute_done,
                          label=o.label or ("kcode" if o.kernel else "ucode"),
                          owner=task)
        task.frame = frame
        cpu.push_frame(frame)

    def _compute_done(self, frame: ExecFrame) -> None:
        # The completion callback is the bound method itself (one per
        # kernel, not one closure per compute op); everything it needs
        # lives on the frame.  frame.work is this frame's portion only,
        # so preempted-and-resumed segments are not double counted.
        task = frame.owner
        o = task.current_compute
        task.frame = None
        task.current_compute = None
        if o.kernel:
            task.kernel_ns += frame.work
        else:
            task.user_ns += frame.work
        self._step(task, task.on_cpu)

    # ------------------------------------------------------------------
    # Spinlocks
    # ------------------------------------------------------------------
    def _acquire(self, task: Task, cpu_idx: int, lock: SpinLock) -> None:
        cpu = self.machine.cpus[cpu_idx]
        task.preempt_count += 1
        if task.preempt_count == 1:
            tp = self.sim.tp
            if tp.enabled:
                tp.preempt_off(self.sim.now, cpu_idx, task.name)
        if lock.irq_disabling:
            cpu.irq_disable()
            task.irq_disable_count += 1
        if not lock.held:
            lock.take(task, self.sim.now)
            self._step(task, cpu_idx)
            return
        if lock.owner is task:
            raise KernelPanic(f"{task.name}: recursive acquire of {lock.name}")
        lock.enqueue_waiter(task)
        frame = ExecFrame(FrameKind.SPIN, None,
                          lambda f: self._spin_done(task, cpu_idx, lock),
                          label=(f"spin:{lock.name}"
                                 if self.sim.trace.enabled else "spin"),
                          owner=task)
        task.spin_frame = frame
        task.spin_started = self.sim.now
        cpu.push_frame(frame)

    def _spin_done(self, task: Task, cpu_idx: int, lock: SpinLock) -> None:
        lock.account_spin(self.sim.now - task.spin_started)
        task.spin_frame = None
        self._step(task, cpu_idx)

    def _release(self, task: Task, cpu_idx: int, lock: SpinLock) -> None:
        cpu = self.machine.cpus[cpu_idx]
        nxt = lock.drop(task, self.sim.now)
        if nxt is not None:
            # Direct handoff preserves FIFO fairness under contention.
            lock.take(nxt, self.sim.now)
            spinner_cpu = self.machine.cpus[nxt.on_cpu]
            spinner_cpu.grant_spin(nxt.spin_frame)
        task.preempt_count -= 1
        if task.preempt_count < 0:
            raise KernelPanic(f"{task.name}: preempt_count underflow")
        if task.preempt_count == 0:
            tp = self.sim.tp
            if tp.enabled:
                tp.preempt_on(self.sim.now, cpu_idx, task.name)
        if lock.irq_disabling:
            task.irq_disable_count -= 1
            cpu.irq_enable()
            if cpu.irqs_enabled and cpu.pending_irqs:
                # spin_unlock_irqrestore: a pended interrupt fires
                # before the next instruction of the task runs.  The
                # task continues via the quiescent path afterwards.
                pended = cpu.take_pending_irq()
                self._do_irq_on(cpu, pended)
                return
        if (task.preempt_count == 0 and self.need_resched[cpu_idx]
                and self.config.preemptible):
            # preempt_enable(): with the preemption patch, dropping the
            # last lock is itself a reschedule point.  Without it the
            # pending switch waits for syscall exit / interrupt return.
            self.schedule(cpu_idx)
            return
        self._step(task, cpu_idx)

    # ------------------------------------------------------------------
    # Blocking and sleeping
    # ------------------------------------------------------------------
    def _block(self, task: Task, cpu_idx: int, wq: WaitQueue) -> None:
        if task.preempt_count > 0:
            raise KernelPanic(
                f"{task.name} blocking on {wq.name} while holding a "
                f"spinlock (preempt_count={task.preempt_count})")
        task.state = TaskState.BLOCKED
        task.waiting_on = wq
        wq.add(task)
        self.schedule(cpu_idx)

    def _sem_down(self, task: Task, cpu_idx: int, sem) -> None:
        """P(): take a unit or block FIFO until one is handed over."""
        if task.preempt_count > 0:
            raise KernelPanic(
                f"{task.name} sleeping on semaphore {sem.name} under a "
                f"spinlock (preempt_count={task.preempt_count})")
        if sem.try_down(task):
            self._step(task, cpu_idx)
            return
        # try_down queued the task on the semaphore's wait list; it is
        # woken by the owner's up() via _sem_up below.
        task.state = TaskState.BLOCKED
        self.schedule(cpu_idx)

    def _sem_up(self, task: Task, cpu_idx: int, sem) -> None:
        """V(): hand the unit to the oldest waiter, if any."""
        waiter = sem.up()
        if waiter is not None:
            self._make_runnable(waiter, from_cpu=cpu_idx)
        self._step(task, cpu_idx)

    def _sleep(self, task: Task, cpu_idx: int, duration: int) -> None:
        if task.preempt_count > 0:
            raise KernelPanic(f"{task.name} sleeping under a spinlock")
        task.state = TaskState.BLOCKED
        task.sleep_event = self.sim.after(
            max(0, duration), lambda: self._sleep_expired(task),
            label=(f"sleep:{task.name}"
                   if self.sim.trace.enabled else None))
        self.schedule(cpu_idx)

    def _sleep_expired(self, task: Task) -> None:
        task.sleep_event = None
        if task.state is TaskState.BLOCKED:
            self._make_runnable(task, from_cpu=None)

    def _yield_cpu(self, task: Task, cpu_idx: int) -> None:
        task.state = TaskState.READY
        self.current[cpu_idx] = None
        task.on_cpu = None
        task.last_cpu = cpu_idx
        target = self.scheduler.enqueue(task)
        tp = self.sim.tp
        if tp.enabled:
            tp.sched_desched(self.sim.now, cpu_idx, task.name, True, target)
        self.schedule(cpu_idx)

    def _exit_syscall(self, task: Task, cpu_idx: int) -> None:
        if task.in_syscall <= 0:
            raise KernelPanic(f"{task.name}: syscall exit underflow")
        task.in_syscall -= 1
        task.syscall_name = None
        tp = self.sim.tp
        if tp.enabled:
            tp.syscall_exit(self.sim.now, cpu_idx, task.name)
        # 2.4's ret_from_sys_call drains pending softirqs (the
        # handle_softirq path in entry.S), so loopback work raised by
        # this syscall usually runs here.  Kernels with the RedHawk
        # softirq rework skip this drain; their backlog waits for an
        # interrupt exit or ksoftirqd -- and can then run for
        # milliseconds on top of whatever was interrupted (the
        # mechanism behind Figure 6's latency tail).
        if (self.config.softirq_syscall_exit_drain
                and self.softirqq[cpu_idx].pending
                and not self.in_softirq[cpu_idx]):
            self.do_softirq(cpu_idx)
            return  # the quiescent path resumes the task afterwards
        if self.need_resched[cpu_idx] and self._can_preempt_now(cpu_idx):
            self.schedule(cpu_idx)
            return
        self._step(task, cpu_idx)

    # ==================================================================
    # Hardirq flow
    # ==================================================================
    def register_irq_handler(self, irq: int, cost_key: str,
                             action: Callable[[int], None]) -> None:
        """Install the handler (duration key + completion action)."""
        self._irq_table[irq] = (cost_key, action)

    def register_driver(self, path: str, driver: Any) -> None:
        """Expose a driver at a device path (``/dev/rtc``...)."""
        if path in self.drivers:
            raise KernelPanic(f"driver already registered at {path}")
        self.drivers[path] = driver

    def _deliver_irq(self, cpu: LogicalCpu, desc: IrqDescriptor) -> None:
        """APIC hook: an interrupt arrived at *cpu*."""
        if not cpu.irqs_enabled:
            cpu.pend_irq(desc)
            return
        self._do_irq_on(cpu, desc)

    def _do_irq_on(self, cpu: LogicalCpu, desc: IrqDescriptor) -> None:
        self.stats.hardirqs += 1
        cost_key, _action = self._irq_table.get(
            desc.irq, ("irq.handler.default", _noop_action))
        cpu.irq_disable()
        tp = self.sim.tp
        if tp.enabled:
            tp.irq_entry(self.sim.now, cpu.index, desc.irq, desc.name)
        entry = self.config.timing.sample("irq.entry", self.rng)
        handler = self.config.timing.sample(cost_key, self.rng)
        frame = ExecFrame(FrameKind.HARDIRQ, entry + handler,
                          lambda f: self._hardirq_done(cpu, desc),
                          label=(f"irq{desc.irq}:{desc.name}"
                                 if self.sim.trace.enabled else "irq"),
                          owner=desc)
        cpu.push_frame(frame)

    def _hardirq_done(self, cpu: LogicalCpu, desc: IrqDescriptor) -> None:
        _cost_key, action = self._irq_table.get(
            desc.irq, ("irq.handler.default", _noop_action))
        action(cpu.index)
        # --- irq_exit ---------------------------------------------------
        tp = self.sim.tp
        if tp.enabled:
            tp.irq_exit(self.sim.now, cpu.index, desc.irq, desc.name)
        cpu.irq_enable()
        if cpu.irqs_enabled and cpu.pending_irqs:
            pended = cpu.take_pending_irq()
            self._do_irq_on(cpu, pended)
            return  # the pended irq's own exit continues the chain
        if cpu.in_kind(FrameKind.HARDIRQ):
            return  # nested interrupt: the outer exit handles the rest
        if self.softirqq[cpu.index].pending and not self.in_softirq[cpu.index]:
            self.do_softirq(cpu.index)
            return
        self._ret_from_intr(cpu.index)

    def _ret_from_intr(self, cpu_idx: int) -> None:
        """The return-from-interrupt reschedule check."""
        if (self.need_resched[cpu_idx] and not self._scheduling[cpu_idx]
                and self._can_preempt_now(cpu_idx)):
            self.schedule(cpu_idx)
        # Otherwise the interrupted frame resumes automatically.

    # ==================================================================
    # Softirq flow
    # ==================================================================
    def raise_softirq(self, cpu_idx: int, vec: SoftirqVector, work_ns: int,
                      action: Optional[Callable[[], None]] = None,
                      from_irq: bool = False) -> None:
        """Queue bottom-half work on *cpu_idx*.

        Work raised from interrupt context is drained at the coming
        interrupt exit; work raised from task context (loopback
        ``netif_rx``) wakes ksoftirqd, 2.4.10-style, and otherwise
        waits for the next interrupt exit on this CPU.
        """
        queue = self.softirqq[cpu_idx]
        queue.raise_softirq(vec, work_ns, action)
        tp = self.sim.tp
        if tp.enabled:
            tp.softirq_raise(self.sim.now, cpu_idx, int(vec))
        if not from_irq and self.config.ksoftirqd:
            self._wake_ksoftirqd(cpu_idx)

    def do_softirq(self, cpu_idx: int) -> None:
        """Drain bottom-half work, bounded by the exit budget."""
        if self.in_softirq[cpu_idx]:
            return
        self.in_softirq[cpu_idx] = True
        self._softirq_step(cpu_idx, self.config.softirq_exit_budget_ns)

    def _softirq_step(self, cpu_idx: int, budget: int) -> None:
        queue = self.softirqq[cpu_idx]
        if budget <= 0:
            self.in_softirq[cpu_idx] = False
            if queue.pending and self.config.ksoftirqd:
                self._wake_ksoftirqd(cpu_idx)
            self._ret_from_intr(cpu_idx)
            return
        item = queue.take_next()
        if item is None:
            self.in_softirq[cpu_idx] = False
            self._ret_from_intr(cpu_idx)
            return
        vec, work, action = item
        self.stats.softirq_items += 1
        tp = self.sim.tp
        if tp.enabled:
            tp.softirq_entry(self.sim.now, cpu_idx, int(vec))
        cpu = self.machine.cpus[cpu_idx]
        frame = ExecFrame(
            FrameKind.SOFTIRQ, work,
            lambda f: self._softirq_item_done(cpu_idx, budget - work, vec,
                                              action),
            label=(f"softirq:{vec.name}"
                   if self.sim.trace.enabled else "softirq"))
        cpu.push_frame(frame)

    def _softirq_item_done(self, cpu_idx: int, budget_left: int, vec,
                           action: Optional[Callable[[], None]]) -> None:
        tp = self.sim.tp
        if tp.enabled:
            tp.softirq_exit(self.sim.now, cpu_idx, int(vec))
        if action is not None:
            action()
        self._softirq_step(cpu_idx, budget_left)

    def _wake_ksoftirqd(self, cpu_idx: int) -> None:
        task = self.ksoftirqd_tasks[cpu_idx]
        if task is not None and task.state is TaskState.BLOCKED:
            self.wake_task(task, from_cpu=cpu_idx)

    def _ksoftirqd_body(self, cpu_idx: int) -> Generator:
        """Per-CPU kernel thread absorbing deferred softirq work."""
        queue = self.softirqq[cpu_idx]
        wq = self.ksoftirqd_wqs[cpu_idx]
        while True:
            item = queue.take_next()
            if item is None:
                yield op.Block(wq)
                continue
            vec, work, action = item
            self.stats.softirq_items += 1
            tp = self.sim.tp
            if tp.enabled:
                tp.softirq_entry(self.sim.now, cpu_idx, int(vec))
            yield op.Compute(work, kernel=True,
                             label=(f"ksoftirqd:{vec.name}"
                                    if self.sim.trace.enabled
                                    else "ksoftirqd"))
            tp = self.sim.tp
            if tp.enabled:
                tp.softirq_exit(self.sim.now, cpu_idx, int(vec))
            if action is not None:
                action()

    # ==================================================================
    # Local timer
    # ==================================================================
    def deliver_local_timer(self, cpu_idx: int) -> None:
        """LocalTimer hook: tick interrupt for *cpu_idx*."""
        cpu = self.machine.cpus[cpu_idx]
        desc = self._ltmr_descs[cpu_idx]
        if not cpu.irqs_enabled:
            cpu.pend_irq(desc)
            return
        self._do_irq_on(cpu, desc)

    def _tick_action(self, cpu_idx: int) -> None:
        """Local timer handler body: accounting + scheduler tick."""
        tp = self.sim.tp
        if tp.enabled:
            tp.timer_tick(self.sim.now, cpu_idx)
        if cpu_idx == 0:
            self.jiffies += 1
            # Timer-wheel processing runs in the TIMER softirq.
            work = self.config.timing.sample("tick.timer_softirq", self.rng)
            if work > 0:
                self.raise_softirq(cpu_idx, SoftirqVector.TIMER, work,
                                   from_irq=True)
        cur = self.current[cpu_idx]
        if cur is None:
            # Idle loop: pull queued work (idle balancing happens from
            # the tick in the real schedulers too).
            if self.scheduler.runnable_count() > 0:
                self.need_resched[cpu_idx] = True
        elif self.scheduler.task_tick(cpu_idx, cur):
            self.need_resched[cpu_idx] = True

    # ==================================================================
    # Quiescent CPU handling
    # ==================================================================
    def _on_quiescent(self, cpu: LogicalCpu) -> None:
        """The CPU's frame stack emptied; keep the world turning."""
        idx = cpu.index
        if self._scheduling[idx]:
            return
        task = self.current[idx]
        if task is not None and task.state is TaskState.RUNNING:
            self._continue_task(task, idx)
        elif task is None and self.need_resched[idx]:
            self.schedule(idx)

    # ==================================================================
    # Introspection
    # ==================================================================
    def runnable_summary(self) -> Dict[str, Any]:
        """Snapshot for debugging and tests."""
        return {
            "current": {i: (t.name if t else None)
                        for i, t in enumerate(self.current)},
            "queued": [t.name for t in self.scheduler.queued_tasks()],
            "need_resched": list(self.need_resched),
            "switches": self.stats.context_switches,
        }


def _noop_action(cpu_idx: int) -> None:
    """Default handler action for unregistered interrupts."""
