"""Kernel feature flags and cost model.

A :class:`KernelConfig` captures everything that differs between the
kernels the paper benchmarks:

* ``kernel.org 2.4.21`` -- no preemption, no low-latency patches,
  goodness scheduler, no shield support, softirqs drained fully at
  interrupt exit (multi-millisecond bottom-half bursts).
* ``RedHawk 1.4`` -- MontaVista preemption patch, Morton low-latency
  patches (critical sections capped, reschedule points inserted),
  Molnar O(1) scheduler, shielded-processor support, the BKL-avoidance
  ioctl flag, and bounded softirq processing at interrupt exit.

Factory functions building the calibrated configs live in
:mod:`repro.configs.kernels`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.kernel.timing import TimingModel


@dataclass(slots=True)
class KernelConfig:
    """Feature flags and timing table for one kernel build."""

    name: str = "generic"
    version: str = "2.4.21"

    # --- patches / features -------------------------------------------
    #: MontaVista preemption patch: tasks executing in the kernel can be
    #: preempted wherever ``preempt_count == 0``.
    preemptible: bool = False
    #: Morton low-latency patches: long kernel algorithms are broken up
    #: with explicit reschedule points and their critical sections are
    #: capped (reflected in the timing table used with this flag).
    low_latency: bool = False
    #: Molnar O(1) scheduler (2.5 backport) vs the 2.4 goodness scheduler.
    o1_scheduler: bool = False
    #: Concurrent's shielded-processor support (/proc/shield).
    shield_support: bool = False
    #: Generic-ioctl change: honour a driver flag saying the BKL need
    #: not be taken around the driver's ioctl routine.
    bkl_ioctl_flag: bool = False
    #: RedHawk softirq rework: bound the bottom-half work performed at
    #: interrupt exit, deferring the remainder to ksoftirqd.
    softirq_exit_budget_ns: int = 50_000_000
    #: Stock 2.4 drains pending softirqs in ret_from_sys_call
    #: (entry.S's handle_softirq).  RedHawk's softirq rework removes
    #: that drain (syscall return stays fast; work goes to interrupt
    #: exit and ksoftirqd) -- which is why its bottom-half bursts at
    #: interrupt return can reach the softirq budget in one go.
    softirq_syscall_exit_drain: bool = True
    #: Spawn per-CPU ksoftirqd threads to absorb deferred softirq work.
    ksoftirqd: bool = True
    #: POSIX timers / high-res timers patch: nanosleep honoured at ns
    #: resolution instead of being rounded up to jiffies.
    highres_timers: bool = False

    # --- clock ---------------------------------------------------------
    #: Local timer frequency; 2.4-era default HZ=100 (10 ms tick).
    hz: int = 100
    #: Default SCHED_OTHER timeslice, in ticks.
    timeslice_ticks: int = 6

    # --- cost model ------------------------------------------------------
    timing: TimingModel = field(default_factory=TimingModel)

    def with_overrides(self, **changes) -> "KernelConfig":
        """Copy with some fields replaced (ablation support)."""
        return replace(self, **changes)

    @property
    def tick_ns(self) -> int:
        return 1_000_000_000 // self.hz

    def describe(self) -> str:
        """One-line feature summary for report headers."""
        feats = []
        if self.preemptible:
            feats.append("preempt")
        if self.low_latency:
            feats.append("low-latency")
        feats.append("O(1)" if self.o1_scheduler else "goodness")
        if self.shield_support:
            feats.append("shield")
        if self.bkl_ioctl_flag:
            feats.append("bkl-ioctl-flag")
        return f"{self.name} ({self.version}; {', '.join(feats)}; HZ={self.hz})"
