"""Scheduler interface.

Both schedulers implement the same contract so the kernel can be
booted with either.  The contract keeps only *non-running* runnable
tasks in scheduler queues; the per-CPU "current" pointer lives in the
kernel.  Wakeup placement (which CPU a newly runnable task should
preempt) is part of the scheduler because 2.4's ``reschedule_idle``
and O(1)'s ``try_to_wake_up`` differ in exactly that decision.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


class Scheduler:
    """Abstract scheduler."""

    name = "abstract"

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    # -- queue management ------------------------------------------------
    def enqueue(self, task: "Task", preempted: bool = False) -> int:
        """Insert a runnable, non-running task.

        Returns the CPU index the scheduler would like the task to run
        on (the wakeup-preemption target).  ``preempted`` marks a task
        that was involuntarily descheduled and should not lose its
        queue position.
        """
        raise NotImplementedError

    def dequeue(self, task: "Task") -> None:
        """Remove a task from the queues (blocking / exiting)."""
        raise NotImplementedError

    def requeue(self, task: "Task") -> int:
        """Re-place a queued task after an affinity change."""
        self.dequeue(task)
        return self.enqueue(task)

    def pick_next(self, cpu_index: int) -> Optional["Task"]:
        """Select and remove the best task for *cpu_index* (or None)."""
        raise NotImplementedError

    # -- periodic work -----------------------------------------------------
    def task_tick(self, cpu_index: int, task: "Task") -> bool:
        """Charge one timer tick to *task*; True if it should yield."""
        raise NotImplementedError

    # -- costs -------------------------------------------------------------
    def switch_cost_ns(self, cpu_index: int) -> int:
        """Context-switch overhead, including pick-next work."""
        raise NotImplementedError

    # -- introspection -------------------------------------------------------
    def runnable_count(self) -> int:
        """Number of queued (non-running) runnable tasks."""
        raise NotImplementedError

    def queue_depth(self, cpu_index: int) -> int:
        """Tasks queued for one CPU (0 for global-queue schedulers,
        where placement balancing has no per-CPU queues to compare)."""
        return 0

    def queued_tasks(self) -> list:
        """Snapshot of queued tasks (tests / shield migration)."""
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------
    def _wakeup_target(self, task: "Task") -> int:
        """Common wakeup placement (2.4 ``reschedule_idle`` style).

        Preference order: the task's last CPU if idle, any idle CPU,
        then -- for real-time wakeups -- a CPU whose current task can
        be preempted *right now* (user mode), then the last CPU, then
        the allowed CPU with the lowest-priority current task.  The
        preemptible-now preference reflects that on real hardware the
        interrupt + reschedule usually land on the CPU that responds
        soonest (lowest-priority APIC arbitration favours idle and
        user-mode CPUs).
        """
        kernel = self.kernel
        allowed = [i for i in task.effective_affinity if i < kernel.ncpus]
        if not allowed:
            # Affinity references no online CPU; fall back to CPU 0 the
            # way the kernel falls back to the boot CPU.
            return 0
        idle = [i for i in allowed if kernel.current[i] is None]
        if idle:
            # Spread over idle CPUs: prefer the emptiest queue so a
            # burst of wakeups during one CPU's context switch does not
            # pile onto it.
            if (task.last_cpu in idle
                    and self.queue_depth(task.last_cpu)
                    <= min(self.queue_depth(i) for i in idle)):
                return task.last_cpu
            return min(idle, key=self.queue_depth)
        if task.policy.realtime:
            ready_now = [i for i in allowed if kernel._can_preempt_now(i)]
            if ready_now:
                if task.last_cpu in ready_now:
                    return task.last_cpu
                return ready_now[0]
        if task.last_cpu in allowed:
            return task.last_cpu
        best = allowed[0]
        best_prio = None
        for i in allowed:
            cur = kernel.current[i]
            prio = -1 if cur is None else cur.effective_prio()
            if best_prio is None or prio < best_prio:
                best, best_prio = i, prio
        return best
