"""The Linux 2.4 "goodness" scheduler.

One global runqueue; every ``schedule()`` scans all runnable tasks and
picks the one with the highest *goodness*:

* real-time tasks: ``1000 + rt_prio`` -- always above timesharing;
* timesharing tasks: remaining ``counter`` ticks plus a nice bonus,
  plus a small bonus for staying on the last CPU (cache affinity);
* a task with an exhausted counter has goodness 0 and waits for the
  epoch recalculation, which runs when every runnable task's counter
  is spent: ``counter = counter/2 + base_slice``.

The scan makes scheduling cost O(n) in runnable tasks, which is part
of why the paper's 2.4 baseline behaves poorly under load; the cost is
charged through :meth:`switch_cost_ns`.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.kernel.sched.base import Scheduler
from repro.kernel.task import SchedPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.task import Task

#: Goodness bonus for resuming on the CPU the task last ran on
#: (PROC_CHANGE_PENALTY in the 2.4 sources).
CPU_AFFINITY_BONUS = 15


class GoodnessScheduler(Scheduler):
    """Global-runqueue 2.4-style scheduler."""

    name = "goodness"

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self._queue: List["Task"] = []

    # ------------------------------------------------------------------
    def goodness(self, task: "Task", cpu_index: int) -> int:
        """The 2.4 goodness() function."""
        if task.policy.realtime:
            return 1000 + task.rt_prio
        if task.counter <= 0:
            return 0
        value = task.counter + (20 - task.nice)
        if task.last_cpu == cpu_index:
            value += CPU_AFFINITY_BONUS
        return value

    # ------------------------------------------------------------------
    def enqueue(self, task: "Task", preempted: bool = False) -> int:
        if task in self._queue:  # pragma: no cover - defensive
            return self._wakeup_target(task)
        if not task.policy.realtime and task.counter <= 0 and not preempted:
            # Fresh wakeups get at least one tick so they are schedulable
            # before the next recalculation (2.4 wakes inherit counter).
            task.counter = max(task.counter, 1)
        if getattr(task, "rr_requeue_tail", False):
            task.rr_requeue_tail = False
            self._queue.append(task)
        elif preempted:
            self._queue.insert(0, task)
        else:
            self._queue.append(task)
        return self._wakeup_target(task)

    def dequeue(self, task: "Task") -> None:
        try:
            self._queue.remove(task)
        except ValueError:
            pass

    def pick_next(self, cpu_index: int) -> Optional["Task"]:
        best = self._select(cpu_index)
        if best is None:
            return None
        self._queue.remove(best)
        return best

    def _select(self, cpu_index: int) -> Optional["Task"]:
        eligible = [t for t in self._queue
                    if cpu_index in t.effective_affinity]
        if not eligible:
            return None
        best = max(eligible, key=lambda t: self.goodness(t, cpu_index))
        if self.goodness(best, cpu_index) <= 0:
            # Every eligible timesharing task exhausted its counter:
            # run the epoch recalculation over *all* tasks, then retry.
            self._recalculate()
            best = max(eligible, key=lambda t: self.goodness(t, cpu_index))
            if self.goodness(best, cpu_index) <= 0:  # pragma: no cover
                return None
        return best

    def _recalculate(self) -> None:
        base = self.kernel.config.timeslice_ticks
        for task in self.kernel.iter_tasks():
            if not task.policy.realtime and task.state.value != "exited":
                task.counter = task.counter // 2 + base

    # ------------------------------------------------------------------
    def task_tick(self, cpu_index: int, task: "Task") -> bool:
        if task.policy is SchedPolicy.FIFO:
            return False
        if task.policy is SchedPolicy.RR:
            task.time_slice -= 1
            if task.time_slice <= 0:
                task.time_slice = self.kernel.config.timeslice_ticks
                task.rr_requeue_tail = True
                return True
            return False
        task.counter -= 1
        return task.counter <= 0

    # ------------------------------------------------------------------
    def switch_cost_ns(self, cpu_index: int) -> int:
        timing = self.kernel.config.timing
        rng = self.kernel.rng
        base = timing.sample("sched.switch", rng)
        scan = len(self._queue) * timing.sample("sched.goodness_scan", rng)
        return base + scan

    # ------------------------------------------------------------------
    def runnable_count(self) -> int:
        return len(self._queue)

    def queued_tasks(self) -> list:
        return list(self._queue)
