"""Scheduling: the 2.4 goodness scheduler and the O(1) scheduler."""

from repro.kernel.sched.base import Scheduler
from repro.kernel.sched.goodness import GoodnessScheduler
from repro.kernel.sched.o1 import O1Scheduler

__all__ = ["Scheduler", "GoodnessScheduler", "O1Scheduler"]
