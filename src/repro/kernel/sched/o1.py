"""Ingo Molnar's O(1) scheduler (the 2.5 backport RedHawk ships).

Per-CPU runqueues, each with *active* and *expired* priority arrays.
An array is a bitmap of occupied priority levels plus a FIFO list per
level; pick-next finds the highest occupied bit and takes the list
head -- constant time regardless of load, which is the property the
paper's "scheduling overhead which is both constant and minimal"
sentence refers to.

Timesharing tasks whose timeslice expires move to the expired array;
when the active array drains the two arrays swap.  Real-time FIFO
tasks never expire; RR tasks round-robin within their priority level.
A CPU whose arrays are empty pulls a migratable task from the busiest
other runqueue (idle balancing).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, TYPE_CHECKING

from repro.kernel.sched.base import Scheduler
from repro.kernel.task import SchedPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.task import Task


class PrioArray:
    """Bitmap-indexed priority array."""

    def __init__(self) -> None:
        self.bitmap = 0
        self.lists: Dict[int, Deque["Task"]] = {}
        self.count = 0

    def insert(self, task: "Task", head: bool = False) -> None:
        prio = task.effective_prio()
        lst = self.lists.get(prio)
        if lst is None:
            lst = deque()
            self.lists[prio] = lst
        if head:
            lst.appendleft(task)
        else:
            lst.append(task)
        self.bitmap |= 1 << prio
        self.count += 1

    def remove(self, task: "Task") -> bool:
        prio = task.effective_prio()
        lst = self.lists.get(prio)
        if lst is None:
            return False
        try:
            lst.remove(task)
        except ValueError:
            return False
        if not lst:
            self.bitmap &= ~(1 << prio)
        self.count -= 1
        return True

    def pop_best(self) -> Optional["Task"]:
        if self.bitmap == 0:
            return None
        prio = self.bitmap.bit_length() - 1
        lst = self.lists[prio]
        task = lst.popleft()
        if not lst:
            self.bitmap &= ~(1 << prio)
        self.count -= 1
        return task

    def peek_best_prio(self) -> int:
        """Highest occupied priority (-1 when empty)."""
        return self.bitmap.bit_length() - 1

    def tasks(self) -> list:
        out = []
        for lst in self.lists.values():
            out.extend(lst)
        return out


class _RunQueue:
    """One CPU's pair of priority arrays."""

    def __init__(self) -> None:
        self.active = PrioArray()
        self.expired = PrioArray()

    @property
    def count(self) -> int:
        return self.active.count + self.expired.count

    def maybe_swap(self) -> None:
        if self.active.count == 0 and self.expired.count > 0:
            self.active, self.expired = self.expired, self.active

    def tasks(self) -> list:
        return self.active.tasks() + self.expired.tasks()


class O1Scheduler(Scheduler):
    """Per-CPU bitmap-array scheduler with idle balancing."""

    name = "o1"

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self._rq: Dict[int, _RunQueue] = {
            i: _RunQueue() for i in range(kernel.ncpus)}
        self._where: Dict[int, int] = {}  # pid -> cpu of its runqueue

    # ------------------------------------------------------------------
    def enqueue(self, task: "Task", preempted: bool = False) -> int:
        target = self._wakeup_target(task)
        if preempted and task.last_cpu in task.effective_affinity:
            # A preempted task stays on its own runqueue; it was never
            # migrated, only pushed off the CPU.
            target = task.last_cpu
        if task.time_slice <= 0 and not task.policy.realtime:
            task.time_slice = self.kernel.config.timeslice_ticks
        if getattr(task, "expired_on_tick", False):
            task.expired_on_tick = False
            self._rq[target].expired.insert(task)
        elif getattr(task, "rr_requeue_tail", False):
            task.rr_requeue_tail = False
            self._rq[target].active.insert(task, head=False)
        else:
            self._rq[target].active.insert(task, head=preempted)
        self._where[task.pid] = target
        return target

    def dequeue(self, task: "Task") -> None:
        cpu = self._where.pop(task.pid, None)
        if cpu is None:
            return
        rq = self._rq[cpu]
        if not rq.active.remove(task):
            rq.expired.remove(task)

    def pick_next(self, cpu_index: int) -> Optional["Task"]:
        rq = self._rq[cpu_index]
        rq.maybe_swap()
        task = rq.active.pop_best()
        if task is not None:
            self._where.pop(task.pid, None)
            return task
        return self._pull_from_busiest(cpu_index)

    def _pull_from_busiest(self, cpu_index: int) -> Optional["Task"]:
        """Idle balancing: steal a migratable task."""
        best_cpu = None
        best_count = 0
        for i, rq in self._rq.items():
            if i == cpu_index or rq.count <= best_count:
                continue
            if any(cpu_index in t.effective_affinity for t in rq.tasks()):
                best_cpu, best_count = i, rq.count
        if best_cpu is None:
            return None
        rq = self._rq[best_cpu]
        rq.maybe_swap()
        for array in (rq.active, rq.expired):
            for task in sorted(array.tasks(),
                               key=lambda t: -t.effective_prio()):
                if cpu_index in task.effective_affinity:
                    array.remove(task)
                    self._where.pop(task.pid, None)
                    return task
        return None

    # ------------------------------------------------------------------
    def task_tick(self, cpu_index: int, task: "Task") -> bool:
        if task.policy is SchedPolicy.FIFO:
            return False
        task.time_slice -= 1
        if task.time_slice <= 0:
            task.time_slice = self.kernel.config.timeslice_ticks
            # SCHED_RR goes behind its equal-priority peers in the
            # active array; SCHED_OTHER expires to the expired array.
            if task.policy is SchedPolicy.RR:
                task.rr_requeue_tail = True
            else:
                task.expired_on_tick = True
            return True
        return False

    # ------------------------------------------------------------------
    def switch_cost_ns(self, cpu_index: int) -> int:
        return self.kernel.config.timing.sample("sched.switch",
                                                self.kernel.rng)

    # ------------------------------------------------------------------
    def runnable_count(self) -> int:
        return sum(rq.count for rq in self._rq.values())

    def queue_depth(self, cpu_index: int) -> int:
        return self._rq[cpu_index].count

    def queued_tasks(self) -> list:
        out = []
        for rq in self._rq.values():
            out.extend(rq.tasks())
        return out

    def requeue(self, task: "Task") -> int:
        self.dequeue(task)
        return self.enqueue(task)
