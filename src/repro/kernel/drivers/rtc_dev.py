"""The ``/dev/rtc`` driver: the realfeel code path.

Section 6.2 of the paper diagnoses why realfeel's latency on a
shielded CPU was "mediocre": the read() return path traverses generic
file-system code whose spinlocks do not disable interrupts, so a
holder on another CPU can be preempted by bottom-half bursts and the
just-woken reader spins behind it.  This driver reproduces that path:

* entry: short file-layer section under ``file_lock``;
* block on the RTC wait queue until the interrupt handler wakes us;
* exit: another pass through the file layer (``file_lock`` again,
  then a dcache touch) before returning to user space.

The interrupt handler itself is minimal: acknowledge the device and
wake the readers.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.kernel import ops as op
from repro.kernel.drivers.base import CharDriver
from repro.kernel.sync.waitqueue import WaitQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.devices.rtc import RtcDevice
    from repro.kernel.kernel import Kernel
    from repro.kernel.syscalls import UserApi


class RtcDriver(CharDriver):
    """Driver for the periodic RTC."""

    multithreaded = False  # legacy driver: relies on the BKL convention

    def __init__(self, kernel: "Kernel", device: "RtcDevice") -> None:
        super().__init__(kernel, "/dev/rtc")
        self.device = device
        self.wq = WaitQueue("rtc_wait")
        self.interrupts = 0
        kernel.register_irq_handler(device.irq, "irq.handler.rtc",
                                    self._handle_irq)

    def _handle_irq(self, cpu_idx: int) -> None:
        """Top half: ack the chip, wake blocked readers."""
        self.interrupts += 1
        self.kernel.wake_up(self.wq, all_waiters=True, from_cpu=cpu_idx)

    def read_body(self, api: "UserApi") -> Generator:
        """``read(/dev/rtc)``: returns the device fire timestamp."""
        yield op.EnterSyscall("read")
        yield op.Compute(self.sample("syscall.entry"), kernel=True,
                         label="rtc:entry")
        # File-layer entry: fd table lookup under file_lock.
        yield op.Acquire(self.kernel.locks.file_lock)
        yield op.Compute(self.sample("fs.file_lock_hold"), kernel=True,
                         label="rtc:fdget")
        yield op.Release(self.kernel.locks.file_lock)
        yield op.Compute(self.sample("rtc.read_setup"), kernel=True,
                         label="rtc:setup")
        yield op.Block(self.wq)
        # Woken by the top half.  Exit through the generic file layer:
        # this is where the paper found "opportunities to block
        # waiting for spin locks".
        yield op.Compute(self.sample("rtc.read_wake"), kernel=True,
                         label="rtc:wake")
        yield op.Acquire(self.kernel.locks.file_lock)
        yield op.Compute(self.sample("fs.file_lock_hold"), kernel=True,
                         label="rtc:fdput")
        yield op.Release(self.kernel.locks.file_lock)
        yield op.Compute(self.sample("syscall.exit"), kernel=True,
                         label="rtc:exit")
        yield op.ExitSyscall()
        return self.device.last_fire_ns
