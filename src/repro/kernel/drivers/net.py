"""Network driver: NIC interrupts, NET_RX softirq work, loopback.

The receive path that matters for the paper's latency analysis:

* NIC raises an interrupt per received burst; the top half is short
  (ack + queue the frames) and raises NET_RX;
* protocol processing happens in the NET_RX softirq at interrupt
  exit -- with per-packet costs that make heavy flows (the scp loop,
  ttcp) into multi-hundred-microsecond bottom-half bursts;
* loopback traffic (ttcp over lo, NFS-over-loopback) skips the NIC
  entirely: the sending syscall raises NET_RX on its own CPU.

:class:`SimSocket` is the minimal socket abstraction the workloads
block on: the softirq completion action wakes the receiving task.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from repro.kernel.drivers.base import CharDriver
from repro.kernel.irqflow.softirq import SoftirqVector
from repro.kernel.sync.waitqueue import WaitQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.devices.nic import EthernetNic
    from repro.kernel.kernel import Kernel


class SimSocket:
    """A receive endpoint tasks can block on."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.wq = WaitQueue(f"sock:{name}")
        self.rx_queue: Deque[int] = deque()   # packet counts
        self.received_packets = 0

    def deliver(self, packets: int) -> None:
        self.rx_queue.append(packets)
        self.received_packets += packets

    @property
    def has_data(self) -> bool:
        return bool(self.rx_queue)

    def take(self) -> int:
        return self.rx_queue.popleft() if self.rx_queue else 0


class NetDriver(CharDriver):
    """The kernel half of the Ethernet NIC plus the loopback device."""

    multithreaded = False

    #: 2.4's ``netdev_max_backlog`` is 300 packets; beyond it netif_rx
    #: drops on the floor.  Expressed here as queued NET_RX work, this
    #: bounds bottom-half backlogs at the several-millisecond scale the
    #: paper describes.
    MAX_BACKLOG_NS = 2_500_000

    def __init__(self, kernel: "Kernel",
                 nic: Optional["EthernetNic"] = None) -> None:
        super().__init__(kernel, "net")
        self.nic = nic
        self.sockets: dict = {}
        self.rx_softirq_ns = 0
        self.dropped_packets = 0
        self._backlog_ns = [0] * kernel.ncpus
        if nic is not None:
            kernel.register_irq_handler(nic.irq, "irq.handler.net",
                                        self._handle_irq)

    # ------------------------------------------------------------------
    def socket(self, name: str) -> SimSocket:
        sock = self.sockets.get(name)
        if sock is None:
            sock = SimSocket(name)
            self.sockets[name] = sock
        return sock

    # ------------------------------------------------------------------
    def _handle_irq(self, cpu_idx: int) -> None:
        """NIC top half: raise NET_RX for the received burst."""
        assert self.nic is not None
        packets = max(1, self.nic.last_rx_count)
        self._queue_rx_work(cpu_idx, packets, sock=None, from_irq=True)

    def _queue_rx_work(self, cpu_idx: int, packets: int,
                       sock: Optional[SimSocket],
                       from_irq: bool = False) -> None:
        if self._backlog_ns[cpu_idx] >= self.MAX_BACKLOG_NS:
            # netif_rx beyond netdev_max_backlog: drop.  (Socket-bound
            # payloads are still delivered so receivers make progress;
            # the protocol work for them is what was shed.)
            self.dropped_packets += packets
            if sock is not None:
                sock.deliver(packets)
                self.kernel.wake_up(sock.wq, from_cpu=None)
            return
        work = packets * self.sample("softirq.net_rx_per_packet")
        self.rx_softirq_ns += work
        self._backlog_ns[cpu_idx] += work

        def done() -> None:
            self._backlog_ns[cpu_idx] -= work
            if sock is not None:
                sock.deliver(packets)
                self.kernel.wake_up(sock.wq, from_cpu=None)

        self.kernel.raise_softirq(cpu_idx, SoftirqVector.NET_RX, work,
                                  done, from_irq=from_irq)

    # ------------------------------------------------------------------
    def loopback_deliver(self, packets: int,
                         sock_name: Optional[str] = None) -> None:
        """Called (via a Call op) from a sending task's syscall body."""
        # The sender's CPU does the protocol work, like netif_rx on lo.
        cpu_idx = self.kernel.dispatching_cpu or 0
        sock = self.sockets.get(sock_name) if sock_name else None
        self._queue_rx_work(cpu_idx, packets, sock)
