"""Driver base class."""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.sim.errors import KernelPanic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.kernel.syscalls import UserApi


class CharDriver:
    """A character-device driver bound to a kernel and (usually) a device.

    Subclasses implement ``read_body`` / ``ioctl_body`` generators
    yielding primitive ops; they run in the context of the calling
    task.  ``multithreaded`` advertises that the driver does its own
    locking and (on kernels with the RedHawk generic-ioctl change)
    does not need the BKL held around its ioctl routine.
    """

    multithreaded = False

    def __init__(self, kernel: "Kernel", path: str) -> None:
        self.kernel = kernel
        self.path = path
        self.timing = kernel.config.timing
        self.rng = kernel.sim.rng.stream(f"driver:{path}")
        kernel.register_driver(path, self)

    # Default method bodies fail loudly: calling read() on a driver
    # without one is a workload bug.
    def read_body(self, api: "UserApi") -> Generator:
        raise KernelPanic(f"{self.path}: driver has no read()")
        yield  # pragma: no cover - makes this a generator function

    def ioctl_body(self, api: "UserApi", cmd: str,
                   needs_bkl: bool) -> Generator:
        raise KernelPanic(f"{self.path}: driver has no ioctl()")
        yield  # pragma: no cover

    def sample(self, key: str) -> int:
        return self.timing.sample(key, self.rng)
