"""Graphics driver: interrupt handling for the X11perf load.

The graphics controller's completion interrupts are handled with a
moderate-cost top half (the nVidia-class hardware of the era required
non-trivial register work per interrupt) plus a small tasklet.  No
task-visible API: the device only matters as an interrupt source on
unshielded CPUs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.drivers.base import CharDriver
from repro.kernel.irqflow.softirq import SoftirqVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.devices.gpu import GraphicsController
    from repro.kernel.kernel import Kernel


class GfxDriver(CharDriver):
    """Kernel half of the graphics controller."""

    multithreaded = False

    def __init__(self, kernel: "Kernel", gpu: "GraphicsController") -> None:
        super().__init__(kernel, "/dev/gfx")
        self.gpu = gpu
        self.handled = 0
        kernel.register_irq_handler(gpu.irq, "irq.handler.gfx",
                                    self._handle_irq)

    def _handle_irq(self, cpu_idx: int) -> None:
        self.handled += 1
        work = self.sample("softirq.gfx_tasklet")
        if work > 0:
            self.kernel.raise_softirq(cpu_idx, SoftirqVector.TASKLET, work,
                                      from_irq=True)
