"""Block layer: request submission under ``io_request_lock``.

2.4's block layer serialises request queueing under the global,
interrupt-disabling ``io_request_lock``; completion interrupts raise a
(short) BLOCK softirq that wakes the task waiting on the request.
Filesystem workloads use :meth:`submit_and_wait` for every buffered
read/write that misses the cache.
"""

from __future__ import annotations

from typing import Dict, Generator, TYPE_CHECKING

from repro.kernel import ops as op
from repro.kernel.drivers.base import CharDriver
from repro.kernel.irqflow.softirq import SoftirqVector
from repro.kernel.sync.waitqueue import WaitQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.devices.disk import ScsiDisk
    from repro.kernel.kernel import Kernel
    from repro.kernel.syscalls import UserApi


class BlockDriver(CharDriver):
    """SCSI block driver."""

    multithreaded = False

    def __init__(self, kernel: "Kernel", disk: "ScsiDisk") -> None:
        super().__init__(kernel, "/dev/sda")
        self.disk = disk
        self._wait: Dict[int, WaitQueue] = {}
        self.completed = 0
        kernel.register_irq_handler(disk.irq, "irq.handler.disk",
                                    self._handle_irq)

    def _handle_irq(self, cpu_idx: int) -> None:
        """Completion top half: collect finished requests, raise BLOCK."""
        while True:
            req = self.disk.take_completion()
            if req is None:
                break
            self.completed += 1
            wq = self._wait.pop(req.req_id, None)
            work = self.sample("softirq.block_complete")

            def done(wq=wq) -> None:
                if wq is not None:
                    self.kernel.wake_up(wq, from_cpu=None)

            self.kernel.raise_softirq(cpu_idx, SoftirqVector.BLOCK, work,
                                      done, from_irq=True)

    def submit_and_wait(self, api: "UserApi", sectors: int = 8) -> Generator:
        """Queue one request and block until its completion softirq."""
        yield op.Acquire(self.kernel.locks.io_request_lock)
        yield op.Compute(self.sample("block.submit"), kernel=True,
                         label="blk:submit")
        req = self.disk.submit(sectors)
        wq = WaitQueue(f"blkreq:{req.req_id}")
        self._wait[req.req_id] = wq
        yield op.Release(self.kernel.locks.io_request_lock)
        yield op.Block(wq)
        return req
