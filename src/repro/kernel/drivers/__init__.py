"""Device drivers: the kernel-side halves of the simulated devices."""

from repro.kernel.drivers.base import CharDriver
from repro.kernel.drivers.blockdev import BlockDriver
from repro.kernel.drivers.gfx import GfxDriver
from repro.kernel.drivers.net import NetDriver, SimSocket
from repro.kernel.drivers.rcim_dev import RcimDriver
from repro.kernel.drivers.rtc_dev import RtcDriver

__all__ = [
    "CharDriver",
    "BlockDriver",
    "GfxDriver",
    "NetDriver",
    "SimSocket",
    "RcimDriver",
    "RtcDriver",
]
