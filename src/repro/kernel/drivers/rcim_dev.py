"""The RCIM driver: the second interrupt-response test's code path.

Differences from ``/dev/rtc`` that the paper calls out (section 6.2):

* the wait is an ``ioctl``, not a ``read``, so there is no generic
  file-layer exit path with contended spinlocks;
* the driver is fully multithreaded and flags that it does not need
  the BKL; on a kernel with the generic-ioctl change
  (``config.bkl_ioctl_flag``) the BKL is skipped entirely -- on other
  kernels ``lock_kernel()`` is taken around the driver routine and is
  "one of the most highly contended spin locks in Linux";
* after wakeup the user program reads the memory-mapped count register
  directly, with negligible overhead.

Note on the BKL-held path: the real 2.4 BKL is auto-released when its
holder sleeps and reacquired on wakeup.  We model that explicitly:
release before blocking, reacquire (possibly spinning on contention)
after wakeup -- the reacquisition is exactly where the several
milliseconds of jitter the paper mentions comes from.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.kernel import ops as op
from repro.kernel.drivers.base import CharDriver
from repro.kernel.sync.waitqueue import WaitQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.devices.rcim import RcimCard
    from repro.kernel.kernel import Kernel
    from repro.kernel.syscalls import UserApi


class RcimDriver(CharDriver):
    """Driver for the Real-Time Clock and Interrupt Module."""

    multithreaded = True  # properly locked; can skip the BKL

    def __init__(self, kernel: "Kernel", device: "RcimCard") -> None:
        super().__init__(kernel, "/dev/rcim")
        self.device = device
        self.wq = WaitQueue("rcim_wait")
        self.edge_wqs = [WaitQueue(f"rcim_edge{i}")
                         for i in range(device.EXTERNAL_LINES)]
        self.interrupts = 0
        kernel.register_irq_handler(device.irq, "irq.handler.rcim",
                                    self._handle_irq)

    def _handle_irq(self, cpu_idx: int) -> None:
        self.interrupts += 1
        status = self.device.read_and_clear_status()
        if status & 1 or status == 0:
            self.kernel.wake_up(self.wq, all_waiters=True, from_cpu=cpu_idx)
        for line in range(self.device.EXTERNAL_LINES):
            if status & (1 << (line + 1)):
                self.kernel.wake_up(self.edge_wqs[line], all_waiters=True,
                                    from_cpu=cpu_idx)

    def ioctl_body(self, api: "UserApi", cmd: str,
                   needs_bkl: bool) -> Generator:
        """``ioctl(fd, RCIM_WAIT_INTERRUPT)`` (timer source) or
        ``ioctl(fd, "RCIM_WAIT_EDGE:<n>")`` (external edge input)."""
        wq = self.wq
        if cmd.startswith("RCIM_WAIT_EDGE:"):
            wq = self.edge_wqs[int(cmd.split(":", 1)[1])]
        yield op.EnterSyscall("ioctl")
        yield op.Compute(self.sample("syscall.entry"), kernel=True,
                         label="rcim:entry")
        if needs_bkl:
            yield op.Acquire(self.kernel.locks.bkl)
            yield op.Compute(self.sample("bkl.ioctl_hold"), kernel=True,
                             label="rcim:bkl-entry")
            yield op.Release(self.kernel.locks.bkl)
        yield op.Compute(self.sample("rcim.ioctl_setup"), kernel=True,
                         label="rcim:setup")
        yield op.Block(wq)
        # Woken by the top half.
        if needs_bkl:
            # lock_kernel() reacquisition after sleeping -- the
            # contended step the RedHawk flag eliminates.
            yield op.Acquire(self.kernel.locks.bkl)
            yield op.Compute(self.sample("bkl.ioctl_hold"), kernel=True,
                             label="rcim:bkl-exit")
            yield op.Release(self.kernel.locks.bkl)
        yield op.Compute(self.sample("rcim.ioctl_return"), kernel=True,
                         label="rcim:return")
        yield op.ExitSyscall()
        return self.device.last_fire_ns
