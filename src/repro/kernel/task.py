"""Task structures: the simulated ``task_struct``.

Tasks carry scheduling identity (policy, priority, nice), CPU affinity
(requested and shield-rewritten effective masks), execution state (the
generator body, a pending op, a partially executed compute segment),
and the kernel-mode bookkeeping the preemption model needs
(``preempt_count``, syscall depth).
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.core.affinity import CpuMask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.ops import Compute, Op
    from repro.kernel.sync.waitqueue import WaitQueue


class TaskState(enum.Enum):
    """Lifecycle states (TASK_RUNNING is split into READY/RUNNING)."""

    NEW = "new"
    READY = "ready"          # on a runqueue, not on a CPU
    RUNNING = "running"      # current on some CPU
    BLOCKED = "blocked"      # on a wait queue or sleeping
    EXITED = "exited"


class SchedPolicy(enum.Enum):
    """POSIX scheduling policies."""

    OTHER = "SCHED_OTHER"
    FIFO = "SCHED_FIFO"
    RR = "SCHED_RR"

    @property
    def realtime(self) -> bool:
        return self is not SchedPolicy.OTHER


#: Priority value of an idle CPU; every task beats it.
IDLE_PRIO = -1


class Task:
    """One schedulable entity."""

    def __init__(self, pid: int, name: str,
                 body: Generator["Op", Any, Any],
                 policy: SchedPolicy = SchedPolicy.OTHER,
                 rt_prio: int = 0, nice: int = 0,
                 affinity: Optional[CpuMask] = None,
                 kernel_thread: bool = False) -> None:
        self.pid = pid
        self.name = name
        self.body = body
        self.policy = policy
        self.rt_prio = rt_prio
        self.nice = nice
        self.kernel_thread = kernel_thread

        self.requested_affinity = affinity if affinity is not None else CpuMask(0)
        self.effective_affinity = self.requested_affinity

        self.state = TaskState.NEW
        self.on_cpu: Optional[int] = None      # CPU index while RUNNING
        self.last_cpu = 0

        # Kernel-mode bookkeeping.
        self.preempt_count = 0
        self.irq_disable_count = 0
        self.in_syscall = 0
        self.syscall_name: Optional[str] = None
        self.mm_locked = False

        # Execution continuation state.
        self.pending_op: Optional["Op"] = None       # op not yet executed
        self.partial: Optional[tuple] = None         # (remaining_ns, Compute)
        self.send_value: Any = None                  # result for next step
        self.waiting_on: Optional["WaitQueue"] = None
        self.sleep_event = None
        self.current_compute: Optional["Compute"] = None
        self.frame = None              # active TASK ExecFrame, if any
        self.spin_frame = None         # active SPIN ExecFrame, if any
        self.spin_started = 0
        self.expired_on_tick = False   # O(1): requeue on the expired array
        self.rr_requeue_tail = False   # RR expiry: go behind equal-prio peers

        # SCHED_OTHER / SCHED_RR accounting.
        self.time_slice = 0
        self.counter = 0            # 2.4 goodness counter (in ticks)

        # Statistics.
        self.switches = 0
        self.user_ns = 0
        self.kernel_ns = 0
        self.exit_code: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def runnable(self) -> bool:
        return self.state in (TaskState.READY, TaskState.RUNNING)

    @property
    def in_kernel(self) -> bool:
        """True while executing kernel code (syscall or kernel thread)."""
        return self.in_syscall > 0 or self.kernel_thread

    def effective_prio(self) -> int:
        """Comparable priority; larger wins.

        Real-time policies occupy 100..199 (100 + rt_prio); timesharing
        tasks occupy 0..39 based on nice.  This mirrors the strict
        separation both the 2.4 and O(1) schedulers enforce.
        """
        if self.policy.realtime:
            return 100 + self.rt_prio
        return 20 - self.nice

    def beats(self, other: Optional["Task"]) -> bool:
        """Strictly higher priority than *other* (None = idle)."""
        if other is None:
            return True
        return self.effective_prio() > other.effective_prio()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Task {self.pid}:{self.name} {self.policy.value} "
                f"{self.state.value} cpu={self.on_cpu}>")
