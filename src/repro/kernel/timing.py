"""Timing distributions: the cost model of the simulated kernel.

Every duration in the simulation -- interrupt handler run time,
critical-section length, syscall entry overhead, context-switch cost --
is described by a :class:`Dist` and sampled through a
:class:`TimingModel`.  Kernel flavours (vanilla 2.4.21, RedHawk 1.4)
differ almost entirely in this table plus a handful of boolean feature
flags; see :mod:`repro.configs.calibration` for the calibrated values.

Distributions are specified as small immutable objects rather than
bare callables so they can be printed, compared and perturbed by
ablation benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Optional, Sequence, Tuple

import numpy as np


class UnboundedDistributionError(ValueError):
    """A support upper bound was requested from an unbounded
    distribution (e.g. an uncapped :class:`Exponential`).

    The static bound analyzer (:mod:`repro.analysis.bounds`) treats
    this as a hard error when the duration feeds a critical section:
    a window whose length has no finite support cannot be certified.
    """


class Dist:
    """Base class: a distribution over non-negative integer nanoseconds."""

    def sample(self, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def mean(self) -> float:
        """Approximate mean (used by sanity checks and reports)."""
        raise NotImplementedError

    def support_upper_ns(self) -> int:
        """The largest value :meth:`sample` can ever return.

        Raises :class:`UnboundedDistributionError` when the support
        has no finite upper end; the bound analyzer turns that into a
        certification failure rather than guessing a percentile.
        """
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Const(Dist):
    """A fixed duration."""

    value: int

    def sample(self, rng: np.random.Generator) -> int:
        return self.value

    def mean(self) -> float:
        return float(self.value)

    def support_upper_ns(self) -> int:
        return self.value


@dataclass(frozen=True, slots=True)
class Uniform(Dist):
    """Uniform over [lo, hi]."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"uniform lo {self.lo} > hi {self.hi}")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    def support_upper_ns(self) -> int:
        return self.hi


@dataclass(frozen=True, slots=True)
class Exponential(Dist):
    """Exponential with the given mean, optionally truncated at *cap*."""

    mean_ns: int
    cap: Optional[int] = None

    def sample(self, rng: np.random.Generator) -> int:
        value = int(rng.exponential(self.mean_ns))
        if self.cap is not None:
            value = min(value, self.cap)
        return value

    def mean(self) -> float:
        return float(self.mean_ns)

    def support_upper_ns(self) -> int:
        if self.cap is None:
            raise UnboundedDistributionError(
                f"Exponential(mean_ns={self.mean_ns}) has no cap")
        return self.cap


@dataclass(frozen=True, slots=True)
class LogNormal(Dist):
    """Lognormal parameterised by its median, truncated at *cap*.

    Heavy-tailed durations (disk seeks, 2.4 filesystem critical
    sections) are lognormal-ish in practice: most instances short, a
    long multiplicative tail.
    """

    median_ns: int
    sigma: float
    cap: Optional[int] = None

    def sample(self, rng: np.random.Generator) -> int:
        value = int(rng.lognormal(math.log(self.median_ns), self.sigma))
        if self.cap is not None:
            value = min(value, self.cap)
        return value

    def mean(self) -> float:
        raw = self.median_ns * math.exp(self.sigma ** 2 / 2.0)
        if self.cap is not None:
            raw = min(raw, float(self.cap))
        return raw

    def support_upper_ns(self) -> int:
        if self.cap is None:
            raise UnboundedDistributionError(
                f"LogNormal(median_ns={self.median_ns}) has no cap")
        return self.cap


# cached_property needs __dict__, so Choice cannot be slotted.
@dataclass(frozen=True)
class Choice(Dist):  # lint: ok(no-slots-dataclass)
    """A weighted mixture of other distributions."""

    options: Tuple[Tuple[float, Dist], ...]

    def __post_init__(self) -> None:
        if not self.options:
            raise ValueError("Choice needs at least one option")
        total = sum(w for w, _ in self.options)
        if total <= 0:
            raise ValueError("Choice weights must sum to a positive value")

    @cached_property
    def _cdf(self) -> np.ndarray:
        """Normalised weight CDF, built once per (frozen) instance.

        The double normalisation (weights, then the cumsum) replicates
        ``np.random.Generator.choice`` bit-for-bit; ``sample`` below
        must keep drawing exactly the numbers ``rng.choice`` would, or
        every downstream RNG stream shifts and figure outputs change.
        """
        weights = np.array([w for w, _ in self.options], dtype=float)
        weights /= weights.sum()
        cdf = weights.cumsum()
        cdf /= cdf[-1]
        return cdf

    def sample(self, rng: np.random.Generator) -> int:
        # Stream-identical inline of rng.choice(len(options), p=weights):
        # one uniform draw searched against the cached CDF.  rng.choice
        # itself revalidates and re-accumulates p on every call, which
        # made mixture sampling the single hottest cost-model path.
        idx = int(self._cdf.searchsorted(rng.random(), side="right"))
        return self.options[idx][1].sample(rng)

    def mean(self) -> float:
        total = sum(w for w, _ in self.options)
        return sum(w * d.mean() for w, d in self.options) / total

    def support_upper_ns(self) -> int:
        return max(d.support_upper_ns() for _, d in self.options)


@dataclass(frozen=True, slots=True)
class Scaled(Dist):
    """Another distribution scaled by a constant factor."""

    base: Dist
    factor: float

    def sample(self, rng: np.random.Generator) -> int:
        return int(self.base.sample(rng) * self.factor)

    def mean(self) -> float:
        return self.base.mean() * self.factor

    def support_upper_ns(self) -> int:
        return int(self.base.support_upper_ns() * self.factor)


@dataclass(slots=True)
class TimingModel:
    """Named table of :class:`Dist` objects.

    Unknown keys raise ``KeyError`` loudly: a kernel path asking for a
    cost that was never calibrated is a bug, not a default.
    """

    table: Dict[str, Dist] = field(default_factory=dict)

    def sample(self, key: str, rng: np.random.Generator) -> int:
        return self.table[key].sample(rng)

    def dist(self, key: str) -> Dist:
        return self.table[key]

    def support_upper_ns(self, key: str) -> int:
        """Worst-case duration of *key* (static-analysis entry point)."""
        return self.table[key].support_upper_ns()

    def has(self, key: str) -> bool:
        return key in self.table

    def override(self, **entries: Dist) -> "TimingModel":
        """Copy with some entries replaced (ablation support)."""
        merged = dict(self.table)
        merged.update(entries)
        return TimingModel(merged)

    def keys(self) -> Sequence[str]:
        return sorted(self.table)
