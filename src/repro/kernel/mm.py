"""Memory management effects: page faults and ``mlockall``.

Section 5 of the paper: "Linux supports the ability to lock an
application's pages in memory, preventing the jitter that would be
caused when a program first accesses a page not resident in memory and
turning a simple memory access into a page fault."

The model: user-mode computation by a task that has *not* locked its
pages takes minor faults at a Poisson rate (a few per millisecond of
execution), each costing a few microseconds of kernel time, and
occasionally a major fault requiring disk I/O.  ``mlockall`` disables
both.  Faults are injected by the :class:`~repro.kernel.syscalls.UserApi`
compute helper, since whether memory is locked is a property of the
calling program.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.simtime import MSEC, USEC


@dataclass(slots=True)
class FaultModel:
    """Parameters of the page-fault process."""

    #: Minor faults per millisecond of unlocked user execution.
    minor_rate_per_ms: float = 0.8
    #: Minor fault service time bounds (kernel-mode, ns).
    minor_cost_lo: int = 2 * USEC
    minor_cost_hi: int = 9 * USEC
    #: Probability that a fault is major (requires disk I/O).
    major_fraction: float = 0.004

    def sample_fault_count(self, work_ns: int,
                           rng: np.random.Generator) -> int:
        """Number of minor faults in *work_ns* of unlocked execution."""
        if work_ns <= 0:
            return 0
        lam = self.minor_rate_per_ms * (work_ns / MSEC)
        if lam <= 0:
            return 0
        return int(rng.poisson(lam))

    def sample_fault_cost(self, rng: np.random.Generator) -> int:
        """Kernel time to service one minor fault."""
        return int(rng.integers(self.minor_cost_lo, self.minor_cost_hi + 1))

    def is_major(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.major_fraction)
