"""The per-CPU local timer interrupt.

"The local timer interrupt interrupts every CPU in the system, by
default at a rate of 100 times per second ... This interrupt is
generally the most active interrupt in the system and therefore it is
the most likely interrupt to cause jitter to a real-time application."
(section 3.)

Each CPU's tick is an independently phased periodic event delivered
through the normal hardirq path, so a tick steals handler-duration
time from whatever is running and can trigger timeslice reschedules.
The shield's ``ltmr`` mask disables the tick on shielded CPUs -- the
capability the paper adds -- at the cost of losing CPU-time accounting
and profiling there.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.sim.events import PeriodicHandle


class LocalTimer:
    """Manages one periodic tick per CPU.

    Each CPU's tick is a timer-wheel periodic
    (:meth:`repro.sim.engine.Simulator.periodic`): the hottest event
    stream in the whole simulation re-arms in place instead of
    allocating a fresh handle 100 times per simulated second per CPU.
    """

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.enabled: Dict[int, bool] = {}
        self._events: Dict[int, Optional["PeriodicHandle"]] = {}
        self.ticks: Dict[int, int] = {}

    def start_all(self) -> None:
        """Arm every CPU's tick, phase-shifted to avoid lockstep."""
        tick = self.kernel.config.tick_ns
        for cpu in range(self.kernel.ncpus):
            self.enabled[cpu] = True
            self.ticks[cpu] = 0
            phase = (tick * (2 * cpu + 1)) // (2 * self.kernel.ncpus)
            self._arm(cpu, first_delay=tick + phase)

    def _arm(self, cpu: int, first_delay: Optional[int] = None) -> None:
        tick = self.kernel.config.tick_ns
        self._events[cpu] = self.kernel.sim.periodic(
            tick, lambda: self._fire(cpu), first_delay=first_delay,
            label=(f"ltmr-cpu{cpu}"
                   if self.kernel.sim.trace.enabled else "ltmr"))

    def _fire(self, cpu: int) -> None:
        if not self.enabled.get(cpu, False):
            # Defensive: a disable that raced the current fire.  Stop
            # the stream the way the old self-rescheduling loop did by
            # simply not re-arming.
            event = self._events.get(cpu)
            if event is not None:
                event.cancel()
                self._events[cpu] = None
            return
        self.ticks[cpu] = self.ticks.get(cpu, 0) + 1
        self.kernel.deliver_local_timer(cpu)

    def set_enabled(self, cpu: int, enabled: bool) -> None:
        """Shield plumbing: stop or restart one CPU's tick."""
        was = self.enabled.get(cpu, False)
        self.enabled[cpu] = enabled
        if enabled and not was:
            self._arm(cpu)
        elif not enabled and was:
            event = self._events.get(cpu)
            if event is not None:
                event.cancel()
                self._events[cpu] = None

    def is_enabled(self, cpu: int) -> bool:
        return self.enabled.get(cpu, False)
