"""Interrupt processing: softirq queues and the local timer tick.

The hardirq entry/exit choreography itself lives in
:mod:`repro.kernel.kernel` because it is entangled with scheduling;
this package holds the softirq work queues and the per-CPU local
timer machinery.
"""

from repro.kernel.irqflow.softirq import SoftirqQueue, SoftirqVector
from repro.kernel.irqflow.timer_tick import LocalTimer

__all__ = ["SoftirqQueue", "SoftirqVector", "LocalTimer"]
