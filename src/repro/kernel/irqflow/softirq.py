"""Softirq (bottom-half) work queues.

Hardirq handlers do the minimum and defer the bulk of their work --
protocol processing for received packets, block-request completion,
timer-wheel expiry -- to softirqs run at interrupt exit.  The paper's
central observation about the RedHawk RTC latency tail (section 6.2)
is that these bottom halves "sometimes executed for several
milliseconds" while having preempted a spinlock holder.

Each CPU has one :class:`SoftirqQueue`: a deque of work items per
vector, drained in vector-priority order.  How much of it runs at
interrupt exit (versus being deferred to ksoftirqd) is a kernel config
knob -- unbounded on the vanilla kernel, bounded on RedHawk.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple


class SoftirqVector(enum.IntEnum):
    """Softirq vectors in their 2.4 priority order (lowest runs first)."""

    HI = 0
    TIMER = 1
    NET_TX = 2
    NET_RX = 3
    BLOCK = 4
    TASKLET = 5


#: A queued bottom-half: (work_ns, completion_action_or_None).
WorkItem = Tuple[int, Optional[Callable[[], None]]]


class SoftirqQueue:
    """Per-CPU pending softirq work."""

    def __init__(self, cpu_index: int) -> None:
        self.cpu_index = cpu_index
        self._queues: Dict[SoftirqVector, Deque[WorkItem]] = {
            vec: deque() for vec in SoftirqVector}
        self.raised = 0
        self.processed = 0
        self.total_work_ns = 0

    #: Large raises are split into items of at most this much work, so
    #: drain budgets and preemption operate at packet-batch granularity
    #: rather than all-or-nothing.
    ITEM_GRANULARITY_NS = 100_000

    def raise_softirq(self, vec: SoftirqVector, work_ns: int,
                      action: Optional[Callable[[], None]] = None) -> None:
        """Queue *work_ns* of bottom-half work on this CPU.

        The completion *action* fires when the last chunk finishes.
        """
        if work_ns < 0:
            raise ValueError("softirq work must be non-negative")
        queue = self._queues[vec]
        gran = self.ITEM_GRANULARITY_NS
        while work_ns > gran:
            queue.append((gran, None))
            self.raised += 1
            work_ns -= gran
        queue.append((work_ns, action))
        self.raised += 1

    @property
    def pending(self) -> bool:
        return any(self._queues[vec] for vec in SoftirqVector)

    def pending_work_ns(self) -> int:
        """Total queued work (drives ksoftirqd wake decisions)."""
        return sum(w for vec in SoftirqVector
                   for (w, _a) in self._queues[vec])

    def pending_items(self) -> int:
        return sum(len(self._queues[vec]) for vec in SoftirqVector)

    def take_next(self) -> Optional[Tuple[SoftirqVector, int,
                                          Optional[Callable[[], None]]]]:
        """Dequeue the next item in vector-priority order."""
        for vec in SoftirqVector:
            queue = self._queues[vec]
            if queue:
                work, action = queue.popleft()
                self.processed += 1
                self.total_work_ns += work
                return (vec, work, action)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = {vec.name: len(q) for vec, q in self._queues.items() if q}
        return f"<SoftirqQueue cpu{self.cpu_index} {counts}>"
