"""The simulated Linux kernel.

The kernel layer implements, at mechanism level, the subsystems the
paper's analysis depends on: tasks and scheduling policies (a 2.4
"goodness" scheduler and an O(1) scheduler), spinlocks and the Big
Kernel Lock, kernel preemption and low-latency reschedule points,
hardirq/softirq processing, the local timer tick, a /proc filesystem,
memory locking, and the device drivers (/dev/rtc, RCIM, network,
block) whose code paths the two interrupt-response experiments
exercise.
"""

from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.task import SchedPolicy, Task, TaskState

__all__ = ["Kernel", "KernelConfig", "SchedPolicy", "Task", "TaskState"]
