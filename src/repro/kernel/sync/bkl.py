"""The Big Kernel Lock.

In 2.4 the BKL serialises huge swaths of the kernel -- the paper calls
it "one of the most highly contended spin locks in Linux" and measures
several milliseconds of jitter from ``lock_kernel()`` in the generic
ioctl path.  RedHawk's fix (reproduced by the ``bkl_ioctl_flag``
config option) lets a multithreaded driver's ioctl skip it.

Deviation from Linux: the real BKL is released if its holder sleeps
and reacquired on wakeup.  Our simulated code paths never block while
holding it (the kernel raises :class:`KernelPanic` if one tries), so
the simpler model -- an ordinary, highly contended spinlock -- covers
the paper's mechanism.  This is documented in DESIGN.md.
"""

from __future__ import annotations

from repro.kernel.sync.spinlock import SpinLock


class BigKernelLock(SpinLock):
    """The global ``kernel_flag`` lock."""

    #: Lockdep classifies BKL hold windows under their own (typically
    #: much larger) budget -- the paper measures multi-millisecond
    #: lock_kernel() jitter, so a generic spinlock budget would be
    #: meaninglessly noisy here.
    is_bkl = True

    def __init__(self) -> None:
        super().__init__("BKL", irq_disabling=False)
