"""Counting semaphores (sleeping locks).

Unlike spinlocks, a task that fails a ``down()`` blocks instead of
spinning, so semaphores do not extend non-preemptible windows; the
filesystem workloads use them for inode-level mutual exclusion, which
serialises the stress tasks without inflating interrupt latency --
matching 2.4's ``struct semaphore`` usage.

The blocking choreography is driven by the kernel through the
``SemDown``/``SemUp`` ops (see :mod:`repro.kernel.ops` and the
``UserApi.sem_down``/``sem_up`` helpers); this class only tracks the
count and wait list.  Like :class:`~repro.kernel.sync.spinlock.SpinLock`,
every ownership transition reports to the optional ``lockdep``
observer -- a semaphore is a *sleeping* lock, so lockdep flags any
``down()`` attempted with preemption disabled.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from repro.sim.errors import KernelPanic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lockdep import LockdepValidator
    from repro.kernel.task import Task


class Semaphore:
    """Counting semaphore with FIFO wakeup."""

    def __init__(self, name: str, count: int = 1) -> None:
        if count < 0:
            raise ValueError("initial semaphore count must be >= 0")
        self.name = name
        self.count = count
        self.waiters: Deque["Task"] = deque()
        #: Observational validator hook (never perturbs the simulation).
        self.lockdep: Optional["LockdepValidator"] = None
        self.acquisitions = 0
        self.contentions = 0

    def try_down(self, task: "Task") -> bool:
        """Attempt P(); returns False if the task must block."""
        if self.lockdep is not None:
            self.lockdep.on_sem_down(self, task)
        if self.count > 0:
            self.count -= 1
            self.acquisitions += 1
            if self.lockdep is not None:
                self.lockdep.on_sem_take(self, task)
            return True
        self.contentions += 1
        self.waiters.append(task)
        return False

    def up(self) -> Optional["Task"]:
        """V(); returns a task to wake, or None."""
        if self.waiters:
            # Hand the unit directly to the oldest waiter.
            self.acquisitions += 1
            waiter = self.waiters.popleft()
            if self.lockdep is not None:
                self.lockdep.on_sem_take(self, waiter)
            return waiter
        self.count += 1
        return None

    def cancel_wait(self, task: "Task") -> None:
        """Remove a task that gave up waiting."""
        try:
            self.waiters.remove(task)
        except ValueError:
            raise KernelPanic(
                f"{self.name}: cancel_wait for non-waiting {task.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Semaphore {self.name} count={self.count} "
                f"waiters={len(self.waiters)}>")
