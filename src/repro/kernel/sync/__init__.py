"""Kernel synchronization primitives: spinlocks, the BKL, wait queues,
semaphores."""

from repro.kernel.sync.bkl import BigKernelLock
from repro.kernel.sync.semaphore import Semaphore
from repro.kernel.sync.spinlock import SpinLock
from repro.kernel.sync.waitqueue import WaitQueue

__all__ = ["BigKernelLock", "Semaphore", "SpinLock", "WaitQueue"]
