"""Spinlocks.

Two flavours matter for the paper's analysis:

* ``spin_lock`` (``irq_disabling=False``): the critical section can be
  preempted by interrupts and, crucially, by the bottom-half work run
  at interrupt exit.  Section 6.2 traces the RedHawk RTC latency tail
  to exactly this: a holder of a file-layer lock gets preempted by
  several hundred microseconds of bottom-half activity, and the
  just-woken RTC reader spins that long on its exit path.
* ``spin_lock_irqsave`` (``irq_disabling=True``): local interrupts are
  disabled for the duration, so the hold time is bounded but interrupt
  delivery on this CPU is delayed.

Acquiring any spinlock disables preemption (raises the task's
``preempt_count``); waiters busy-wait in FIFO order, burning their CPU.
Lock state lives here; the acquire/release choreography (frame pushes,
irq masking) is the kernel's job.

Every ownership transition reports to the lock's optional ``lockdep``
observer (see :mod:`repro.analysis.lockdep`): a purely observational
hook that validates lock ordering and context invariants without
adding simulated time.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, TYPE_CHECKING

from repro.sim.errors import KernelPanic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lockdep import LockdepValidator
    from repro.kernel.task import Task


class SpinLock:
    """A (possibly interrupt-disabling) spinlock."""

    #: Overridden by :class:`~repro.kernel.sync.bkl.BigKernelLock`;
    #: lets lockdep budget BKL hold windows separately.
    is_bkl = False

    def __init__(self, name: str, irq_disabling: bool = False) -> None:
        self.name = name
        self.irq_disabling = irq_disabling
        self.owner: Optional["Task"] = None
        self.waiters: Deque["Task"] = deque()
        self.held_since: Optional[int] = None
        #: Observational validator hook (never perturbs the simulation).
        self.lockdep: Optional["LockdepValidator"] = None
        #: Observational tracepoint hook (lock_acquire/contended/release).
        self.tracer: Optional[Any] = None
        # Statistics for reports and tests.
        self.acquisitions = 0
        self.contentions = 0
        self.total_hold_ns = 0
        self.max_hold_ns = 0
        self.total_spin_ns = 0
        self.max_spin_ns = 0

    @property
    def held(self) -> bool:
        return self.owner is not None

    def take(self, task: "Task", now: int) -> None:
        """Record *task* as owner (kernel-internal)."""
        if self.owner is not None:
            raise KernelPanic(f"{self.name}: take() while held by "
                              f"{self.owner.name}")
        self.owner = task
        self.held_since = now
        self.acquisitions += 1
        if self.lockdep is not None:
            self.lockdep.on_take(self, task, now)
        if self.tracer is not None:
            self.tracer.on_take(self, task, now)

    def drop(self, task: "Task", now: int) -> Optional["Task"]:
        """Release by *task*; returns the next FIFO waiter, if any."""
        if self.owner is not task:
            holder = self.owner.name if self.owner else "nobody"
            raise KernelPanic(
                f"{self.name}: release by {task.name} but held by {holder}")
        if self.held_since is None:
            # A panic unwound between take() and drop() and left the
            # hold timestamp cleared (e.g. force_release() during test
            # recovery).  Repair ownership without inventing a hold
            # time rather than dying on inconsistent bookkeeping.
            self.owner = None
            return None
        hold = now - self.held_since
        self.total_hold_ns += hold
        if hold > self.max_hold_ns:
            self.max_hold_ns = hold
        self.owner = None
        self.held_since = None
        if self.lockdep is not None:
            self.lockdep.on_drop(self, task, now, hold)
        if self.tracer is not None:
            self.tracer.on_drop(self, task, now, hold)
        if self.waiters:
            return self.waiters.popleft()
        return None

    def release(self, task: "Task", now: int) -> Optional["Task"]:
        """Sanity-checked release: panics unless *task* is the owner.

        Public counterpart of :meth:`drop` for driver/test code that
        releases a lock directly (outside the kernel's Release-op
        path); the owner check mirrors the one ``take()`` has always
        had on the acquire side.
        """
        if self.owner is not task:
            holder = self.owner.name if self.owner else "nobody"
            raise KernelPanic(
                f"{self.name}: release() by {task.name} but held by "
                f"{holder}")
        return self.drop(task, now)

    def force_release(self) -> None:
        """Reset ownership and hold bookkeeping without statistics.

        Recovery helper for panic paths: when a :class:`KernelPanic`
        unwinds while the lock is held (owner exited, release by
        non-owner detected, ...), ``held_since``/``owner``/``waiters``
        would otherwise stay stale and poison the hold-time statistics
        of any later reuse of the lock object.
        """
        self.owner = None
        self.held_since = None
        self.waiters.clear()

    def enqueue_waiter(self, task: "Task") -> None:
        self.contentions += 1
        self.waiters.append(task)
        if self.lockdep is not None:
            self.lockdep.on_contend(self, task)
        if self.tracer is not None:
            self.tracer.on_contend(self, task)

    def account_spin(self, spin_ns: int) -> None:
        self.total_spin_ns += spin_ns
        if spin_ns > self.max_spin_ns:
            self.max_spin_ns = spin_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        holder = self.owner.name if self.owner else None
        return (f"<SpinLock {self.name} irq={self.irq_disabling} "
                f"owner={holder} waiters={len(self.waiters)}>")
