"""Wait queues: where blocked tasks park until an event wakes them."""

from __future__ import annotations

from collections import deque
from typing import Deque, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.task import Task


class WaitQueue:
    """FIFO queue of blocked tasks."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.waiters: Deque["Task"] = deque()
        self.total_waits = 0
        self.total_wakes = 0

    def add(self, task: "Task") -> None:
        self.total_waits += 1
        self.waiters.append(task)

    def remove(self, task: "Task") -> bool:
        """Withdraw *task* (timeout path).  True if it was queued."""
        try:
            self.waiters.remove(task)
            return True
        except ValueError:
            return False

    def pop_one(self) -> List["Task"]:
        """Take the oldest waiter (wake-one semantics)."""
        self.total_wakes += 1
        if self.waiters:
            return [self.waiters.popleft()]
        return []

    def pop_all(self) -> List["Task"]:
        """Take every waiter (wake-all semantics)."""
        self.total_wakes += 1
        tasks = list(self.waiters)
        self.waiters.clear()
        return tasks

    def __len__(self) -> int:
        return len(self.waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WaitQueue {self.name} waiters={len(self.waiters)}>"
