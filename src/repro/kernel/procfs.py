"""A minimal /proc filesystem.

Exposes exactly the administrator interface the paper describes:

* ``/proc/irq/<n>/smp_affinity`` -- standard Linux IRQ affinity files;
* ``/proc/shield/procs``, ``/proc/shield/irqs``, ``/proc/shield/ltmr``
  -- the new files RedHawk adds (present only when the kernel was
  built with shield support);
* a few read-only informational nodes used by examples and tests.

Masks are hexadecimal, as in real /proc.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.core.affinity import CpuMask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


class ProcFsError(OSError):
    """ENOENT/EINVAL analogue for bad /proc accesses."""


_IRQ_RE = re.compile(r"^/proc/irq/(\d+)/smp_affinity$")
_SHIELD_RE = re.compile(r"^/proc/shield/(procs|irqs|ltmr)$")


class ProcFs:
    """Path-dispatching façade over kernel state."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    # ------------------------------------------------------------------
    def read(self, path: str) -> str:
        irq_match = _IRQ_RE.match(path)
        if irq_match:
            desc = self._irq_desc(int(irq_match.group(1)))
            return desc.requested_affinity.to_proc() + "\n"
        shield_match = _SHIELD_RE.match(path)
        if shield_match:
            shield = self._shield()
            mask = getattr(shield, f"{shield_match.group(1)}_mask")
            return mask.to_proc() + "\n"
        if path == "/proc/interrupts":
            return self._format_interrupts()
        if path == "/proc/uptime":
            seconds = self.kernel.sim.now / 1e9
            return f"{seconds:.2f} {seconds:.2f}\n"
        raise ProcFsError(f"no such /proc entry: {path}")

    def write(self, path: str, text: str) -> None:
        irq_match = _IRQ_RE.match(path)
        if irq_match:
            mask = CpuMask.parse(text)
            self.kernel.machine.apic.set_requested_affinity(
                int(irq_match.group(1)), mask)
            return
        shield_match = _SHIELD_RE.match(path)
        if shield_match:
            shield = self._shield()
            shield.set_masks(**{shield_match.group(1): CpuMask.parse(text)})
            return
        raise ProcFsError(f"no such writable /proc entry: {path}")

    # ------------------------------------------------------------------
    def _irq_desc(self, irq: int):
        try:
            return self.kernel.machine.apic.irqs[irq]
        except KeyError:
            raise ProcFsError(f"no such irq: {irq}") from None

    def _shield(self):
        shield = self.kernel.shield
        if shield is None:
            raise ProcFsError(
                "/proc/shield: kernel built without shield support")
        return shield

    def _format_interrupts(self) -> str:
        """The classic /proc/interrupts table."""
        ncpus = self.kernel.ncpus
        header = "     " + "".join(f"{f'CPU{i}':>12}" for i in range(ncpus))
        lines = [header]
        for irq, desc in sorted(self.kernel.machine.apic.irqs.items()):
            counts = "".join(
                f"{desc.delivered.get(i, 0):>12}" for i in range(ncpus))
            lines.append(f"{irq:>4}:{counts}  {desc.name}")
        return "\n".join(lines) + "\n"
