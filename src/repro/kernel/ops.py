"""Primitive operations yielded by simulated task bodies.

A task (or kernel thread) is a Python generator.  Each ``yield``
hands the kernel one of the ops below; the kernel performs it --
possibly taking simulated time, blocking, or spinning -- and resumes
the generator with the op's result when it completes.  Higher-level
syscall helpers in :mod:`repro.kernel.syscalls` compose these into the
code paths the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.affinity import CpuMask
    from repro.kernel.sync.semaphore import Semaphore
    from repro.kernel.sync.spinlock import SpinLock
    from repro.kernel.sync.waitqueue import WaitQueue


class Op:
    """Base class for task-level primitives."""

    __slots__ = ()


@dataclass(slots=True)
class Compute(Op):
    """Execute *work* nanoseconds of computation.

    ``kernel=True`` marks kernel-mode execution, which a non-preemptible
    kernel will not interrupt with a context switch.  Wall-clock time
    may exceed *work* due to interrupts, hyperthread contention and
    memory contention.
    """

    work: int
    kernel: bool = False
    label: str = ""


@dataclass(slots=True)
class Acquire(Op):
    """Take a spinlock (busy-waiting if contended); disables preemption."""

    lock: "SpinLock"


@dataclass(slots=True)
class Release(Op):
    """Release a spinlock; re-enables preemption at depth zero."""

    lock: "SpinLock"


@dataclass(slots=True)
class Block(Op):
    """Deschedule until a ``wake_up`` on the wait queue."""

    wq: "WaitQueue"


@dataclass(slots=True)
class Sleep(Op):
    """Deschedule for a fixed interval (timer wakeup)."""

    duration: int


@dataclass(slots=True)
class SemDown(Op):
    """P() on a counting semaphore: block (do not spin) if unavailable.

    A sleeping lock: attempting it with preemption disabled (under a
    spinlock) is a kernel bug and panics, exactly like blocking on a
    wait queue.
    """

    sem: "Semaphore"


@dataclass(slots=True)
class SemUp(Op):
    """V() on a counting semaphore; hands the unit to the oldest waiter."""

    sem: "Semaphore"


@dataclass(slots=True)
class PreemptPoint(Op):
    """A voluntary reschedule opportunity (``cond_resched``).

    The low-latency patches work by sprinkling these through long
    kernel algorithms; they are no-ops unless ``need_resched`` is set
    and no locks are held.
    """


@dataclass(slots=True)
class YieldCpu(Op):
    """``sched_yield``: requeue behind equal-priority tasks."""


@dataclass(slots=True)
class EnterSyscall(Op):
    """Cross the user/kernel boundary into a system call."""

    name: str


@dataclass(slots=True)
class ExitSyscall(Op):
    """Return to user mode; runs pending softirqs and resched checks."""


@dataclass(slots=True)
class SetScheduler(Op):
    """Change scheduling policy/priority (sched_setscheduler)."""

    policy: Any
    rt_prio: int = 0
    nice: int = 0


@dataclass(slots=True)
class SetAffinity(Op):
    """Change the requested CPU affinity mask."""

    mask: "CpuMask"


@dataclass(slots=True)
class MlockAll(Op):
    """Pin all pages: disables the page-fault model for this task."""


@dataclass(slots=True)
class Call(Op):
    """Invoke an arbitrary function synchronously (instrumentation).

    The function runs at the current simulated instant with no cost;
    its return value is sent back into the generator.  Used by
    measurement workloads to read the TSC or record a sample without
    perturbing the simulation.
    """

    fn: Any
    args: tuple = field(default_factory=tuple)


@dataclass(slots=True)
class Wake(Op):
    """Wake tasks blocked on a wait queue (from this task's CPU).

    Unlike an instrumentation :class:`Call` to ``kernel.wake_up``,
    this op carries the waker's CPU context, so same-CPU wakeups defer
    the switch to the proper check point instead of self-IPIing.
    """

    wq: "WaitQueue"
    all_waiters: bool = False


@dataclass(slots=True)
class Exit(Op):
    """Terminate the task explicitly (returning from the generator
    has the same effect)."""

    code: int = 0
