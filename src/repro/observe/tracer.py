"""SimTracer: one-run orchestration of the observability stack.

Installs typed tracing on an assembled bench for the duration of one
scenario run, mirroring the
:class:`~repro.analysis.lockdep.LockdepValidator` install/uninstall
discipline: lock objects get a ``tracer`` hook, the kernel's
``_acquire`` is wrapped through an instance attribute only to
lazily attach hooks to locks created after install, and the watched
program's recorder methods are wrapped so every recorded sample feeds
the attribution engine.  ``uninstall()`` restores everything.

Nothing here consumes simulated time or randomness: a traced run is
byte-identical to an untraced one (the golden sweep enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.observe.attribution import AttributionEngine
from repro.observe.chrometrace import export_chrome_trace
from repro.observe.tracepoints import LockTracer, Tracepoints


@dataclass(frozen=True)
class TraceConfig:
    """Knobs for one traced run."""

    #: Per-CPU ring capacity (events).
    capacity: int = 65536
    #: Attribution report covers samples at/above this percentile.
    threshold_pct: float = 99.0
    #: How many worst samples to itemise in the report.
    top: int = 10
    #: Chrome trace-event JSON output path ("" = no export).
    out: str = ""
    #: Attach a full trace recording (events + accounting + per-sample
    #: attribution) to ``ScenarioResult.trace["recording"]`` for
    #: simdiff (:mod:`repro.observe.diff`).
    record: bool = False


class SimTracer:
    """Per-run tracing session over one :class:`Bench`."""

    def __init__(self, bench: Any,
                 config: Optional[TraceConfig] = None) -> None:
        self.bench = bench
        self.config = config or TraceConfig()
        self.tp: Tracepoints = bench.sim.tp
        preemptible = getattr(bench.kernel.config, "preemptible", False)
        self.engine = AttributionEngine(bench.machine.ncpus, preemptible)
        self._lock_tracer = LockTracer(self.tp, bench.sim)
        self._attached: list = []
        self._watched: list = []
        self._had_acquire = False
        self._orig_acquire: Any = None
        self._installed = False

    # ==================================================================
    # Installation
    # ==================================================================
    def install(self) -> "SimTracer":
        if self._installed:
            return self
        self._installed = True
        tp = self.tp
        if tp.capacity != self.config.capacity:
            tp.capacity = self.config.capacity
            tp.configure(self.bench.machine.ncpus)
        tp.clear()
        tp.listener = self.engine
        tp.enable()

        kernel = self.bench.kernel
        for lock in vars(kernel.locks).values():
            self.attach_lock(lock)

        # Locks built after install (driver-private ones) get hooked
        # lazily the first time a task takes them.
        self._had_acquire = "_acquire" in kernel.__dict__
        orig_acquire = kernel._acquire
        self._orig_acquire = orig_acquire

        def acquire(task, cpu_idx, lock):
            if lock.tracer is not self._lock_tracer:
                self.attach_lock(lock)
            orig_acquire(task, cpu_idx, lock)

        kernel._acquire = acquire
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        self._installed = False
        kernel = self.bench.kernel
        for lock in self._attached:
            lock.tracer = None
        self._attached.clear()
        if self._had_acquire:
            kernel._acquire = self._orig_acquire
        elif "_acquire" in kernel.__dict__:
            del kernel.__dict__["_acquire"]
        self._orig_acquire = None
        for recorder, orig_return, orig_latency in self._watched:
            if orig_return is None:
                recorder.__dict__.pop("record_return", None)
            else:
                recorder.record_return = orig_return
            if orig_latency is None:
                recorder.__dict__.pop("record_latency", None)
            else:
                recorder.record_latency = orig_latency
        self._watched.clear()
        tp = self.tp
        tp.listener = None
        tp.disable()

    def attach_lock(self, lock: Any) -> None:
        """Hook one spinlock's tracer callback (idempotent)."""
        if getattr(lock, "tracer", None) is self._lock_tracer:
            return
        lock.tracer = self._lock_tracer
        self._attached.append(lock)

    # ==================================================================
    # The watched measurement program
    # ==================================================================
    def watch_program(self, program: Any) -> None:
        """Attribute every sample *program*'s recorder records.

        Determinism programs carry a ``JitterRecorder`` (durations,
        not latencies); those runs still get tracepoints and
        accounting, just no attribution samples.
        """
        self.engine.watch = program.spec().name
        recorder = program.recorder
        if not hasattr(recorder, "record_return"):
            return
        orig_return = recorder.__dict__.get("record_return")
        orig_latency = recorder.__dict__.get("record_latency")
        bound_return = recorder.record_return
        bound_latency = recorder.record_latency

        def record_return(tsc_now):
            latency = bound_return(tsc_now)
            if latency is not None:
                self._on_sample(latency)
            return latency

        def record_latency(latency_ns):
            bound_latency(latency_ns)
            self._on_sample(latency_ns if latency_ns > 0 else 0)

        recorder.record_return = record_return
        recorder.record_latency = record_latency
        self._watched.append((recorder, orig_return, orig_latency))

    def _on_sample(self, latency: int) -> None:
        now = self.bench.sim.now
        self.engine.on_sample(now, latency)
        tp = self.tp
        if tp.enabled:
            tp.latency_sample(now, self.engine.current_cpu(),
                              self.engine.watch or "?", latency)

    # ==================================================================
    # Results
    # ==================================================================
    def report(self) -> Dict[str, Any]:
        """Plain-data trace report (rides on ``ScenarioResult.trace``)."""
        tp = self.tp
        return {
            "hits": tp.hit_counts(),
            "dropped": tp.dropped(),
            "accounting": tp.accounting.to_dict(),
            "attribution": self.engine.report(self.config.threshold_pct,
                                              self.config.top),
        }

    def export_chrome(self, path: str,
                      metadata: Optional[Dict[str, Any]] = None) -> None:
        export_chrome_trace(self.tp, path, metadata)
