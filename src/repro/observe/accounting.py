"""Per-CPU accounting counters (``/proc/stat`` / ``/proc/interrupts``).

The counters are owned by :class:`~repro.observe.tracepoints.Tracepoints`
and updated O(1) inside each tracepoint emit -- no scans, no event
walks.  They answer the questions a `cat /proc/stat` or
`cat /proc/interrupts` would on the real machine: how many local-timer
ticks, context switch-ins, syscalls and wakeups each CPU saw, how many
interrupts per vector, how many softirq items per vector, and the
worst-case irq-off / preempt-off / BKL-hold windows observed.

``max_*`` windows track *effective* transitions (disable depth or
preempt count crossing zero), matching what delays interrupt delivery
or preemption on real hardware.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class CpuCounters:
    """One CPU's counter block."""

    __slots__ = ("cpu", "ticks", "switches", "syscalls", "wakes",
                 "irqs", "softirqs",
                 "max_irq_off_ns", "irq_off_since",
                 "max_preempt_off_ns", "preempt_off_since",
                 "max_bkl_hold_ns")

    def __init__(self, cpu: int) -> None:
        self.cpu = cpu
        self.ticks = 0
        self.switches = 0
        self.syscalls = 0
        self.wakes = 0
        self.irqs: Dict[int, int] = {}
        self.softirqs: Dict[int, int] = {}
        self.max_irq_off_ns = 0
        self.irq_off_since: Optional[int] = None
        self.max_preempt_off_ns = 0
        self.preempt_off_since: Optional[int] = None
        self.max_bkl_hold_ns = 0


class CpuAccounting:
    """All CPUs' counters plus the shared irq-number -> name map."""

    __slots__ = ("cpus", "irq_names")

    def __init__(self, ncpus: int) -> None:
        self.cpus: List[CpuCounters] = [CpuCounters(i) for i in range(ncpus)]
        self.irq_names: Dict[int, str] = {}

    def clear(self) -> None:
        self.cpus = [CpuCounters(i) for i in range(len(self.cpus))]
        self.irq_names = {}

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data snapshot (picklable, JSON-safe)."""
        return {
            "irq_names": {str(k): v
                          for k, v in sorted(self.irq_names.items())},
            "cpus": [
                {
                    "cpu": c.cpu,
                    "ticks": c.ticks,
                    "switches": c.switches,
                    "syscalls": c.syscalls,
                    "wakes": c.wakes,
                    "irqs": {str(k): v for k, v in sorted(c.irqs.items())},
                    "softirqs": {str(k): v
                                 for k, v in sorted(c.softirqs.items())},
                    "max_irq_off_ns": c.max_irq_off_ns,
                    "max_preempt_off_ns": c.max_preempt_off_ns,
                    "max_bkl_hold_ns": c.max_bkl_hold_ns,
                }
                for c in self.cpus
            ],
        }
