"""Chrome trace-event (Perfetto-loadable) JSON export.

Converts the typed tracepoint rings into the Trace Event Format that
``chrome://tracing`` and https://ui.perfetto.dev consume: one process
("linsim"), one thread track per CPU, duration events (``ph: B``/``E``)
from execution-frame push/pop, instant events (``ph: i``) for wakes,
irq raises, softirq raises, shield updates and latency samples, and
counter tracks (``ph: C``) mirroring the per-CPU accounting: an
irq-off / preempt-off / BKL-held 0/1 state series plus the running
max-window series (microseconds) for each -- the same maxima
``/proc``-style accounting reports, but positioned on the timeline so
the window that set the max is visible.

Timestamps are microseconds (float), converted from simulated
nanoseconds.  The builder is ring-wrap tolerant: a ``frame_pop`` whose
``B`` was evicted gets a synthesized ``B`` at the window start, and
frames still open at the end are closed at the last event time, so the
export never produces unbalanced B/E pairs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.observe.tracepoints import TP, Tracepoints

_PID = 1

#: Instant-event rendering: tp -> (name prefix, args formatter).
_INSTANTS = {
    TP.SCHED_WAKE: lambda a: ("wake " + a[0], {"from_cpu": a[1]}),
    TP.IRQ_RAISE: lambda a: (f"irq{a[0]} raise", {"name": a[1]}),
    TP.IRQ_PEND: lambda a: (f"irq{a[0]} pend", {"name": a[1]}),
    TP.SOFTIRQ_RAISE: lambda a: (f"softirq{a[0]} raise", {}),
    TP.TIMER_TICK: lambda a: ("tick", {}),
    TP.SHIELD_UPDATE: lambda a: ("shield update", {
        "procs": a[0], "irqs": a[1], "ltmr": a[2]}),
    TP.LATENCY_SAMPLE: lambda a: ("sample " + a[0], {"latency_ns": a[1]}),
    TP.TASK_EXIT: lambda a: ("exit " + a[0], {}),
    TP.FAULT_INJECT: lambda a: ("fault " + a[0], {"detail": a[1]}),
}


def _frame_name(kind: str, label: str, owner: str) -> str:
    if kind == "task":
        return owner or label or "task"
    if label:
        return f"{kind}:{label}"
    return kind


#: Counter series: state tracepoints -> (track, on?).  BKL tracking
#: keys off the ``is_bkl`` flag instead (lock events carry it).
_COUNTER_TOGGLES = {
    TP.IRQS_OFF: ("irq-off", True),
    TP.IRQS_ON: ("irq-off", False),
    TP.PREEMPT_OFF: ("preempt-off", True),
    TP.PREEMPT_ON: ("preempt-off", False),
}


def _counter_events(cpu: int, snapshot: List[Any]) -> List[Dict[str, Any]]:
    """Per-CPU accounting counter tracks (``ph: C``) for one ring.

    Ring-wrap tolerant the same way the duration builder is: an ON
    whose OFF was evicted measures its window from the surviving
    window's start (an under-estimate, never an invention).  BKL max
    windows use the ``hold_ns`` the release event carries, so they
    stay exact even when the acquire was evicted.
    """
    events: List[Dict[str, Any]] = []
    window_start = snapshot[0].time
    since: Dict[str, int] = {}
    max_ns: Dict[str, int] = {"irq-off": 0, "preempt-off": 0, "bkl": 0}

    def emit(ts_ns: int, track: str, series: str, value: float) -> None:
        events.append({"ph": "C", "pid": _PID, "tid": cpu,
                       "ts": ts_ns / 1000.0,
                       "name": f"cpu{cpu} {track}",
                       "args": {series: value}})

    def toggle(ts_ns: int, track: str, on: bool,
               window_ns: int = -1) -> None:
        emit(ts_ns, track, "on", 1 if on else 0)
        if on:
            since[track] = ts_ns
            return
        if window_ns < 0:
            window_ns = ts_ns - since.pop(track, window_start)
        else:
            since.pop(track, None)
        if window_ns > max_ns[track]:
            max_ns[track] = window_ns
            emit(ts_ns, f"max {track} (us)", "us", window_ns / 1000.0)

    for track in max_ns:
        emit(window_start, track, "on", 0)
        emit(window_start, f"max {track} (us)", "us", 0.0)
    for ev in snapshot:
        code = ev.tp
        state = _COUNTER_TOGGLES.get(code)
        if state is not None:
            toggle(ev.time, state[0], state[1])
        elif code is TP.LOCK_ACQUIRE and ev.args[2]:
            toggle(ev.time, "bkl", True)
        elif code is TP.LOCK_RELEASE and ev.args[3]:
            toggle(ev.time, "bkl", False, window_ns=int(ev.args[2]))
    last = snapshot[-1].time
    for track in [t for t in since]:
        toggle(last, track, False)
    return events


def build_trace_events(tp: Tracepoints) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list from the registry's rings."""
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
         "args": {"name": "linsim"}},
    ]
    for cpu in range(tp.ncpus):
        events.append({"ph": "M", "pid": _PID, "tid": cpu,
                       "name": "thread_name",
                       "args": {"name": f"cpu{cpu}"}})
        events.append({"ph": "M", "pid": _PID, "tid": cpu,
                       "name": "thread_sort_index",
                       "args": {"sort_index": cpu}})

    for cpu, ring in enumerate(tp.rings):
        snapshot = ring.snapshot()
        if not snapshot:
            continue
        window_start_us = snapshot[0].time / 1000.0
        last_us = snapshot[-1].time / 1000.0
        open_depth = 0
        for ev in snapshot:
            ts = ev.time / 1000.0
            code = ev.tp
            if code is TP.FRAME_PUSH:
                kind, label, owner = ev.args
                events.append({"ph": "B", "pid": _PID, "tid": cpu,
                               "ts": ts,
                               "name": _frame_name(kind, label, owner),
                               "cat": kind})
                open_depth += 1
            elif code is TP.FRAME_POP:
                kind, label, owner = ev.args
                if open_depth == 0:
                    # The matching B was evicted by ring wrap --
                    # synthesize one at the window start.
                    events.append({"ph": "B", "pid": _PID, "tid": cpu,
                                   "ts": window_start_us,
                                   "name": _frame_name(kind, label, owner),
                                   "cat": kind})
                else:
                    open_depth -= 1
                events.append({"ph": "E", "pid": _PID, "tid": cpu,
                               "ts": ts})
            else:
                fmt = _INSTANTS.get(code)
                if fmt is not None:
                    name, args = fmt(ev.args)
                    events.append({"ph": "i", "pid": _PID, "tid": cpu,
                                   "ts": ts, "s": "t", "name": name,
                                   "cat": TP(code).name.lower(),
                                   "args": args})
        # Close frames still open at the end of the window.
        for _ in range(open_depth):
            events.append({"ph": "E", "pid": _PID, "tid": cpu,
                           "ts": last_us})
        events.extend(_counter_events(cpu, snapshot))
    return events


def to_chrome_trace(tp: Tracepoints,
                    metadata: Dict[str, Any] = None) -> Dict[str, Any]:
    """The full Trace Event Format document."""
    doc: Dict[str, Any] = {
        "traceEvents": build_trace_events(tp),
        "displayTimeUnit": "ns",
    }
    if metadata:
        doc["otherData"] = dict(metadata)
    return doc


def export_chrome_trace(tp: Tracepoints, path: str,
                        metadata: Dict[str, Any] = None) -> None:
    """Write the Perfetto-loadable JSON trace to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tp, metadata), fh)
