"""Semantic goldens: committed baseline recordings, checked by diff.

The byte-golden suites pin exports bit-for-bit; when they break, CI
shows a CRC/byte mismatch with no explanation.  Semantic goldens are
the forensic layer above them: a small committed
:class:`~repro.observe.diff.recording.TraceRecording` per headline
scenario (fig5-7 plus the storm-fig6 shielded/unshielded twin pair),
re-recorded under the current tree and *diffed* -- an intentional
behaviour change fails with the simdiff report (which bucket moved,
which span appeared, at what simulated time) instead of a checksum.

The committed knobs keep recordings small (hundreds of samples, a
modest ring); each baseline embeds its own knobs, so
:func:`check_golden` needs nothing but the file.  Regenerate with
``tools/record_goldens.py`` after an intentional behaviour change.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Tuple

from repro.observe.diff.engine import TraceDiff, diff_recordings
from repro.observe.diff.recording import (
    TraceRecording,
    record_scenario,
    rerecord,
    spec_for_recording,
)

#: Golden catalog: name -> record knobs.  ``unshielded`` selects the
#: storm twin (shield components stripped, same shield CPU).
GOLDEN_SPECS: Dict[str, Dict[str, Any]] = {
    "fig5": {"scenario": "fig5", "samples": 400, "seed": 1,
             "capacity": 16384},
    "fig6": {"scenario": "fig6", "samples": 400, "seed": 1,
             "capacity": 16384},
    "fig7": {"scenario": "fig7", "samples": 400, "seed": 1,
             "capacity": 16384},
    "storm-fig6": {"scenario": "storm-fig6", "samples": 300, "seed": 1,
                   "capacity": 16384},
    "storm-fig6-unshielded": {"scenario": "storm-fig6", "samples": 300,
                              "seed": 1, "capacity": 16384,
                              "unshielded": True},
}

#: File suffix for committed recordings.
GOLDEN_SUFFIX = ".rtrace"


def golden_dir() -> str:
    """The committed recordings directory (repo-root/goldens)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(here))))            # diff -> observe -> repro -> src
    return os.path.join(root, "goldens", "recordings")


def golden_names() -> List[str]:
    return sorted(GOLDEN_SPECS)


def golden_path(name: str, directory: str = "") -> str:
    return os.path.join(directory or golden_dir(),
                        f"{name}{GOLDEN_SUFFIX}")


def record_golden(name: str) -> TraceRecording:
    """Record one golden per its catalog knobs (current code tree)."""
    from repro.experiments.scenario import ShieldSpec, scenario

    knobs = GOLDEN_SPECS[name]
    spec = scenario(knobs["scenario"]).configured(
        samples=knobs["samples"], seed=knobs["seed"])
    if knobs.get("unshielded"):
        spec = spec.with_overrides(
            shield=ShieldSpec(cpu=spec.shield.cpu))
    rec, _result = record_scenario(spec, capacity=knobs["capacity"])
    return rec


def check_golden(name: str, directory: str = "") -> TraceDiff:
    """Re-record one golden's run and diff it against the baseline.

    The baseline file embeds its own knobs (via
    :func:`spec_for_recording`), so drift in the *catalog* -- a
    scenario whose registered knobs changed -- surfaces as a diff,
    not a silent re-baseline.
    """
    baseline = TraceRecording.load(golden_path(name, directory))
    fresh = rerecord(baseline)
    return diff_recordings(baseline, fresh,
                           a_label="baseline", b_label="current")


__all__ = [
    "GOLDEN_SPECS",
    "GOLDEN_SUFFIX",
    "check_golden",
    "golden_dir",
    "golden_names",
    "golden_path",
    "record_golden",
    "spec_for_recording",
]
