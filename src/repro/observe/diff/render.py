"""Human-readable rendering of a :class:`TraceDiff`.

The renderer is what CI shows when a semantic golden breaks: instead
of a CRC mismatch it prints *what changed and why* -- the bucket
delta table (closing exactly against the end-to-end latency delta),
the first divergent sample with its changed buckets, the span that
introduced or lost the time (with simulated-time coordinates), and
any per-CPU accounting drift.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.metrics.report import attribution_bucket_table


def _us(ns: int) -> str:
    return f"{ns / 1e3:.1f} us"


def _us_signed(ns: int) -> str:
    return f"{ns / 1e3:+.1f} us"


def _span_line(span: Dict[str, Any]) -> str:
    name = span.get("name") or "?"
    tail = " (edge synthesised: ring wrap)" if span.get("synthetic") else ""
    return (f"{span['kind']} '{name}' on cpu{span['cpu']} at "
            f"t={span['start_ns']} ns for {_us(span['dur_ns'])}{tail}")


def _render_first(first: Dict[str, Any], top_spans: int) -> List[str]:
    lines = [f"first divergence: sample #{first['sample_index']} "
             f"(window [{first['window_ns'][0]}, "
             f"{first['window_ns'][1]}) ns)",
             f"  latency: {_us(first['a']['latency_ns'])} -> "
             f"{_us(first['b']['latency_ns'])} "
             f"({_us_signed(first['latency_delta_ns'])})"]
    if first["buckets"]:
        parts = ", ".join(f"{row['bucket']} "
                          f"{_us_signed(row['delta_ns'])}"
                          for row in first["buckets"])
        lines.append(f"  changed buckets: {parts}")
    spans = first.get("spans", {})
    first_span = spans.get("first")
    if first_span is not None:
        if first_span["change"] == "changed":
            a, b = first_span["a"], first_span["b"]
            lines.append(
                f"  first divergent span: {a['kind']} "
                f"'{a['name'] or '?'}' on cpu{a['cpu']} changed "
                f"{_us(a['dur_ns'])} -> {_us(b['dur_ns'])} "
                f"({_us_signed(first_span['delta_ns'])}) at "
                f"t={b['start_ns']} ns")
        else:
            lines.append(f"  first divergent span: "
                         f"{first_span['change']} "
                         f"{_span_line(first_span['span'])}")
    for label, key in (("introduced", "introduced"), ("lost", "lost")):
        entries = spans.get(key, [])
        count = spans.get(f"{key}_count", len(entries))
        if count:
            lines.append(f"  {label} spans ({count}):")
            for span in entries[:top_spans]:
                lines.append(f"    + {_span_line(span)}" if key ==
                             "introduced" else f"    - {_span_line(span)}")
    changed = spans.get("changed", [])
    if spans.get("changed_count"):
        lines.append(f"  duration-changed spans "
                     f"({spans['changed_count']}):")
        for pair in changed[:top_spans]:
            a, b = pair["a"], pair["b"]
            lines.append(f"    ~ {a['kind']} '{a['name'] or '?'}' "
                         f"cpu{a['cpu']}: {_us(a['dur_ns'])} -> "
                         f"{_us(b['dur_ns'])} "
                         f"({_us_signed(pair['delta_ns'])})")
    return lines


def _render_accounting(deltas: List[Dict[str, Any]]) -> List[str]:
    lines = ["per-CPU accounting drift:"]
    for row in deltas:
        parts = []
        for fld, pair in sorted(row.items()):
            if fld == "cpu":
                continue
            parts.append(f"{fld} {pair[0]} -> {pair[1]}")
        lines.append(f"  cpu{row['cpu']}: " + ", ".join(parts))
    return lines


def render_diff(diff: Any, top_spans: int = 5) -> str:
    """Render one :class:`~repro.observe.diff.engine.TraceDiff`."""
    a, b = diff.a, diff.b
    lines = [f"simdiff: {a['scenario']} (seed {a['seed']}, "
             f"{diff.paired} paired samples)",
             f"  {diff.a_label}: {_describe(a)}",
             f"  {diff.b_label}: {_describe(b)}"]
    if diff.code_changed:
        lines.append(f"  code tree changed: {a['code'][:12]} -> "
                     f"{b['code'][:12]}")
    if diff.config_changed:
        lines.append("  config changed (kernel/shield/faults differ)")
    lines.append("")

    if diff.identical:
        lines.append("verdict: IDENTICAL -- empty diff (same samples, "
                     "accounting and event stream)")
        return "\n".join(lines)

    lines.append("verdict: DIVERGED")
    lines.append(
        f"end-to-end latency: {diff.a_label} {_us(diff.total_a_ns)} "
        f"(max {_us(a['max_latency_ns'])}), {diff.b_label} "
        f"{_us(diff.total_b_ns)} (max {_us(b['max_latency_ns'])}), "
        f"delta {_us_signed(diff.latency_delta_ns)}")
    if diff.unpaired_a or diff.unpaired_b:
        lines.append(f"  sample-count mismatch: {diff.unpaired_a} "
                     f"unpaired in {diff.a_label}, {diff.unpaired_b} "
                     f"in {diff.b_label}")
    lines.append("")
    lines.append("per-bucket delta (closes exactly against the "
                 "latency delta):")
    columns = {
        diff.a_label: {bkt: a_ns for bkt, a_ns, _ in diff.bucket_rows},
        diff.b_label: {bkt: b_ns for bkt, _, b_ns in diff.bucket_rows},
        "delta": {bkt: b_ns - a_ns
                  for bkt, a_ns, b_ns in diff.bucket_rows},
    }
    table = attribution_bucket_table(columns, signed=("delta",))
    lines.extend("  " + line for line in table.splitlines())
    lines.append("")

    if diff.first is not None:
        lines.extend(_render_first(diff.first, top_spans))
    elif not diff.events_equal:
        lines.append("samples agree; divergence is outside every "
                     "sample window (event streams differ)")
    if diff.accounting_deltas:
        lines.append("")
        lines.extend(_render_accounting(diff.accounting_deltas))
    return "\n".join(lines)


def _describe(summary: Dict[str, Any]) -> str:
    shield = "shielded" if summary["shielded"] else "unshielded"
    fault = ""
    if summary["fault_plan"]:
        fault = (f", faults={summary['fault_plan']}"
                 f"@{summary['fault_intensity']:g}")
    return (f"{summary['kernel_name']} ({shield}{fault}), "
            f"{summary['samples']} samples, {summary['events']} events, "
            f"code {summary['code'][:12]}")
