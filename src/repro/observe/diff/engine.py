"""The simdiff engine: pair two recordings, explain the first change.

Two recordings are comparable when they ran the *same experiment* --
same scenario, kind, seed, sample target and ring capacity; the code
tree, kernel config and shield state may differ (that difference is
usually the point).  :func:`diff_recordings` then:

1. pairs the attribution timelines sample-by-sample (the measurement
   program records samples in a deterministic order, so index *i* in
   both runs is the same logical sample);
2. aggregates a per-bucket delta table over the paired samples.
   Because every recorded breakdown sums to its latency exactly (the
   recording layer folds residue into ``other``), the bucket deltas
   sum to the end-to-end latency delta **exactly** -- the engine
   verifies this closure and refuses to emit a table that lies;
3. finds the *first divergence*: the earliest paired sample whose
   ``(end, latency, breakdown)`` row differs, names the buckets whose
   contribution changed, and aligns the two runs' tracepoint spans
   inside that sample window (:mod:`repro.observe.diff.align`) to
   name the span that introduced or lost the time, with simulated-
   time coordinates;
4. reports per-CPU accounting drift (irq-off / preempt-off / BKL max
   windows and event counters).

``identical`` is the strong form of emptiness: every sample row,
the accounting snapshot, the drop counts and the full event streams
agree -- byte-identical runs are identical recordings, and identical
recordings render as an empty diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.observe.diff.align import (
    align_spans,
    extract_spans,
    spans_in_window,
)
from repro.observe.diff.recording import TraceRecording


class TraceDiffError(ValueError):
    """Recordings are not comparable, or a closure check failed."""


#: Accounting counters compared per CPU (name -> human label).
_ACCT_FIELDS = (("max_irq_off_ns", "max irq-off"),
                ("max_preempt_off_ns", "max preempt-off"),
                ("max_bkl_hold_ns", "max BKL hold"),
                ("ticks", "ticks"),
                ("switches", "switches"),
                ("syscalls", "syscalls"),
                ("wakes", "wakes"))


def _recording_summary(rec: TraceRecording) -> Dict[str, Any]:
    return {
        "scenario": rec.scenario,
        "kind": rec.kind,
        "kernel_name": rec.kernel_name,
        "seed": rec.seed,
        "shielded": rec.shielded,
        "fault_plan": rec.fault_plan,
        "fault_intensity": rec.fault_intensity,
        "samples": len(rec.samples),
        "events": len(rec.events),
        "dropped": rec.dropped,
        "code": rec.code,
        "total_latency_ns": rec.total_latency_ns(),
        "max_latency_ns": rec.max_latency_ns(),
    }


@dataclass
class TraceDiff:
    """The full outcome of diffing recording A against recording B."""

    a: Dict[str, Any]
    b: Dict[str, Any]
    a_label: str = "A"
    b_label: str = "B"
    identical: bool = False
    paired: int = 0
    unpaired_a: int = 0
    unpaired_b: int = 0
    #: (bucket, a_ns, b_ns) over the paired samples, report order.
    bucket_rows: List[Tuple[str, int, int]] = field(default_factory=list)
    total_a_ns: int = 0
    total_b_ns: int = 0
    first: Optional[Dict[str, Any]] = None
    accounting_deltas: List[Dict[str, Any]] = field(default_factory=list)
    events_equal: bool = True
    code_changed: bool = False
    config_changed: bool = False

    @property
    def latency_delta_ns(self) -> int:
        """End-to-end latency delta over the paired samples (B - A)."""
        return self.total_b_ns - self.total_a_ns

    @property
    def empty(self) -> bool:
        return self.identical

    def bucket_deltas(self) -> Dict[str, int]:
        """Nonzero per-bucket deltas (B - A), report order."""
        return {bucket: b_ns - a_ns
                for bucket, a_ns, b_ns in self.bucket_rows
                if b_ns - a_ns != 0}

    def divergent_buckets(self) -> List[str]:
        """Buckets implicated in the divergence, strongest first.

        The union of the first-divergence sample's changed buckets and
        the aggregate nonzero deltas, ordered by absolute aggregate
        delta (aggregate-only buckets follow first-sample ones).
        """
        deltas = self.bucket_deltas()
        first: List[str] = []
        if self.first is not None:
            first = [row["bucket"] for row in self.first["buckets"]]
        rest = sorted((b for b in deltas if b not in first),
                      key=lambda b: (-abs(deltas[b]), b))
        return first + rest

    def named_mechanisms(self) -> List[str]:
        """Every mechanism the diff implicates, strongest first.

        The divergent attribution buckets, then mechanisms implicated
        only by per-CPU accounting drift (a grown max irq-off /
        preempt-off / BKL window names its mechanism even when the
        sample windows attribute the time downstream -- e.g. an
        irq-off storm whose cost lands in the softirq drain).  This
        is the set the ``--expect-buckets`` gate checks.
        """
        named = self.divergent_buckets()
        drift_map = (("max_irq_off_ns", "irq_off"),
                     ("max_preempt_off_ns", "preempt_off"),
                     ("max_bkl_hold_ns", "bkl"))
        for row in self.accounting_deltas:
            for fld, bucket in drift_map:
                if fld in row and bucket not in named:
                    named.append(bucket)
        return named

    def to_dict(self) -> Dict[str, Any]:
        return {
            "a": dict(self.a),
            "b": dict(self.b),
            "a_label": self.a_label,
            "b_label": self.b_label,
            "identical": self.identical,
            "paired": self.paired,
            "unpaired_a": self.unpaired_a,
            "unpaired_b": self.unpaired_b,
            "buckets": [
                {"bucket": bucket, "a_ns": a_ns, "b_ns": b_ns,
                 "delta_ns": b_ns - a_ns}
                for bucket, a_ns, b_ns in self.bucket_rows
            ],
            "total_a_ns": self.total_a_ns,
            "total_b_ns": self.total_b_ns,
            "latency_delta_ns": self.latency_delta_ns,
            "divergent_buckets": self.divergent_buckets(),
            "named_mechanisms": self.named_mechanisms(),
            "first_divergence": self.first,
            "accounting_deltas": list(self.accounting_deltas),
            "events_equal": self.events_equal,
            "code_changed": self.code_changed,
            "config_changed": self.config_changed,
        }

    def render(self, top_spans: int = 5) -> str:
        from repro.observe.diff.render import render_diff

        return render_diff(self, top_spans=top_spans)


def _bucket_order(buckets: List[str]) -> List[str]:
    from repro.observe.attribution import BUCKETS

    known = [b for b in BUCKETS if b in buckets]
    extra = sorted(b for b in buckets if b not in BUCKETS)
    return known + extra


def _check_comparable(a: TraceRecording, b: TraceRecording) -> None:
    mismatches = []
    for fld in ("scenario", "kind", "seed", "samples_target",
                "iterations", "capacity", "ncpus"):
        va, vb = getattr(a, fld), getattr(b, fld)
        if va != vb:
            mismatches.append(f"{fld}: {va!r} != {vb!r}")
    if mismatches:
        raise TraceDiffError(
            "recordings are not comparable (same scenario/seed/knobs "
            "required; code and config may differ): "
            + "; ".join(mismatches))


def _first_divergence(a: TraceRecording, b: TraceRecording,
                      index: int) -> Dict[str, Any]:
    end_a, lat_a, bd_a = a.samples[index]
    end_b, lat_b, bd_b = b.samples[index]
    buckets = _bucket_order(sorted(set(bd_a) | set(bd_b)))
    rows = []
    for bucket in buckets:
        va, vb = int(bd_a.get(bucket, 0)), int(bd_b.get(bucket, 0))
        if va != vb:
            rows.append({"bucket": bucket, "a_ns": va, "b_ns": vb,
                         "delta_ns": vb - va})
    rows.sort(key=lambda r: (-abs(r["delta_ns"]), r["bucket"]))

    # Span evidence: align both runs' spans inside the union of the
    # two sample windows [end - latency, end).
    start = min(int(end_a) - int(lat_a), int(end_b) - int(lat_b))
    end = max(int(end_a), int(end_b))
    spans_a = spans_in_window(extract_spans(a.events), start, end)
    spans_b = spans_in_window(extract_spans(b.events), start, end)
    alignment = align_spans(spans_a, spans_b)
    return {
        "sample_index": index,
        "window_ns": [start, end],
        "a": {"end_ns": int(end_a), "latency_ns": int(lat_a)},
        "b": {"end_ns": int(end_b), "latency_ns": int(lat_b)},
        "latency_delta_ns": int(lat_b) - int(lat_a),
        "buckets": rows,
        "spans": alignment.to_dict(),
    }


def _accounting_deltas(a: TraceRecording,
                       b: TraceRecording) -> List[Dict[str, Any]]:
    cpus_a = a.accounting.get("cpus", [])
    cpus_b = b.accounting.get("cpus", [])
    deltas: List[Dict[str, Any]] = []
    for cpu_a, cpu_b in zip(cpus_a, cpus_b):
        changed: Dict[str, Any] = {}
        for fld, _label in _ACCT_FIELDS:
            va, vb = cpu_a.get(fld, 0), cpu_b.get(fld, 0)
            if va != vb:
                changed[fld] = [va, vb]
        if changed:
            changed["cpu"] = cpu_a.get("cpu", len(deltas))
            deltas.append(changed)
    return deltas


def diff_recordings(a: TraceRecording, b: TraceRecording,
                    a_label: str = "A",
                    b_label: str = "B") -> TraceDiff:
    """Diff two comparable recordings (see module docstring)."""
    _check_comparable(a, b)
    diff = TraceDiff(a=_recording_summary(a), b=_recording_summary(b),
                     a_label=a_label, b_label=b_label)
    diff.code_changed = a.code != b.code
    diff.config_changed = (a.kernel_name != b.kernel_name
                           or a.shielded != b.shielded
                           or a.shield != b.shield
                           or a.fault_plan != b.fault_plan
                           or a.fault_intensity != b.fault_intensity)

    paired = min(len(a.samples), len(b.samples))
    diff.paired = paired
    diff.unpaired_a = len(a.samples) - paired
    diff.unpaired_b = len(b.samples) - paired

    totals_a: Dict[str, int] = {}
    totals_b: Dict[str, int] = {}
    first_index: Optional[int] = None
    for i in range(paired):
        sample_a, sample_b = a.samples[i], b.samples[i]
        for bucket, ns in sample_a[2].items():
            totals_a[bucket] = totals_a.get(bucket, 0) + int(ns)
        for bucket, ns in sample_b[2].items():
            totals_b[bucket] = totals_b.get(bucket, 0) + int(ns)
        if first_index is None and sample_a != sample_b:
            first_index = i
    diff.total_a_ns = sum(int(s[1]) for s in a.samples[:paired])
    diff.total_b_ns = sum(int(s[1]) for s in b.samples[:paired])
    diff.bucket_rows = [
        (bucket, totals_a.get(bucket, 0), totals_b.get(bucket, 0))
        for bucket in _bucket_order(sorted(set(totals_a) | set(totals_b)))
    ]

    # Closure: the bucket table must sum exactly to the end-to-end
    # latency delta.  Recording-time residue folding makes this hold
    # by construction; a violation means the recording is corrupt.
    table_delta = sum(b_ns - a_ns for _bkt, a_ns, b_ns in diff.bucket_rows)
    if table_delta != diff.latency_delta_ns:
        raise TraceDiffError(
            f"bucket delta table ({table_delta} ns) does not close "
            f"against the latency delta ({diff.latency_delta_ns} ns); "
            f"corrupt recording")

    if first_index is not None:
        diff.first = _first_divergence(a, b, first_index)
    diff.accounting_deltas = _accounting_deltas(a, b)
    diff.events_equal = a.events == b.events and a.dropped == b.dropped

    diff.identical = (first_index is None
                      and diff.unpaired_a == 0
                      and diff.unpaired_b == 0
                      and diff.events_equal
                      and not diff.accounting_deltas
                      and a.accounting == b.accounting)
    return diff
