"""Trace recordings: one traced run, frozen into plain data.

A :class:`TraceRecording` captures everything simdiff needs to compare
two runs after the fact: the typed tracepoint stream (merged across
CPUs, time-ordered), the per-CPU accounting snapshot, and the
attribution timeline -- one ``(end, latency, breakdown)`` row per
recorded sample, with any bookkeeping residue folded into the
``other`` bucket so every row sums to its latency **exactly** (the
invariant the diff engine's bucket-delta closure rests on).

The body is plain JSON-able data, so recordings cross process
boundaries (campaign workers pickle them on ``ScenarioResult.trace``)
and persist as ``RTRACE1`` entries -- either as standalone files
(:meth:`TraceRecording.save` / :meth:`TraceRecording.load`) or in a
content-addressed :class:`~repro.store.store.ResultStore` keyed by
:func:`~repro.store.keys.recording_key`.

A recording also embeds its run knobs (sample count, seed, capacity,
fault plan/intensity, shield state), so :func:`spec_for_recording`
can rebuild the spec and re-record the same run against the *current*
code tree -- the semantic-golden mode: the committed baseline says
what the run should look like, and a diff explains any drift in
mechanism terms instead of a CRC mismatch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Recording body schema version (inside the RTRACE1 payload).
RECORDING_FORMAT = 1

#: Fault-report fields worth persisting (the timeline is O(injections)
#: and only these summaries are ever compared).
_FAULT_FIELDS = ("plan", "intensity", "enabled", "injections",
                 "by_injector", "digest")


class RecordingError(ValueError):
    """A recording body failed validation or could not be loaded."""


def _canonical_json(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass
class TraceRecording:
    """One traced run as plain data (see module docstring)."""

    scenario: str
    kind: str
    kernel_name: str
    seed: int
    ncpus: int
    watched: Optional[str]
    shielded: bool
    shield: Dict[str, Any]
    fault_plan: str
    fault_intensity: float
    samples_target: int
    iterations: int
    capacity: int
    code: str
    #: Tracepoint stream: ``[time, cpu, tp, [args...]]`` rows, merged
    #: across CPUs and time-ordered (ties by CPU index).
    events: List[List[Any]] = field(default_factory=list)
    dropped: int = 0
    accounting: Dict[str, Any] = field(default_factory=dict)
    #: Attribution timeline: ``[end, latency, {bucket: ns}]`` rows in
    #: record order; each breakdown sums to its latency exactly.
    samples: List[List[Any]] = field(default_factory=list)
    hits: Dict[str, int] = field(default_factory=dict)
    faults: Optional[Dict[str, Any]] = None

    # -- derived --------------------------------------------------------
    def total_latency_ns(self) -> int:
        return sum(int(s[1]) for s in self.samples)

    def max_latency_ns(self) -> int:
        return max((int(s[1]) for s in self.samples), default=0)

    def events_digest(self) -> str:
        """Hex SHA-256 of the canonical event stream."""
        text = _canonical_json(self.events)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        shield = "shielded" if self.shielded else "unshielded"
        fault = (f", faults={self.fault_plan}"
                 f"@{self.fault_intensity:g}" if self.fault_plan else "")
        return (f"{self.scenario} seed={self.seed} {shield}"
                f" samples={len(self.samples)}{fault}"
                f" code={self.code[:12]}")

    # -- body <-> dataclass --------------------------------------------
    def to_body(self) -> Dict[str, Any]:
        return {
            "recording_format": RECORDING_FORMAT,
            "scenario": self.scenario,
            "kind": self.kind,
            "kernel_name": self.kernel_name,
            "seed": self.seed,
            "ncpus": self.ncpus,
            "watched": self.watched,
            "shielded": self.shielded,
            "shield": dict(self.shield),
            "fault_plan": self.fault_plan,
            "fault_intensity": self.fault_intensity,
            "samples_target": self.samples_target,
            "iterations": self.iterations,
            "capacity": self.capacity,
            "code": self.code,
            "events": self.events,
            "dropped": self.dropped,
            "accounting": self.accounting,
            "samples": self.samples,
            "hits": dict(self.hits),
            "faults": self.faults,
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "TraceRecording":
        if not isinstance(body, dict):
            raise RecordingError("recording body is not an object")
        if body.get("recording_format") != RECORDING_FORMAT:
            raise RecordingError(
                f"unsupported recording format "
                f"{body.get('recording_format')!r}")
        try:
            return cls(
                scenario=body["scenario"],
                kind=body["kind"],
                kernel_name=body["kernel_name"],
                seed=int(body["seed"]),
                ncpus=int(body["ncpus"]),
                watched=body.get("watched"),
                shielded=bool(body["shielded"]),
                shield=dict(body["shield"]),
                fault_plan=body.get("fault_plan", ""),
                fault_intensity=float(body.get("fault_intensity", 1.0)),
                samples_target=int(body["samples_target"]),
                iterations=int(body["iterations"]),
                capacity=int(body["capacity"]),
                code=body["code"],
                events=list(body["events"]),
                dropped=int(body.get("dropped", 0)),
                accounting=dict(body.get("accounting", {})),
                samples=list(body["samples"]),
                hits=dict(body.get("hits", {})),
                faults=body.get("faults"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RecordingError(
                f"malformed recording body: {exc}") from None

    # -- persistence ----------------------------------------------------
    def save(self, path: str) -> str:
        """Write this recording as a standalone RTRACE1 file.

        The file *is* a store entry (same frame, same CRC trailer),
        keyed by the digest of its own body so it self-validates.
        """
        import os

        from repro.store.entry import encode_recording
        from repro.store.keys import digest_of

        body = self.to_body()
        blob = encode_recording(body, digest_of(body), self.code)
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str) -> "TraceRecording":
        """Read a standalone RTRACE1 file back into a recording."""
        from repro.store.entry import StoreCorruptError, decode_recording

        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError as exc:
            raise RecordingError(f"cannot read {path}: {exc}") from None
        try:
            _meta, body = decode_recording(blob)
        except StoreCorruptError as exc:
            raise RecordingError(f"{path}: {exc}") from None
        return cls.from_body(body)


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------
def _fold_residue(latency: int,
                  breakdown: Dict[str, int]) -> Dict[str, int]:
    """Exact-closure normalisation of one sample's breakdown.

    The attribution partition is exact by construction; any residue
    from state lag at the window edges lands in ``other`` so the row
    sums to *latency* exactly (zero-valued buckets are dropped).
    """
    out = {k: int(v) for k, v in sorted(breakdown.items()) if v}
    residue = int(latency) - sum(out.values())
    if residue:
        out["other"] = out.get("other", 0) + residue
        if out["other"] == 0:
            del out["other"]
    return out


def recording_from_run(tracer: Any, spec: Any,
                       result: Any) -> TraceRecording:
    """Freeze one traced run (post-uninstall) into a recording.

    *tracer* is the run's :class:`~repro.observe.tracer.SimTracer`
    (rings retain their events after ``uninstall()``), *spec* the
    :class:`~repro.experiments.scenario.ScenarioSpec` that ran, and
    *result* the finished ``ScenarioResult`` (for the fault summary
    and kernel description).
    """
    from repro.store.keys import code_version

    tp = tracer.tp
    events = [[e.time, e.cpu, int(e.tp), list(e.args)]
              for e in tp.events()]
    samples = [[int(end), int(latency), _fold_residue(latency, breakdown)]
               for end, latency, breakdown in tracer.engine.samples]
    faults = None
    if result.faults is not None:
        faults = {k: result.faults[k] for k in _FAULT_FIELDS
                  if k in result.faults}
    shield = spec.shield
    return TraceRecording(
        scenario=spec.name,
        kind=spec.kind,
        kernel_name=result.kernel_name,
        seed=spec.seed,
        ncpus=tp.ncpus,
        watched=tracer.engine.watch,
        shielded=shield.any_component,
        shield={"procs": shield.procs, "irqs": shield.irqs,
                "ltmr": shield.ltmr, "cpu": shield.cpu,
                "pin_irq": shield.pin_irq},
        fault_plan=spec.fault_plan,
        fault_intensity=spec.fault_intensity,
        samples_target=spec.measurement.samples,
        iterations=spec.measurement.iterations,
        capacity=tracer.config.capacity,
        code=code_version(),
        events=events,
        dropped=tp.dropped(),
        accounting=tp.accounting.to_dict(),
        samples=samples,
        hits=tp.hit_counts(),
        faults=faults,
    )


def attach_recording(tracer: Any, spec: Any,
                     result: Any) -> Dict[str, Any]:
    """Hook for ``run_scenario``: ride the recording on the result.

    The body is plain data, so it survives the campaign runner's
    worker pickling -- which is what makes the "recordings are
    byte-identical across worker counts" guarantee testable.
    """
    body = recording_from_run(tracer, spec, result).to_body()
    if result.trace is None:
        result.trace = {}
    result.trace["recording"] = body
    return body


def record_scenario(spec: Any, capacity: int = 65536,
                    faults: Optional[Any] = None
                    ) -> Tuple[TraceRecording, Any]:
    """Run *spec* traced with recording on; returns (recording, result)."""
    from repro.experiments.scenario import run_scenario
    from repro.observe.tracer import TraceConfig

    result = run_scenario(
        spec, trace=TraceConfig(capacity=capacity, record=True),
        faults=faults)
    body = (result.trace or {}).get("recording")
    if body is None:
        raise RecordingError("traced run produced no recording")
    return TraceRecording.from_body(body), result


# ----------------------------------------------------------------------
# Replay: recording -> the spec that would re-record it
# ----------------------------------------------------------------------
def spec_for_recording(rec: TraceRecording) -> Any:
    """Rebuild the ScenarioSpec a recording's run knobs describe.

    Resolves the scenario from the *current* catalog and re-applies
    the recorded knobs (samples, iterations, seed, fault plan and
    intensity, unshielded twin override) -- re-recording under the
    current code tree is exactly the semantic-golden check.
    """
    from repro.experiments.scenario import ShieldSpec, scenario

    spec = scenario(rec.scenario).configured(
        samples=rec.samples_target,
        iterations=rec.iterations,
        seed=rec.seed,
        fault_plan=rec.fault_plan,
        fault_intensity=rec.fault_intensity,
    )
    if not rec.shielded and spec.shield.any_component:
        spec = spec.with_overrides(
            shield=ShieldSpec(cpu=spec.shield.cpu))
    return spec


def rerecord(rec: TraceRecording) -> TraceRecording:
    """Re-record a recording's run under the current code tree."""
    fresh, _result = record_scenario(spec_for_recording(rec),
                                     capacity=rec.capacity)
    return fresh
