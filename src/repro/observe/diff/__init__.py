"""simdiff: trace record/replay store with cross-run diffing.

The observability stack (simtrace) inspects one run; simdiff compares
two.  A :class:`TraceRecording` freezes a traced run -- tracepoint
stream, per-CPU accounting, attribution timeline -- into plain data
persisted as ``RTRACE1`` entries (standalone files or the content-
addressed store); :func:`diff_recordings` pairs two recordings of the
same scenario/seed and explains the *first divergence* in mechanism
terms: which bucket's contribution changed, which tracepoint span
introduced or lost the time, at what simulated-time coordinates,
plus a per-bucket delta table that sums exactly to the end-to-end
latency delta.  :mod:`~repro.observe.diff.goldens` turns this into
the semantic-golden CI mode.
"""

from repro.observe.diff.align import (
    Span,
    SpanAlignment,
    align_spans,
    extract_spans,
    spans_in_window,
)
from repro.observe.diff.engine import (
    TraceDiff,
    TraceDiffError,
    diff_recordings,
)
from repro.observe.diff.goldens import (
    GOLDEN_SPECS,
    check_golden,
    golden_dir,
    golden_names,
    golden_path,
    record_golden,
)
from repro.observe.diff.recording import (
    RecordingError,
    TraceRecording,
    attach_recording,
    record_scenario,
    recording_from_run,
    rerecord,
    spec_for_recording,
)
from repro.observe.diff.render import render_diff

__all__ = [
    "GOLDEN_SPECS",
    "RecordingError",
    "Span",
    "SpanAlignment",
    "TraceDiff",
    "TraceDiffError",
    "TraceRecording",
    "align_spans",
    "attach_recording",
    "check_golden",
    "diff_recordings",
    "extract_spans",
    "golden_dir",
    "golden_names",
    "golden_path",
    "record_golden",
    "record_scenario",
    "recording_from_run",
    "render_diff",
    "rerecord",
    "spans_in_window",
    "spec_for_recording",
]
