"""Span extraction and cross-run alignment for simdiff.

Recordings carry the raw tracepoint stream; diffing needs *spans* --
``(cpu, kind, name, start, end)`` intervals a human can be pointed at:
execution frames (task / hardirq / softirq / switch / spin, from
``FRAME_PUSH``/``FRAME_POP``) plus the pseudo-frames for irq-off and
preempt-off windows (from their on/off toggle tracepoints).

Extraction is ring-wrap tolerant, mirroring the Chrome exporter's
discipline: an unmatched pop (its push was overwritten by the ring)
synthesises a span opening at that CPU's first buffered timestamp,
and frames still open at the end of the stream close at the last
timestamp -- so a recording taken after an overwrite-oldest wrap
still yields a balanced, alignable span set.

Alignment pairs two runs' spans by *signature* ``(cpu, kind, name)``
using :class:`difflib.SequenceMatcher` (``autojunk=False`` -- span
streams are long and repetitive, and the junk heuristic would discard
exactly the hot signatures we care about).  Matched spans with equal
durations are the common timeline; the rest classify as *introduced*
(only in B), *lost* (only in A) or *changed* (same signature, a
different duration) -- the evidence the diff engine attaches to a
first divergence.
"""

from __future__ import annotations

from difflib import SequenceMatcher
from typing import Any, Dict, List, Optional, Tuple

from repro.observe.tracepoints import TP


class Span:
    """One attributable interval on one CPU."""

    __slots__ = ("cpu", "kind", "name", "start", "end", "synthetic")

    def __init__(self, cpu: int, kind: str, name: str, start: int,
                 end: int, synthetic: bool = False) -> None:
        self.cpu = cpu
        self.kind = kind
        self.name = name
        self.start = start
        self.end = end
        #: True when an edge was synthesised (ring wrap / open tail).
        self.synthetic = synthetic

    @property
    def dur(self) -> int:
        return self.end - self.start

    @property
    def signature(self) -> Tuple[int, str, str]:
        return (self.cpu, self.kind, self.name)

    def to_dict(self) -> Dict[str, Any]:
        return {"cpu": self.cpu, "kind": self.kind, "name": self.name,
                "start_ns": self.start, "end_ns": self.end,
                "dur_ns": self.dur, "synthetic": self.synthetic}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<span {self.kind}:{self.name or '?'} cpu{self.cpu} "
                f"[{self.start}, {self.end})>")


def _frame_name(kind: str, label: str, owner: str) -> str:
    return owner if owner else label


def extract_spans(events: List[List[Any]]) -> List[Span]:
    """Extract the span set from a recording's event rows.

    *events* are ``[time, cpu, tp, [args...]]`` rows, time-ordered
    (a :class:`~repro.observe.diff.recording.TraceRecording`'s
    ``events``).  Returns spans sorted by (start, cpu, kind, name).
    """
    frames: Dict[int, List[Span]] = {}
    toggles: Dict[Tuple[int, str], Span] = {}
    first_time: Dict[int, int] = {}
    spans: List[Span] = []
    last_time = 0

    for row in events:
        t, cpu, tp, args = int(row[0]), int(row[1]), int(row[2]), row[3]
        last_time = max(last_time, t)
        if cpu not in first_time:
            first_time[cpu] = t
        if tp == TP.FRAME_PUSH:
            kind, label, owner = args
            frames.setdefault(cpu, []).append(
                Span(cpu, kind, _frame_name(kind, label, owner), t, t))
        elif tp == TP.FRAME_POP:
            kind, label, owner = args
            stack = frames.get(cpu)
            if stack:
                span = stack.pop()
                span.end = t
            else:
                # Wrap orphan: the push fell off the ring; the frame
                # was open since (at least) the window start.
                span = Span(cpu, kind, _frame_name(kind, label, owner),
                            first_time[cpu], t, synthetic=True)
            spans.append(span)
        elif tp == TP.IRQS_OFF:
            toggles[(cpu, "irq_off")] = Span(cpu, "irq_off", "", t, t)
        elif tp == TP.IRQS_ON:
            span = toggles.pop((cpu, "irq_off"), None)
            if span is None:
                span = Span(cpu, "irq_off", "", first_time[cpu], t,
                            synthetic=True)
            else:
                span.end = t
            spans.append(span)
        elif tp == TP.PREEMPT_OFF:
            toggles[(cpu, "preempt_off")] = Span(
                cpu, "preempt_off", args[0] if args else "", t, t)
        elif tp == TP.PREEMPT_ON:
            span = toggles.pop((cpu, "preempt_off"), None)
            if span is None:
                span = Span(cpu, "preempt_off",
                            args[0] if args else "", first_time[cpu], t,
                            synthetic=True)
            else:
                span.end = t
            spans.append(span)

    # Close everything still open at the end of the stream.
    for stack in frames.values():
        for span in stack:
            span.end = last_time
            span.synthetic = True
            spans.append(span)
    for span in toggles.values():
        span.end = last_time
        span.synthetic = True
        spans.append(span)

    spans.sort(key=lambda s: (s.start, s.cpu, s.kind, s.name))
    return spans


def spans_in_window(spans: List[Span], start: int,
                    end: int) -> List[Span]:
    """Spans overlapping ``[start, end)`` (original coordinates)."""
    return [s for s in spans if s.end > start and s.start < end]


class SpanAlignment:
    """The classified outcome of aligning two span sequences."""

    __slots__ = ("matched", "changed", "introduced", "lost")

    def __init__(self) -> None:
        #: (span_a, span_b) pairs with identical durations.
        self.matched: List[Tuple[Span, Span]] = []
        #: (span_a, span_b) same-signature pairs whose durations differ.
        self.changed: List[Tuple[Span, Span]] = []
        #: Spans only present in B.
        self.introduced: List[Span] = []
        #: Spans only present in A.
        self.lost: List[Span] = []

    def first_divergent(self) -> Optional[Dict[str, Any]]:
        """The earliest span-level change, in simulated time.

        Introduced/lost spans anchor at their own start; changed
        pairs anchor at the earlier of the two starts.  Ties break
        toward the larger absolute duration delta.
        """
        candidates: List[Tuple[int, int, str, Dict[str, Any]]] = []
        for span in self.introduced:
            candidates.append((span.start, -span.dur, "introduced",
                               {"change": "introduced",
                                "span": span.to_dict()}))
        for span in self.lost:
            candidates.append((span.start, -span.dur, "lost",
                               {"change": "lost",
                                "span": span.to_dict()}))
        for a, b in self.changed:
            delta = b.dur - a.dur
            candidates.append((min(a.start, b.start), -abs(delta),
                               "changed",
                               {"change": "changed",
                                "delta_ns": delta,
                                "a": a.to_dict(), "b": b.to_dict()}))
        if not candidates:
            return None
        candidates.sort(key=lambda c: (c[0], c[1], c[2]))
        return candidates[0][3]

    def to_dict(self, top: int = 5) -> Dict[str, Any]:
        def _delta(pair: Tuple[Span, Span]) -> int:
            return pair[1].dur - pair[0].dur

        changed = sorted(self.changed,
                         key=lambda p: (-abs(_delta(p)), p[0].start))
        return {
            "matched": len(self.matched),
            "introduced": [s.to_dict() for s in
                           self.introduced[:top]],
            "introduced_count": len(self.introduced),
            "lost": [s.to_dict() for s in self.lost[:top]],
            "lost_count": len(self.lost),
            "changed": [{"a": a.to_dict(), "b": b.to_dict(),
                         "delta_ns": _delta((a, b))}
                        for a, b in changed[:top]],
            "changed_count": len(self.changed),
            "first": self.first_divergent(),
        }


def align_spans(spans_a: List[Span],
                spans_b: List[Span]) -> SpanAlignment:
    """Align two span sequences by signature (see module docstring)."""
    out = SpanAlignment()
    sig_a = [s.signature for s in spans_a]
    sig_b = [s.signature for s in spans_b]
    matcher = SequenceMatcher(a=sig_a, b=sig_b, autojunk=False)
    for op, i1, i2, j1, j2 in matcher.get_opcodes():
        if op == "equal":
            for a, b in zip(spans_a[i1:i2], spans_b[j1:j2]):
                if a.dur == b.dur:
                    out.matched.append((a, b))
                else:
                    out.changed.append((a, b))
        else:
            if op in ("delete", "replace"):
                out.lost.extend(spans_a[i1:i2])
            if op in ("insert", "replace"):
                out.introduced.extend(spans_b[j1:j2])
    return out
