"""Observability: typed tracepoints, per-CPU accounting, attribution.

The package is linsim's analogue of the kernel's ftrace/perf stack:

* :mod:`repro.observe.tracepoints` -- the static tracepoint registry
  and per-CPU ring buffers (zero-alloc when disabled),
* :mod:`repro.observe.accounting` -- ``/proc/stat`` /
  ``/proc/interrupts``-style counters maintained O(1) at tracepoints,
* :mod:`repro.observe.attribution` -- the latency attribution engine
  decomposing each recorded sample into mechanism buckets,
* :mod:`repro.observe.chrometrace` -- Chrome trace-event (Perfetto)
  JSON export with CPUs as tracks,
* :mod:`repro.observe.tracer` -- the :class:`SimTracer` orchestration
  that installs all of the above on a bench for one run,
* :mod:`repro.observe.diff` -- simdiff: trace recordings persisted as
  ``RTRACE1`` store entries, cross-run attribution diffing with
  first-divergence reports, and the semantic-golden CI mode.

Everything here is observational: enabling tracing must never add
simulated time, consume RNG draws, or otherwise perturb the run (the
golden byte-identity sweep enforces this for every scenario).
"""

from repro.observe.tracepoints import TP, TraceEvent, Tracepoints
from repro.observe.tracer import SimTracer, TraceConfig

__all__ = [
    "TP",
    "TraceEvent",
    "Tracepoints",
    "SimTracer",
    "TraceConfig",
]
