"""The static tracepoint registry and per-CPU ring buffers.

Kernel-style typed tracepoints replace the ad-hoc free-form
:class:`~repro.sim.trace.TraceBuffer` emits on the hot paths.  Each
event is a member of the :class:`TP` enum with a fixed argument shape;
call sites guard with a single attribute check::

    tp = self.sim.tp
    if tp.enabled:
        tp.irq_entry(sim.now, cpu.index, desc.irq, desc.name)

so a disabled registry costs two attribute loads and a branch per
site -- no tuples, no strings, no allocation.  When enabled, each emit
appends one slotted :class:`TraceEvent` to the emitting CPU's
fixed-capacity :class:`TraceRing`, bumps the per-event hit counter,
updates the O(1) per-CPU accounting (:mod:`repro.observe.accounting`)
and forwards to the optional listener (the attribution engine).

The registry is observational by contract: it never schedules events,
draws randomness, or mutates kernel/hardware state.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.observe.accounting import CpuAccounting


class TP(enum.IntEnum):
    """The static tracepoint catalogue (see DESIGN.md section 5d)."""

    SCHED_SWITCH = 0      # (task_name,)             task installed on cpu
    SCHED_DESCHED = 1     # (task_name, runnable, target_cpu)
    SCHED_WAKE = 2        # (task_name, from_cpu)    emitted on target cpu
    TASK_EXIT = 3         # (task_name,)
    IRQ_RAISE = 4         # (irq, name)              emitted on routed cpu
    IRQ_PEND = 5          # (irq, name)              delivery blocked
    IRQ_ENTRY = 6         # (irq, name)
    IRQ_EXIT = 7          # (irq, name)
    SOFTIRQ_RAISE = 8     # (vec,)
    SOFTIRQ_ENTRY = 9     # (vec,)
    SOFTIRQ_EXIT = 10     # (vec,)
    PREEMPT_OFF = 11      # (task_name,)             preempt_count 0 -> 1
    PREEMPT_ON = 12       # (task_name,)             preempt_count 1 -> 0
    IRQS_OFF = 13         # ()                       disable depth 0 -> 1
    IRQS_ON = 14          # ()                       disable depth 1 -> 0
    LOCK_ACQUIRE = 15     # (lock_name, task_name, is_bkl)
    LOCK_CONTENDED = 16   # (lock_name, task_name, is_bkl)
    LOCK_RELEASE = 17     # (lock_name, task_name, hold_ns, is_bkl)
    SHIELD_UPDATE = 18    # (procs_mask, irqs_mask, ltmr_mask)
    TIMER_TICK = 19       # ()
    SYSCALL_ENTRY = 20    # (task_name, syscall_name)
    SYSCALL_EXIT = 21     # (task_name,)
    FRAME_PUSH = 22       # (kind_name, label, owner_name)
    FRAME_POP = 23        # (kind_name, label, owner_name)
    LATENCY_SAMPLE = 24   # (task_name, latency_ns)
    TASK_CREATE = 25      # (task_name,)
    FAULT_INJECT = 26     # (injector_key, detail)     simfault injection

    # IntEnum hashing/eq go through Python-level dunders; members key
    # hit counters on every emit, so use identity semantics.
    __hash__ = object.__hash__


#: Number of registered tracepoints (hit-counter table size).
N_TRACEPOINTS = len(TP)


class TraceEvent:
    """One slotted tracepoint record."""

    __slots__ = ("time", "cpu", "tp", "args")

    def __init__(self, time: int, cpu: int, tp: TP, args: tuple) -> None:
        self.time = time
        self.cpu = cpu
        self.tp = tp
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{TP(self.tp).name.lower()} t={self.time} "
                f"cpu{self.cpu} {self.args}>")


class TraceRing:
    """Fixed-capacity overwrite-oldest ring of :class:`TraceEvent`."""

    __slots__ = ("capacity", "_buf", "_next", "dropped")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("trace ring capacity must be positive")
        self.capacity = capacity
        self._buf: List[Optional[TraceEvent]] = []
        self._next = 0
        self.dropped = 0

    def append(self, event: TraceEvent) -> None:
        buf = self._buf
        if len(buf) < self.capacity:
            buf.append(event)
            return
        self._buf[self._next] = event
        self._next = (self._next + 1) % self.capacity
        self.dropped += 1

    def __len__(self) -> int:
        return len(self._buf)

    def snapshot(self) -> List[TraceEvent]:
        """Buffered events, oldest first."""
        buf = self._buf
        if len(buf) < self.capacity or self._next == 0:
            return list(buf)
        return buf[self._next:] + buf[:self._next]

    def clear(self) -> None:
        self._buf = []
        self._next = 0
        self.dropped = 0


class TraceListener:
    """Base class for online tracepoint consumers.

    The registry dispatches to same-named methods; everything defaults
    to a no-op so listeners override only the events they care about.
    """

    def sched_switch(self, now: int, cpu: int, task: str) -> None: ...
    def sched_desched(self, now: int, cpu: int, task: str,
                      runnable: bool, target: int) -> None: ...
    def sched_wake(self, now: int, cpu: int, task: str,
                   from_cpu: int) -> None: ...
    def task_exit(self, now: int, cpu: int, task: str) -> None: ...
    def irq_entry(self, now: int, cpu: int, irq: int, name: str) -> None: ...
    def irq_exit(self, now: int, cpu: int, irq: int, name: str) -> None: ...
    def softirq_entry(self, now: int, cpu: int, vec: int) -> None: ...
    def softirq_exit(self, now: int, cpu: int, vec: int) -> None: ...
    def preempt_off(self, now: int, cpu: int, task: str) -> None: ...
    def preempt_on(self, now: int, cpu: int, task: str) -> None: ...
    def irqs_off(self, now: int, cpu: int) -> None: ...
    def irqs_on(self, now: int, cpu: int) -> None: ...
    def lock_acquire(self, now: int, cpu: int, lock: str, task: str,
                     is_bkl: bool) -> None: ...
    def lock_contended(self, now: int, cpu: int, lock: str, task: str,
                       is_bkl: bool) -> None: ...
    def lock_release(self, now: int, cpu: int, lock: str, task: str,
                     hold_ns: int, is_bkl: bool) -> None: ...
    def syscall_entry(self, now: int, cpu: int, task: str,
                      name: str) -> None: ...
    def syscall_exit(self, now: int, cpu: int, task: str) -> None: ...
    def frame_push(self, now: int, cpu: int, kind: str, label: str,
                   owner: str) -> None: ...
    def frame_pop(self, now: int, cpu: int, kind: str, label: str,
                  owner: str) -> None: ...
    def fault_inject(self, now: int, cpu: int, injector: str,
                     detail: str) -> None: ...


class Tracepoints:
    """The per-simulator tracepoint registry.

    Created disabled by every :class:`~repro.sim.engine.Simulator`;
    :meth:`configure` (called by the machine once the CPU count is
    known) sizes the per-CPU rings, and :meth:`enable` turns emission
    on.  The legacy free-form :class:`~repro.sim.trace.TraceBuffer`
    (``sim.trace``) stays independent: enabling typed tracepoints does
    not switch on label construction, and vice versa.
    """

    __slots__ = ("enabled", "capacity", "rings", "accounting", "hits",
                 "listener")

    def __init__(self, capacity: int = 65536) -> None:
        self.enabled = False
        self.capacity = capacity
        self.rings: List[TraceRing] = []
        self.accounting = CpuAccounting(0)
        self.hits = [0] * N_TRACEPOINTS
        self.listener: Optional[TraceListener] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def configure(self, ncpus: int) -> None:
        """Size per-CPU state; called by the machine at construction."""
        self.rings = [TraceRing(self.capacity) for _ in range(ncpus)]
        self.accounting = CpuAccounting(ncpus)

    @property
    def ncpus(self) -> int:
        return len(self.rings)

    def enable(self) -> None:
        if not self.rings:
            raise ValueError("tracepoints not configured: no machine "
                             "attached this simulator (configure(ncpus))")
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        for ring in self.rings:
            ring.clear()
        self.accounting.clear()
        self.hits = [0] * N_TRACEPOINTS

    def dropped(self) -> int:
        """Total events evicted across all CPU rings."""
        return sum(ring.dropped for ring in self.rings)

    def events(self) -> List[TraceEvent]:
        """All buffered events merged across CPUs, time-ordered.

        Ties are broken by CPU index then by intra-ring order (each
        ring is already monotone), keeping the merge deterministic.
        """
        merged: List[TraceEvent] = []
        for ring in self.rings:
            merged.extend(ring.snapshot())
        merged.sort(key=lambda e: (e.time, e.cpu))
        return merged

    def hit_counts(self) -> dict:
        """Per-tracepoint emit counts, as ``{name: count}``."""
        return {TP(i).name.lower(): self.hits[i]
                for i in range(N_TRACEPOINTS) if self.hits[i]}

    def top_hits(self, n: int = 10) -> List[tuple]:
        """The *n* most-emitted tracepoints as ``(name, count)``."""
        pairs = sorted(self.hit_counts().items(),
                       key=lambda kv: (-kv[1], kv[0]))
        return pairs[:n]

    # ------------------------------------------------------------------
    # Emission (one method per tracepoint; call only when enabled)
    # ------------------------------------------------------------------
    def sched_switch(self, now: int, cpu: int, task: str) -> None:
        self.hits[TP.SCHED_SWITCH] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.SCHED_SWITCH, (task,)))
        self.accounting.cpus[cpu].switches += 1
        lis = self.listener
        if lis is not None:
            lis.sched_switch(now, cpu, task)

    def sched_desched(self, now: int, cpu: int, task: str,
                      runnable: bool, target: int) -> None:
        self.hits[TP.SCHED_DESCHED] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.SCHED_DESCHED, (task, runnable, target)))
        lis = self.listener
        if lis is not None:
            lis.sched_desched(now, cpu, task, runnable, target)

    def sched_wake(self, now: int, cpu: int, task: str,
                   from_cpu: int) -> None:
        self.hits[TP.SCHED_WAKE] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.SCHED_WAKE, (task, from_cpu)))
        self.accounting.cpus[cpu].wakes += 1
        lis = self.listener
        if lis is not None:
            lis.sched_wake(now, cpu, task, from_cpu)

    def task_exit(self, now: int, cpu: int, task: str) -> None:
        self.hits[TP.TASK_EXIT] += 1
        self.rings[cpu].append(TraceEvent(now, cpu, TP.TASK_EXIT, (task,)))
        lis = self.listener
        if lis is not None:
            lis.task_exit(now, cpu, task)

    def task_create(self, now: int, cpu: int, task: str) -> None:
        self.hits[TP.TASK_CREATE] += 1
        self.rings[cpu].append(TraceEvent(now, cpu, TP.TASK_CREATE, (task,)))

    def irq_raise(self, now: int, cpu: int, irq: int, name: str) -> None:
        self.hits[TP.IRQ_RAISE] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.IRQ_RAISE, (irq, name)))

    def irq_pend(self, now: int, cpu: int, irq: int, name: str) -> None:
        self.hits[TP.IRQ_PEND] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.IRQ_PEND, (irq, name)))

    def irq_entry(self, now: int, cpu: int, irq: int, name: str) -> None:
        self.hits[TP.IRQ_ENTRY] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.IRQ_ENTRY, (irq, name)))
        acct = self.accounting.cpus[cpu]
        acct.irqs[irq] = acct.irqs.get(irq, 0) + 1
        self.accounting.irq_names[irq] = name
        lis = self.listener
        if lis is not None:
            lis.irq_entry(now, cpu, irq, name)

    def irq_exit(self, now: int, cpu: int, irq: int, name: str) -> None:
        self.hits[TP.IRQ_EXIT] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.IRQ_EXIT, (irq, name)))
        lis = self.listener
        if lis is not None:
            lis.irq_exit(now, cpu, irq, name)

    def softirq_raise(self, now: int, cpu: int, vec: int) -> None:
        self.hits[TP.SOFTIRQ_RAISE] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.SOFTIRQ_RAISE, (vec,)))

    def softirq_entry(self, now: int, cpu: int, vec: int) -> None:
        self.hits[TP.SOFTIRQ_ENTRY] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.SOFTIRQ_ENTRY, (vec,)))
        acct = self.accounting.cpus[cpu]
        acct.softirqs[vec] = acct.softirqs.get(vec, 0) + 1
        lis = self.listener
        if lis is not None:
            lis.softirq_entry(now, cpu, vec)

    def softirq_exit(self, now: int, cpu: int, vec: int) -> None:
        self.hits[TP.SOFTIRQ_EXIT] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.SOFTIRQ_EXIT, (vec,)))
        lis = self.listener
        if lis is not None:
            lis.softirq_exit(now, cpu, vec)

    def preempt_off(self, now: int, cpu: int, task: str) -> None:
        self.hits[TP.PREEMPT_OFF] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.PREEMPT_OFF, (task,)))
        self.accounting.cpus[cpu].preempt_off_since = now
        lis = self.listener
        if lis is not None:
            lis.preempt_off(now, cpu, task)

    def preempt_on(self, now: int, cpu: int, task: str) -> None:
        self.hits[TP.PREEMPT_ON] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.PREEMPT_ON, (task,)))
        acct = self.accounting.cpus[cpu]
        since = acct.preempt_off_since
        if since is not None:
            window = now - since
            if window > acct.max_preempt_off_ns:
                acct.max_preempt_off_ns = window
            acct.preempt_off_since = None
        lis = self.listener
        if lis is not None:
            lis.preempt_on(now, cpu, task)

    def irqs_off(self, now: int, cpu: int) -> None:
        self.hits[TP.IRQS_OFF] += 1
        self.rings[cpu].append(TraceEvent(now, cpu, TP.IRQS_OFF, ()))
        self.accounting.cpus[cpu].irq_off_since = now
        lis = self.listener
        if lis is not None:
            lis.irqs_off(now, cpu)

    def irqs_on(self, now: int, cpu: int) -> None:
        self.hits[TP.IRQS_ON] += 1
        self.rings[cpu].append(TraceEvent(now, cpu, TP.IRQS_ON, ()))
        acct = self.accounting.cpus[cpu]
        since = acct.irq_off_since
        if since is not None:
            window = now - since
            if window > acct.max_irq_off_ns:
                acct.max_irq_off_ns = window
            acct.irq_off_since = None
        lis = self.listener
        if lis is not None:
            lis.irqs_on(now, cpu)

    def lock_acquire(self, now: int, cpu: int, lock: str, task: str,
                     is_bkl: bool) -> None:
        self.hits[TP.LOCK_ACQUIRE] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.LOCK_ACQUIRE, (lock, task, is_bkl)))
        lis = self.listener
        if lis is not None:
            lis.lock_acquire(now, cpu, lock, task, is_bkl)

    def lock_contended(self, now: int, cpu: int, lock: str, task: str,
                       is_bkl: bool) -> None:
        self.hits[TP.LOCK_CONTENDED] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.LOCK_CONTENDED, (lock, task, is_bkl)))
        lis = self.listener
        if lis is not None:
            lis.lock_contended(now, cpu, lock, task, is_bkl)

    def lock_release(self, now: int, cpu: int, lock: str, task: str,
                     hold_ns: int, is_bkl: bool) -> None:
        self.hits[TP.LOCK_RELEASE] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.LOCK_RELEASE,
                       (lock, task, hold_ns, is_bkl)))
        if is_bkl:
            acct = self.accounting.cpus[cpu]
            if hold_ns > acct.max_bkl_hold_ns:
                acct.max_bkl_hold_ns = hold_ns
        lis = self.listener
        if lis is not None:
            lis.lock_release(now, cpu, lock, task, hold_ns, is_bkl)

    def shield_update(self, now: int, cpu: int, procs: int, irqs: int,
                      ltmr: int) -> None:
        self.hits[TP.SHIELD_UPDATE] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.SHIELD_UPDATE, (procs, irqs, ltmr)))

    def timer_tick(self, now: int, cpu: int) -> None:
        self.hits[TP.TIMER_TICK] += 1
        self.rings[cpu].append(TraceEvent(now, cpu, TP.TIMER_TICK, ()))
        self.accounting.cpus[cpu].ticks += 1

    def syscall_entry(self, now: int, cpu: int, task: str,
                      name: str) -> None:
        self.hits[TP.SYSCALL_ENTRY] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.SYSCALL_ENTRY, (task, name)))
        self.accounting.cpus[cpu].syscalls += 1
        lis = self.listener
        if lis is not None:
            lis.syscall_entry(now, cpu, task, name)

    def syscall_exit(self, now: int, cpu: int, task: str) -> None:
        self.hits[TP.SYSCALL_EXIT] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.SYSCALL_EXIT, (task,)))
        lis = self.listener
        if lis is not None:
            lis.syscall_exit(now, cpu, task)

    def frame_push(self, now: int, cpu: int, kind: str, label: str,
                   owner: str) -> None:
        self.hits[TP.FRAME_PUSH] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.FRAME_PUSH, (kind, label, owner)))
        lis = self.listener
        if lis is not None:
            lis.frame_push(now, cpu, kind, label, owner)

    def frame_pop(self, now: int, cpu: int, kind: str, label: str,
                  owner: str) -> None:
        self.hits[TP.FRAME_POP] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.FRAME_POP, (kind, label, owner)))
        lis = self.listener
        if lis is not None:
            lis.frame_pop(now, cpu, kind, label, owner)

    def latency_sample(self, now: int, cpu: int, task: str,
                       latency_ns: int) -> None:
        self.hits[TP.LATENCY_SAMPLE] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.LATENCY_SAMPLE, (task, latency_ns)))

    def fault_inject(self, now: int, cpu: int, injector: str,
                     detail: str) -> None:
        self.hits[TP.FAULT_INJECT] += 1
        self.rings[cpu].append(
            TraceEvent(now, cpu, TP.FAULT_INJECT, (injector, detail)))
        lis = self.listener
        if lis is not None:
            lis.fault_inject(now, cpu, injector, detail)


#: Spinlock observer adapting the lock's tracer hook to the registry.
#: Mirrors the ``lockdep`` hook: locks call ``on_take``/``on_drop``/
#: ``on_contend`` when a tracer is attached.
class LockTracer:
    """Bridges :class:`~repro.kernel.sync.spinlock.SpinLock` hook
    callbacks to lock tracepoints (the sync-layer emission path)."""

    __slots__ = ("tp", "sim")

    def __init__(self, tp: Tracepoints, sim) -> None:
        self.tp = tp
        self.sim = sim

    @staticmethod
    def _cpu_of(task) -> int:
        cpu = getattr(task, "on_cpu", None)
        if cpu is None:
            cpu = getattr(task, "last_cpu", 0) or 0
        return cpu

    def on_take(self, lock, task, now: int) -> None:
        tp = self.tp
        if tp.enabled:
            tp.lock_acquire(now, self._cpu_of(task), lock.name, task.name,
                            lock.is_bkl)

    def on_drop(self, lock, task, now: int, hold_ns: int) -> None:
        tp = self.tp
        if tp.enabled:
            tp.lock_release(now, self._cpu_of(task), lock.name, task.name,
                            hold_ns, lock.is_bkl)

    def on_contend(self, lock, task) -> None:
        tp = self.tp
        if tp.enabled:
            tp.lock_contended(self.sim.now, self._cpu_of(task), lock.name,
                              task.name, lock.is_bkl)
