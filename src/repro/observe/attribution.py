"""The latency attribution engine.

For every latency sample the measurement program records, decompose
the sample window ``[end - latency, end]`` into mechanism buckets --
the paper's "where does interrupt-response time go" question:

``task``
    the watched task itself executing,
``handler``
    hardirq handler execution (the device's or anyone else's),
``softirq``
    bottom-half processing (softirq frames and ksoftirqd drains),
``switch``
    context-switch overhead,
``irq_off``
    interrupt delivery or preemption blocked by an irq-off window,
``preempt_off``
    a non-preemptible section (spinlock held, or kernel mode on a
    kernel without the preemption patch),
``bkl``
    Big Kernel Lock involvement (holder running, or spinning on it),
``lock``
    spinning on an ordinary (non-BKL) spinlock,
``runq_wait``
    runnable but waiting for the scheduler,
``pre_wake``
    blocked with nothing in the way (the device interval itself),
``fault``
    injected interference (simfault): a ``fault:``-named storm
    handler executing, or a ``fault:``-named rogue task in the way,
``other``
    bookkeeping residue (state lag around window edges).

The engine is an online :class:`~repro.observe.tracepoints.TraceListener`:
it consumes tracepoints as they fire and maintains compact per-CPU
context timelines plus the watched task's state timeline.  When the
tracer observes a recorder sample it calls :meth:`on_sample`, which
partitions the window by walking those timelines.  Because the buckets
form a complete partition of the window, the components sum to the
recorded end-to-end latency **exactly** -- the CI smoke step's 1%
criterion holds by construction, and any violation indicates timeline
corruption.

Timelines are pruned after every sample (windows only move forward),
so memory stays bounded regardless of run length.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Optional, Tuple

from repro.observe.tracepoints import TraceListener

#: Every attribution bucket, in report order.
BUCKETS = ("task", "handler", "softirq", "switch", "irq_off",
           "preempt_off", "bkl", "lock", "runq_wait", "pre_wake",
           "fault", "other")

#: Injected-interference naming convention: every simfault-owned task,
#: IRQ descriptor and tracepoint carries this prefix, which is what
#: lets attribution blame faults without new plumbing.
FAULT_PREFIX = "fault:"

_RUNNING = "running"
_RUNNABLE = "runnable"
_BLOCKED = "blocked"


def _t0(entry: Tuple) -> int:
    return entry[0]


class _CpuState:
    """One CPU's live context plus its snapshot timeline."""

    __slots__ = ("stack", "irqoff", "softirq_depth", "timeline")

    def __init__(self) -> None:
        #: Execution-frame mirror: (kind, owner, lock_name, lock_is_bkl).
        self.stack: List[Tuple[str, str, str, bool]] = []
        self.irqoff = False
        self.softirq_depth = 0
        #: (time, ctx) snapshots; ctx shapes are documented in _ctx().
        self.timeline: List[Tuple[int, Tuple]] = [(0, ("idle", False, False))]


class AttributionEngine(TraceListener):
    """Decomposes latency samples into mechanism buckets."""

    def __init__(self, ncpus: int, preemptible: bool,
                 watch: Optional[str] = None) -> None:
        self.ncpus = ncpus
        self.preemptible = preemptible
        self.watch = watch
        self._cpus = [_CpuState() for _ in range(ncpus)]
        #: Watched-task state timeline: (t, state, cpu, wake_from_cpu).
        self._mtl: List[Tuple[int, str, int, int]] = [(0, _RUNNABLE, 0, -1)]
        # Cross-CPU task flags, keyed by task name.
        self._in_kernel: Dict[str, bool] = {}
        self._preempt: Dict[str, bool] = {}
        self._bkl_owner: Optional[str] = None
        #: task -> (lock_name, is_bkl) while spinning (set at contend).
        self._contended: Dict[str, Tuple[str, bool]] = {}
        #: (end, latency, breakdown) per recorded sample.
        self.samples: List[Tuple[int, int, Dict[str, int]]] = []

    # ==================================================================
    # Tracepoint listener callbacks (online state maintenance)
    # ==================================================================
    def _snap(self, now: int, cs: _CpuState) -> None:
        ctx = self._ctx(cs)
        tl = cs.timeline
        last = tl[-1]
        if last[0] == now:
            tl[-1] = (now, ctx)
        elif last[1] != ctx:
            tl.append((now, ctx))

    def _ctx(self, cs: _CpuState) -> Tuple:
        stack = cs.stack
        if not stack:
            return ("idle", cs.irqoff, cs.softirq_depth > 0)
        kind, owner, lock_name, lock_bkl = stack[-1]
        if kind == "task":
            return ("task", owner, cs.irqoff,
                    self._preempt.get(owner, False),
                    self._in_kernel.get(owner, False),
                    owner != "" and owner == self._bkl_owner,
                    cs.softirq_depth > 0)
        if kind == "spin":
            return ("spin", owner, lock_name, lock_bkl, cs.irqoff)
        if kind == "hardirq":
            # Carry the owning descriptor's name so injected storm
            # lines (named "fault:*") land in the fault bucket.
            return ("hardirq", owner.startswith(FAULT_PREFIX))
        return (kind,)  # "softirq" | "switch"

    # -- frames ---------------------------------------------------------
    def frame_push(self, now: int, cpu: int, kind: str, label: str,
                   owner: str) -> None:
        cs = self._cpus[cpu]
        if kind == "spin":
            lock_name, lock_bkl = self._contended.get(owner, ("?", False))
            cs.stack.append((kind, owner, lock_name, lock_bkl))
        else:
            cs.stack.append((kind, owner, "", False))
        self._snap(now, cs)

    def frame_pop(self, now: int, cpu: int, kind: str, label: str,
                  owner: str) -> None:
        cs = self._cpus[cpu]
        if cs.stack:
            cs.stack.pop()
        self._snap(now, cs)

    # -- irq / softirq context ------------------------------------------
    def irqs_off(self, now: int, cpu: int) -> None:
        cs = self._cpus[cpu]
        cs.irqoff = True
        self._snap(now, cs)

    def irqs_on(self, now: int, cpu: int) -> None:
        cs = self._cpus[cpu]
        cs.irqoff = False
        self._snap(now, cs)

    def softirq_entry(self, now: int, cpu: int, vec: int) -> None:
        cs = self._cpus[cpu]
        cs.softirq_depth += 1
        self._snap(now, cs)

    def softirq_exit(self, now: int, cpu: int, vec: int) -> None:
        cs = self._cpus[cpu]
        if cs.softirq_depth > 0:
            cs.softirq_depth -= 1
        self._snap(now, cs)

    # -- task flags -----------------------------------------------------
    def preempt_off(self, now: int, cpu: int, task: str) -> None:
        self._preempt[task] = True
        self._snap(now, self._cpus[cpu])

    def preempt_on(self, now: int, cpu: int, task: str) -> None:
        self._preempt[task] = False
        self._snap(now, self._cpus[cpu])

    def syscall_entry(self, now: int, cpu: int, task: str,
                      name: str) -> None:
        self._in_kernel[task] = True
        self._snap(now, self._cpus[cpu])

    def syscall_exit(self, now: int, cpu: int, task: str) -> None:
        self._in_kernel[task] = False
        self._snap(now, self._cpus[cpu])

    # -- locks ----------------------------------------------------------
    def lock_acquire(self, now: int, cpu: int, lock: str, task: str,
                     is_bkl: bool) -> None:
        self._contended.pop(task, None)
        if is_bkl:
            self._bkl_owner = task
        self._snap(now, self._cpus[cpu])

    def lock_contended(self, now: int, cpu: int, lock: str, task: str,
                       is_bkl: bool) -> None:
        self._contended[task] = (lock, is_bkl)

    def lock_release(self, now: int, cpu: int, lock: str, task: str,
                     hold_ns: int, is_bkl: bool) -> None:
        if is_bkl and self._bkl_owner == task:
            self._bkl_owner = None
        self._snap(now, self._cpus[cpu])

    # -- scheduler / watched-task state ---------------------------------
    def sched_switch(self, now: int, cpu: int, task: str) -> None:
        if task == self.watch:
            self._mtl.append((now, _RUNNING, cpu, -1))
        self._snap(now, self._cpus[cpu])

    def sched_desched(self, now: int, cpu: int, task: str,
                      runnable: bool, target: int) -> None:
        if task == self.watch:
            if runnable:
                self._mtl.append((now, _RUNNABLE, target, -1))
            else:
                self._mtl.append((now, _BLOCKED, cpu, -1))

    def sched_wake(self, now: int, cpu: int, task: str,
                   from_cpu: int) -> None:
        if task == self.watch:
            self._mtl.append((now, _RUNNABLE, cpu, from_cpu))

    def task_exit(self, now: int, cpu: int, task: str) -> None:
        self._in_kernel.pop(task, None)
        self._preempt.pop(task, None)
        if task == self.watch:
            self._mtl.append((now, _BLOCKED, cpu, -1))

    # ==================================================================
    # Sample attribution
    # ==================================================================
    def on_sample(self, end: int, latency: int) -> Dict[str, int]:
        """Attribute one recorded sample; returns its breakdown."""
        breakdown = self.attribute(end, latency)
        self.samples.append((end, latency, breakdown))
        self._prune(end)
        return breakdown

    def attribute(self, end: int, latency: int) -> Dict[str, int]:
        """Partition ``[end - latency, end)`` into bucket durations."""
        breakdown: Dict[str, int] = {}
        if latency <= 0:
            return breakdown
        start = end - latency
        entries = self._mtl
        j = bisect_right(entries, start, key=_t0) - 1
        if j < 0:
            j = 0
        t = start
        n = len(entries)
        while t < end:
            _, state, mcpu, _from = entries[j]
            nxt = entries[j + 1] if j + 1 < n else None
            seg_end = min(end, nxt[0]) if nxt is not None else end
            if seg_end > t:
                cpu = mcpu
                if (state == _BLOCKED and nxt is not None
                        and nxt[1] == _RUNNABLE and nxt[3] >= 0):
                    # The wake that ends this blocked span names the
                    # CPU whose handler path produced it; that is the
                    # CPU whose context explains the delay.
                    cpu = nxt[3]
                if cpu < 0 or cpu >= self.ncpus:
                    cpu = 0
                self._attribute_span(breakdown, state, cpu, t, seg_end)
            t = seg_end
            if nxt is None:
                break
            j += 1
        return breakdown

    def _attribute_span(self, breakdown: Dict[str, int], state: str,
                        cpu: int, a: int, b: int) -> None:
        tl = self._cpus[cpu].timeline
        i = bisect_right(tl, a, key=_t0) - 1
        ctx = tl[i][1] if i >= 0 else ("idle", False, False)
        t = a
        for k in range(max(i, 0) + (1 if i >= 0 else 0), len(tl)):
            nt, nctx = tl[k]
            if nt >= b:
                break
            if nt > t:
                bucket = self._classify(state, ctx)
                breakdown[bucket] = breakdown.get(bucket, 0) + (nt - t)
                t = nt
            ctx = nctx
        if b > t:
            bucket = self._classify(state, ctx)
            breakdown[bucket] = breakdown.get(bucket, 0) + (b - t)

    def _classify(self, state: str, ctx: Tuple) -> str:
        code = ctx[0]
        if state == _RUNNING:
            if code == "task":
                return "task" if ctx[1] == self.watch else "other"
            if code == "hardirq":
                return "fault" if ctx[1] else "handler"
            if code == "softirq":
                return "softirq"
            if code == "switch":
                return "switch"
            if code == "spin":
                return "bkl" if ctx[3] else "lock"
            return "other"
        if state == _RUNNABLE:
            if code == "hardirq":
                return "fault" if ctx[1] else "handler"
            if code == "softirq":
                return "softirq"
            if code == "switch":
                return "switch"
            if code == "spin":
                return "bkl" if ctx[3] else "preempt_off"
            if code == "task":
                _, owner, irqoff, preempt, in_kernel, holds_bkl, softi = ctx
                if owner == self.watch:
                    return "task"
                if owner.startswith(FAULT_PREFIX):
                    return "fault"
                if softi:
                    return "softirq"
                if irqoff:
                    return "irq_off"
                if holds_bkl:
                    return "bkl"
                if preempt:
                    return "preempt_off"
                if in_kernel and not self.preemptible:
                    return "preempt_off"
                return "runq_wait"
            return "runq_wait"  # idle: the scheduler is about to run us
        # BLOCKED: what (if anything) stood between the device and the
        # wake on the CPU that eventually delivered it.
        if code == "hardirq":
            return "fault" if ctx[1] else "handler"
        if code == "softirq":
            return "softirq"
        if code == "switch":
            return "switch"
        if code == "spin":
            return "irq_off" if ctx[4] else "pre_wake"
        if code == "task":
            _, owner, irqoff, preempt, in_kernel, holds_bkl, softi = ctx
            if owner.startswith(FAULT_PREFIX) and (irqoff or holds_bkl):
                return "fault"
            if irqoff:
                return "irq_off"
            if softi:
                return "softirq"
            return "pre_wake"
        # idle
        return "irq_off" if ctx[1] else "pre_wake"

    def _prune(self, upto: int) -> None:
        """Drop timeline history before *upto* (windows move forward)."""
        for cs in self._cpus:
            tl = cs.timeline
            i = bisect_right(tl, upto, key=_t0) - 1
            if i > 0:
                del tl[:i]
        mtl = self._mtl
        i = bisect_right(mtl, upto, key=_t0) - 1
        if i > 0:
            del mtl[:i]

    # ==================================================================
    # Reporting
    # ==================================================================
    def current_cpu(self) -> int:
        """The watched task's most recent known CPU."""
        return max(0, min(self._mtl[-1][2], self.ncpus - 1))

    def sum_check(self) -> Dict[str, Any]:
        """Per-sample closure check: components must sum to latency."""
        max_abs = 0
        max_rel = 0.0
        for _end, latency, breakdown in self.samples:
            err = abs(latency - sum(breakdown.values()))
            if err > max_abs:
                max_abs = err
            if latency > 0:
                rel = err / latency
                if rel > max_rel:
                    max_rel = rel
        return {
            "samples": len(self.samples),
            "max_abs_err_ns": max_abs,
            "max_rel_err": max_rel,
            "ok": max_rel <= 0.01,
        }

    def report(self, threshold_pct: float = 99.0, top: int = 10
               ) -> Dict[str, Any]:
        """Blame data for samples at or above the percentile threshold."""
        import numpy as np

        attributed = [s for s in self.samples if s[1] > 0]
        threshold_ns = 0.0
        if attributed:
            lat = np.asarray([s[1] for s in attributed], dtype=np.int64)
            threshold_ns = float(np.percentile(lat, threshold_pct))
        selected = [s for s in attributed if s[1] >= threshold_ns]
        aggregate: Dict[str, int] = {}
        for _end, _latency, breakdown in selected:
            for bucket, ns in breakdown.items():
                aggregate[bucket] = aggregate.get(bucket, 0) + ns
        worst = sorted(selected, key=lambda s: (-s[1], s[0]))[:top]
        return {
            "watched": self.watch,
            "threshold_pct": threshold_pct,
            "threshold_ns": threshold_ns,
            "samples": len(self.samples),
            "attributed": len(selected),
            "aggregate": aggregate,
            "top_samples": [
                {"end_ns": end, "latency_ns": latency,
                 "breakdown": dict(breakdown)}
                for end, latency, breakdown in worst
            ],
            "sum_check": self.sum_check(),
        }
