"""Physical cores and hyperthread execution-unit contention.

The paper attributes the difference between Figure 1 (26.17% jitter,
hyperthreading on) and Figure 4 (13.15%, hyperthreading off) to
contention for the shared execution unit between the two logical
processors of a hyperthreaded Xeon.  We model a physical core as a
shared execution unit: when both siblings are busy, each runs at a
fraction of full speed (around ``ht_speed_mean``); when one is idle the
other runs at full speed.  Transitions retime the sibling's in-flight
frame, so a measurement task sees its compute segment stretch exactly
while the sibling is occupied -- the mechanism the paper describes.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.hw.cpu import LogicalCpu


class PhysicalCore:
    """A physical core hosting one or two logical CPUs."""

    def __init__(self, index: int, ht_speed_mean: float = 0.60,
                 ht_speed_jitter: float = 0.08) -> None:
        if not 0.0 < ht_speed_mean <= 1.0:
            raise ValueError("ht_speed_mean must be in (0, 1]")
        self.index = index
        self.cpus: List["LogicalCpu"] = []
        self.ht_speed_mean = ht_speed_mean
        self.ht_speed_jitter = ht_speed_jitter
        # Current contention factor, resampled at each both-busy
        # transition to model workload-dependent pipeline interference.
        self._current_factor = ht_speed_mean

    def attach(self, cpu: "LogicalCpu") -> None:
        if len(self.cpus) >= 2:
            raise ValueError(f"core {self.index} already has two siblings")
        self.cpus.append(cpu)
        if len(self.cpus) == 2:
            # Cache the sibling pointers: speed_factor and the busy
            # notification path resolve them on every frame start.
            first, second = self.cpus
            first.sibling = second
            second.sibling = first

    @property
    def hyperthreaded(self) -> bool:
        return len(self.cpus) == 2

    def sibling_of(self, cpu: "LogicalCpu") -> Optional["LogicalCpu"]:
        """The other logical CPU on this core (None without HT)."""
        return cpu.sibling

    def resample_factor(self, rng: "np.random.Generator") -> None:
        """Draw a fresh contention factor for a both-busy episode."""
        low = max(0.05, self.ht_speed_mean - self.ht_speed_jitter)
        high = min(1.0, self.ht_speed_mean + self.ht_speed_jitter)
        self._current_factor = float(rng.uniform(low, high))

    def speed_factor(self, cpu: "LogicalCpu") -> float:
        """Execution-unit speed multiplier for *cpu* right now."""
        sibling = cpu.sibling
        if sibling is None or not sibling.frames or not sibling.online:
            return 1.0
        return self._current_factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<core{self.index} cpus={[c.index for c in self.cpus]}>"
