"""Interrupt routing: IRQ descriptors and the I/O APIC.

Each interrupt line has a *requested* affinity (what was written to
``/proc/irq/N/smp_affinity``) and an *effective* affinity (after the
shield rewrite).  The APIC routes each raised interrupt to one online
CPU in the effective mask, either round-robin (the default behaviour of
2.4-era IRQ balancing across allowed CPUs) or fixed-lowest.

Delivery itself is a kernel matter: the APIC calls the ``deliver``
hook the kernel installed at boot, passing the chosen CPU and the
descriptor.  If the CPU has interrupts disabled the kernel pends the
IRQ on that CPU's local queue.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.core.affinity import CpuMask
from repro.sim.errors import InvalidMaskError, KernelPanic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.machine import Machine


class RoutingPolicy(enum.Enum):
    """How the APIC picks a CPU out of an effective affinity mask."""

    ROUND_ROBIN = "round_robin"
    LOWEST = "lowest"


class IrqDescriptor:
    """State for one interrupt line."""

    def __init__(self, irq: int, name: str, ncpus: int,
                 routing: RoutingPolicy = RoutingPolicy.ROUND_ROBIN) -> None:
        self.irq = irq
        self.name = name
        self.requested_affinity = CpuMask.all(ncpus)
        self.effective_affinity = CpuMask.all(ncpus)
        self.routing = routing
        self.raised = 0
        self.delivered: Dict[int, int] = {}
        self._rr_cursor = 0

    def account_delivery(self, cpu_index: int) -> None:
        self.delivered[cpu_index] = self.delivered.get(cpu_index, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<irq{self.irq} {self.name} "
                f"eff={self.effective_affinity.to_proc()}>")


class Apic:
    """Routes raised interrupts to logical CPUs."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.irqs: Dict[int, IrqDescriptor] = {}
        # Installed by the kernel at boot: deliver(cpu, desc).
        self.deliver: Callable[[object, IrqDescriptor], None] = _no_kernel

    def register_irq(self, irq: int, name: str,
                     routing: RoutingPolicy = RoutingPolicy.ROUND_ROBIN
                     ) -> IrqDescriptor:
        """Create (or return the existing) descriptor for line *irq*."""
        desc = self.irqs.get(irq)
        if desc is None:
            desc = IrqDescriptor(irq, name, len(self.machine.cpus), routing)
            self.irqs[irq] = desc
        return desc

    def descriptor(self, irq: int) -> IrqDescriptor:
        try:
            return self.irqs[irq]
        except KeyError:
            raise KernelPanic(f"raise of unregistered irq {irq}") from None

    # ------------------------------------------------------------------
    def set_requested_affinity(self, irq: int, mask: CpuMask) -> None:
        """The ``/proc/irq/N/smp_affinity`` write path."""
        if not mask:
            raise InvalidMaskError(f"empty affinity for irq {irq}")
        desc = self.descriptor(irq)
        desc.requested_affinity = mask
        # Effective affinity is recomputed by the shield controller; in
        # an unshielded system it simply follows the request.
        self.machine.on_irq_affinity_changed(desc)

    def route(self, desc: IrqDescriptor):
        """Pick the target CPU for one raise of *desc*.

        ``ROUND_ROBIN`` models the IO-APIC's lowest-priority delivery
        mode: an idle CPU (its TPR is lowest) wins the arbitration;
        among equally busy CPUs delivery rotates.
        """
        candidates = [
            self.machine.cpus[i] for i in desc.effective_affinity
            if i < len(self.machine.cpus) and self.machine.cpus[i].online
        ]
        if not candidates:
            # All allowed CPUs offline: fall back to CPU 0, as real
            # hardware falls back to the boot CPU.
            return self.machine.cpus[0]
        if desc.routing is RoutingPolicy.LOWEST or len(candidates) == 1:
            return candidates[0]
        idle = [c for c in candidates if not c.busy]
        if idle:
            cpu = idle[desc._rr_cursor % len(idle)]
        else:
            cpu = candidates[desc._rr_cursor % len(candidates)]
        desc._rr_cursor += 1
        return cpu

    def raise_irq(self, irq: int) -> None:
        """A device asserted interrupt line *irq*."""
        desc = self.descriptor(irq)
        desc.raised += 1
        cpu = self.route(desc)
        desc.account_delivery(cpu.index)
        sim = self.machine.sim
        tp = sim.tp
        if tp.enabled:
            tp.irq_raise(sim.now, cpu.index, irq, desc.name)
        self.deliver(cpu, desc)


def _no_kernel(cpu: object, desc: IrqDescriptor) -> None:
    raise KernelPanic(f"interrupt {desc} raised before a kernel was booted")
