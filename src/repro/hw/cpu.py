"""Logical CPUs and the execution-frame stack.

A :class:`LogicalCpu` executes a stack of :class:`ExecFrame` objects.
The top frame is the code currently running; pushing a frame preempts
the one below it (its already-executed work is banked), and popping
resumes the frame underneath.  Frames model:

* ``TASK``    -- a task's compute segment (user or kernel mode),
* ``HARDIRQ`` -- an interrupt handler (runs with interrupts disabled),
* ``SOFTIRQ`` -- a bottom-half work item (interrupts enabled),
* ``SPIN``    -- busy-waiting on a contended spinlock,
* ``SWITCH``  -- context-switch overhead.

Wall-clock duration of a frame is ``work / speed`` where *speed* is the
product of hyperthread contention and memory-bus contention factors
supplied by the machine.  When those factors change (a sibling logical
CPU goes busy or idle, the bus contention epoch rolls over) the machine
calls :meth:`LogicalCpu.retime` and the in-flight frame is re-priced.

The CPU layer knows nothing about scheduling policy: the kernel
installs callbacks for frame completion, interrupt delivery and
"stack became quiescent" events.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, List, Optional, TYPE_CHECKING

from repro.sim.errors import KernelPanic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.core import PhysicalCore
    from repro.hw.machine import Machine
    from repro.sim.engine import Simulator


class FrameKind(enum.Enum):
    """What kind of execution a frame represents."""

    TASK = "task"
    HARDIRQ = "hardirq"
    SOFTIRQ = "softirq"
    SPIN = "spin"
    SWITCH = "switch"

    # Enum's default __hash__ is a Python-level function; these members
    # key the per-CPU frame-kind counters on every push/pop, so use the
    # identity hash (members are singletons, equality is identity).
    __hash__ = object.__hash__


#: Frames whose presence means the CPU is "busy" for contention purposes.
_BUSY_KINDS = frozenset(FrameKind)


class ExecFrame:
    """One unit of preemptible execution.

    Parameters
    ----------
    kind:
        The :class:`FrameKind`.
    work:
        Amount of work in nanoseconds at speed 1.0.  ``None`` means
        open-ended (used by SPIN frames, which end via :attr:`granted`).
    on_complete:
        Called (with the frame) when the work is fully executed, after
        the frame has been popped.
    label:
        Diagnostic tag.
    """

    __slots__ = ("kind", "work", "remaining", "on_complete", "label",
                 "granted", "started_at", "speed", "_event", "owner")

    def __init__(self, kind: FrameKind, work: Optional[int],
                 on_complete: Callable[["ExecFrame"], None],
                 label: str = "", owner: object = None) -> None:
        if work is not None and work < 0:
            raise KernelPanic(f"negative frame work {work} ({label})")
        self.kind = kind
        self.work = work
        self.remaining: Optional[float] = float(work) if work is not None else None
        self.on_complete = on_complete
        self.label = label
        self.owner = owner          # task / irq descriptor / lock, for traces
        self.granted = False        # SPIN frames: lock has been handed over
        self.started_at: Optional[int] = None
        self.speed: float = 1.0
        self._event = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Frame {self.kind.value} {self.label!r} rem={self.remaining}>"


class LogicalCpu:
    """One logical processor (a hyperthread sibling or a whole core)."""

    def __init__(self, sim: "Simulator", machine: "Machine", index: int,
                 core: "PhysicalCore") -> None:
        self.sim = sim
        self.machine = machine
        self.index = index
        self.core = core
        self.tp = sim.tp
        self.frames: List[ExecFrame] = []
        #: Per-kind frame counts, maintained on push/pop so the
        #: kernel's per-op context checks are O(1) lookups instead of
        #: stack scans (in_kind is called several times per op).
        self._kind_counts = dict.fromkeys(FrameKind, 0)
        #: Aggregate counters the kernel's hottest per-op checks read
        #: directly: hss_count covers HARDIRQ/SOFTIRQ/SWITCH frames,
        #: spin_count covers SPIN frames.
        self.hss_count = 0
        self.spin_count = 0
        #: Hyperthread sibling on the same core (set by the core when
        #: a second logical CPU attaches); None on non-HT cores.
        self.sibling: Optional["LogicalCpu"] = None
        self.pending_irqs: Deque[object] = deque()
        self._irq_disable_depth = 0
        self.online = True
        # Kernel hooks, installed at boot by the kernel layer.
        self.on_quiescent: Callable[["LogicalCpu"], None] = lambda cpu: None
        self.on_irq_enabled: Callable[["LogicalCpu"], None] = lambda cpu: None
        # Statistics.
        self.busy_ns = 0
        self.frames_run = 0
        self._busy_since: Optional[int] = None

    # ------------------------------------------------------------------
    # Interrupt enable/disable state
    # ------------------------------------------------------------------
    @property
    def irqs_enabled(self) -> bool:
        """True when the CPU will accept interrupt delivery right now."""
        return self._irq_disable_depth == 0

    def irq_disable(self) -> None:
        """Disable interrupt delivery (nests)."""
        self._irq_disable_depth += 1
        if self._irq_disable_depth == 1:
            tp = self.tp
            if tp.enabled:
                tp.irqs_off(self.sim.now, self.index)

    def irq_enable(self) -> None:
        """Re-enable interrupt delivery; drains pended IRQs at depth 0."""
        if self._irq_disable_depth <= 0:
            raise KernelPanic(f"cpu{self.index}: irq_enable underflow")
        self._irq_disable_depth -= 1
        if self._irq_disable_depth == 0:
            tp = self.tp
            if tp.enabled:
                tp.irqs_on(self.sim.now, self.index)
            if self.pending_irqs:
                self.on_irq_enabled(self)

    # ------------------------------------------------------------------
    # Busy state (for hyperthread / memory contention)
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while any frame is on the stack."""
        return bool(self.frames)

    @property
    def top(self) -> Optional[ExecFrame]:
        return self.frames[-1] if self.frames else None

    def in_kind(self, kind: FrameKind) -> bool:
        """True if any frame of *kind* is on the stack (O(1))."""
        return self._kind_counts[kind] > 0

    # ------------------------------------------------------------------
    # Frame stack operations
    # ------------------------------------------------------------------
    def push_frame(self, frame: ExecFrame) -> None:
        """Preempt the current top frame (if any) and run *frame*."""
        frames = self.frames
        was_busy = bool(frames)
        if frames:
            self._pause_top()
        frames.append(frame)
        kind = frame.kind
        self._kind_counts[kind] += 1
        if kind is not FrameKind.TASK:
            if kind is FrameKind.SPIN:
                self.spin_count += 1
            else:
                self.hss_count += 1
        tp = self.tp
        if tp.enabled:
            tp.frame_push(self.sim.now, self.index, kind.value, frame.label,
                          getattr(frame.owner, "name", ""))
        self._start_top()
        if not was_busy:
            # A frame can be pushed from inside another frame's
            # completion callback (stack momentarily empty); keep the
            # original episode start in that case.
            if self._busy_since is None:
                self._busy_since = self.sim.now
            self.machine.notify_busy_changed(self)

    def _start_top(self) -> None:
        frame = self.frames[-1]
        frame.started_at = self.sim.now
        if frame.kind is FrameKind.SPIN:
            # Spin frames burn CPU until granted; no completion event.
            if frame.granted:
                # Lock was handed over while we were preempted.
                self._complete_top()
            return
        speed = self.machine.speed_for(self, frame)
        frame.speed = speed
        remaining = frame.remaining
        assert remaining is not None
        if speed == 1.0:
            # Uncontended fast path: ceil without the float divide.
            duration = int(remaining)
            if duration != remaining:
                duration += 1
        else:
            # remaining >= 0 and speed > 0, so the ceil never goes
            # negative; same divide-free ceil as the fast path.
            q = remaining / speed
            duration = int(q)
            if duration != q:
                duration += 1
        sim = self.sim
        # Event labels are diagnostics; building the f-string for every
        # frame start is measurable, so only pay for it when tracing.
        label = (f"cpu{self.index}:{frame.kind.value}:{frame.label}"
                 if sim.trace.enabled else None)
        frame._event = sim.at(sim.now + duration, self._on_frame_event, label)

    def _pause_top(self) -> None:
        frame = self.frames[-1]
        if frame.kind is not FrameKind.SPIN and frame.started_at is not None:
            elapsed = self.sim.now - frame.started_at
            rem = frame.remaining - elapsed * frame.speed
            frame.remaining = rem if rem > 0.0 else 0.0
        frame.started_at = None
        if frame._event is not None:
            frame._event.cancel()
            frame._event = None

    def _on_frame_event(self) -> None:
        """Completion event fired for the (still top) frame.

        This is :meth:`_complete_top` fused into the event callback --
        the per-op hot path.  The cancel branch cannot apply here (the
        event just fired) and the frame is known to be top-of-stack.
        """
        frame = self.frames.pop()
        kind = frame.kind
        self._kind_counts[kind] -= 1
        if kind is not FrameKind.TASK:
            if kind is FrameKind.SPIN:
                self.spin_count -= 1
            else:
                self.hss_count -= 1
        self.frames_run += 1
        frame.started_at = None
        frame._event = None
        frame.remaining = 0.0
        tp = self.tp
        if tp.enabled:
            tp.frame_pop(self.sim.now, self.index, kind.value, frame.label,
                         getattr(frame.owner, "name", ""))
        # The completion callback may push new frames (e.g. chained
        # interrupts); resume the underlying frame only if it is still
        # exposed afterwards.
        frame.on_complete(frame)
        self._after_pop()

    def _complete_top(self) -> None:
        frame = self.frames.pop()
        kind = frame.kind
        self._kind_counts[kind] -= 1
        if kind is not FrameKind.TASK:
            if kind is FrameKind.SPIN:
                self.spin_count -= 1
            else:
                self.hss_count -= 1
        self.frames_run += 1
        frame.started_at = None
        if frame._event is not None:
            frame._event.cancel()
            frame._event = None
        tp = self.tp
        if tp.enabled:
            tp.frame_pop(self.sim.now, self.index, kind.value, frame.label,
                         getattr(frame.owner, "name", ""))
        # The completion callback may push new frames (e.g. chained
        # interrupts); resume the underlying frame only if it is still
        # exposed afterwards.
        frame.on_complete(frame)
        self._after_pop()

    def pop_frame(self, frame: ExecFrame) -> None:
        """Forcefully remove *frame* (must be top); used by the kernel
        when a task frame is descheduled with work remaining."""
        if not self.frames or self.frames[-1] is not frame:
            raise KernelPanic(
                f"cpu{self.index}: pop_frame of non-top frame {frame}")
        self._pause_top()
        self.frames.pop()
        kind = frame.kind
        self._kind_counts[kind] -= 1
        if kind is not FrameKind.TASK:
            if kind is FrameKind.SPIN:
                self.spin_count -= 1
            else:
                self.hss_count -= 1
        tp = self.tp
        if tp.enabled:
            tp.frame_pop(self.sim.now, self.index, kind.value, frame.label,
                         getattr(frame.owner, "name", ""))
        self._after_pop()

    def _after_pop(self) -> None:
        if self.frames:
            top = self.frames[-1]
            if top.started_at is None:
                self._start_top()
        else:
            if self._busy_since is not None:
                self.busy_ns += self.sim.now - self._busy_since
                self._busy_since = None
            self.machine.notify_busy_changed(self)
            self.on_quiescent(self)

    def grant_spin(self, frame: ExecFrame) -> None:
        """A contended lock has been handed to the spinning *frame*."""
        frame.granted = True
        if self.frames and self.frames[-1] is frame:
            self._complete_top()
        # Otherwise the spin frame is buried under interrupt frames and
        # will complete the moment it is resumed (see _start_top).

    def retime(self) -> None:
        """Re-price the in-flight frame after a speed-factor change."""
        if not self.frames:
            return
        top = self.frames[-1]
        if top.kind is FrameKind.SPIN or top.started_at is None:
            return
        self._pause_top()
        self._start_top()

    # ------------------------------------------------------------------
    # Interrupt pend queue (local APIC holding pended vectors)
    # ------------------------------------------------------------------
    def pend_irq(self, irq: object) -> None:
        """Queue an interrupt for delivery once interrupts re-enable."""
        self.pending_irqs.append(irq)
        tp = self.tp
        if tp.enabled:
            tp.irq_pend(self.sim.now, self.index,
                        getattr(irq, "irq", -1), getattr(irq, "name", "?"))

    def take_pending_irq(self) -> Optional[object]:
        """Dequeue the next pended interrupt, if any."""
        if self.pending_irqs:
            return self.pending_irqs.popleft()
        return None

    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of elapsed simulation time this CPU was busy."""
        total = self.sim.now
        if total == 0:
            return 0.0
        busy = self.busy_ns
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return busy / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<cpu{self.index} frames={[f.kind.value for f in self.frames]} "
                f"irqs={'on' if self.irqs_enabled else 'off'}>")
