"""SMP memory-bus contention model.

On a shielded CPU the paper still measures 1.87% worst-case execution
jitter (Figure 2) and attributes it to "memory contention in an SMP
system".  We model the front-side bus as a piecewise-constant
contention level: every *epoch* (default 50 ms) the bus draws a new
occupancy level that scales with how many *other* CPUs are busy, and
every busy CPU's effective speed is reduced by ``level * coupling``.

Piecewise-constant (rather than per-segment i.i.d.) noise matters for
the shape of the determinism figures: a 1.15 s compute loop spans ~20
epochs, so run-to-run variance stays visible instead of averaging away,
reproducing the spread the paper's histograms show.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.hw.cpu import LogicalCpu
    from repro.hw.machine import Machine
    from repro.sim.engine import Simulator


class MemoryBus:
    """Shared-bus contention with epoch-resampled occupancy."""

    def __init__(self, epoch_ns: int = 50_000_000, coupling: float = 0.02,
                 max_level: float = 1.0) -> None:
        if epoch_ns <= 0:
            raise ValueError("epoch_ns must be positive")
        if coupling < 0:
            raise ValueError("coupling must be non-negative")
        self.epoch_ns = epoch_ns
        self.coupling = coupling
        self.max_level = max_level
        self._levels: Dict[int, float] = {}
        # Derived speed multipliers, maintained alongside the levels so
        # the per-frame-start query is a bare dict hit with no float
        # math (speed_factor is on the frame-start hot path).
        self._factors: Dict[int, float] = {}
        self._machine: Optional["Machine"] = None
        self._sim: Optional["Simulator"] = None
        self._rng: Optional["np.random.Generator"] = None

    def attach(self, machine: "Machine") -> None:
        """Bind the bus to a machine and start the epoch timer."""
        self._machine = machine
        self._sim = machine.sim
        self._rng = machine.sim.rng.stream("memory-bus")
        self._sim.periodic(self.epoch_ns, self._roll_epoch,
                           label="membus-epoch")

    def _roll_epoch(self) -> None:
        """Resample every CPU's contention level and retime them."""
        assert self._machine is not None and self._rng is not None
        levels = self._levels
        factors = self._factors
        coupling = self.coupling
        for cpu in self._machine.cpus:
            level = self._sample_level(cpu)
            levels[cpu.index] = level
            f = 1.0 - level * coupling
            factors[cpu.index] = f if f > 0.05 else 0.05
        for cpu in self._machine.cpus:
            cpu.retime()

    def _sample_level(self, cpu: "LogicalCpu") -> float:
        assert self._machine is not None and self._rng is not None
        busy_others = sum(
            1 for other in self._machine.cpus
            if other is not cpu and other.busy and other.core is not cpu.core)
        if busy_others == 0:
            return 0.0
        raw = self._rng.uniform(0.0, float(busy_others))
        return min(self.max_level, raw)

    def speed_factor(self, cpu: "LogicalCpu") -> float:
        """Speed multiplier for *cpu* in the current epoch."""
        f = self._factors.get(cpu.index)
        if f is None:
            # Lazy first-epoch fill: the sample is drawn here, on first
            # query, exactly as before -- RNG draw order is part of the
            # byte-identity contract.
            level = self._sample_level(cpu)
            self._levels[cpu.index] = level
            f = 1.0 - level * self.coupling
            if f < 0.05:
                f = 0.05
            self._factors[cpu.index] = f
        return f

    def current_level(self, cpu: "LogicalCpu") -> float:
        """Expose the raw occupancy level (for tests)."""
        return self._levels.get(cpu.index, 0.0)
