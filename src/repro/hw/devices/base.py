"""Common device machinery.

A device owns an IRQ line, registers it with the machine's APIC when
attached, and raises it in response to internal events (a timer period
elapsing, a packet arriving, a disk request completing).  Interrupt
*handling* lives in the kernel's driver layer; devices only produce
raises and expose registers for drivers to read.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.hw.apic import IrqDescriptor, RoutingPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.machine import Machine
    from repro.sim.engine import Simulator


class Device:
    """Base class for interrupt-raising devices."""

    def __init__(self, name: str, irq: int,
                 routing: RoutingPolicy = RoutingPolicy.ROUND_ROBIN) -> None:
        self.name = name
        self.irq = irq
        self.routing = routing
        self.machine: Optional["Machine"] = None
        self.sim: Optional["Simulator"] = None
        self.irq_desc: Optional[IrqDescriptor] = None
        self.started = False

    def attach(self, machine: "Machine") -> None:
        """Bind to a machine and register the IRQ line."""
        self.machine = machine
        self.sim = machine.sim
        self.irq_desc = machine.apic.register_irq(self.irq, self.name,
                                                  self.routing)
        self.on_attach()

    def on_attach(self) -> None:
        """Subclass hook run after APIC registration."""

    def start(self) -> None:
        """Begin generating device activity (idempotent)."""
        if self.started:
            return
        if self.machine is None:
            raise RuntimeError(f"device {self.name} started before attach")
        self.started = True
        self.on_start()

    def on_start(self) -> None:
        """Subclass hook for kicking off the first event."""

    def raise_irq(self) -> None:
        assert self.machine is not None
        self.machine.apic.raise_irq(self.irq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} irq={self.irq}>"
