"""Graphics controller (nVidia GeForce2 MXR class).

The Figure 7 load includes the X11perf benchmark hammering the graphics
console.  For interrupt-response purposes what matters is the stream of
graphics interrupts (vblank + accelerated-operation completion) and the
kernel time their handling consumes; we model command-completion
interrupt bursts at a configurable rate while a rendering benchmark is
active.
"""

from __future__ import annotations

from repro.hw.apic import RoutingPolicy
from repro.hw.devices.base import Device
from repro.sim.simtime import SEC


class GraphicsController(Device):
    """GPU raising completion interrupts while rendering load runs."""

    def __init__(self, irq: int = 16, irqs_per_sec: float = 0.0) -> None:
        super().__init__("gfx", irq, RoutingPolicy.ROUND_ROBIN)
        self.irqs_per_sec = irqs_per_sec
        self.completions = 0
        self._token = 0
        self._rng = None

    def on_attach(self) -> None:
        assert self.sim is not None
        self._rng = self.sim.rng.stream("gpu-irqs")

    def set_rate(self, irqs_per_sec: float) -> None:
        """Adjust the completion-interrupt rate (X11perf on/off)."""
        self.irqs_per_sec = irqs_per_sec
        self._token += 1
        if self.started and irqs_per_sec > 0:
            self._schedule(self._token)

    def on_start(self) -> None:
        if self.irqs_per_sec > 0:
            self._schedule(self._token)

    def _schedule(self, token: int) -> None:
        assert self.sim is not None and self._rng is not None
        if self.irqs_per_sec <= 0:
            return
        gap = max(1, int(self._rng.exponential(SEC / self.irqs_per_sec)))
        self.sim.after(gap, lambda: self._fire(token), label="gpu-irq")

    def _fire(self, token: int) -> None:
        if token != self._token or not self.started:
            return
        self.completions += 1
        self.raise_irq()
        self._schedule(token)
