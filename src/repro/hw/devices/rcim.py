"""The Real-Time Clock and Interrupt Module (RCIM) PCI card.

Concurrent's RCIM provides high-resolution timers and externally
connected edge-triggered interrupts.  The behaviour the paper relies on
(section 6.2):

* a periodic timer whose *count register* is loaded with the period,
  decremented to zero, then automatically reloaded;
* the count register is directly mappable into user space, so after
  being woken the test reads it with negligible overhead and computes
  ``latency = initial_count - current_count`` (in time units).

We expose :meth:`read_count` returning the time since the current
period began, which is exactly what the benchmark derives from the
register arithmetic.
"""

from __future__ import annotations

from repro.hw.apic import RoutingPolicy
from repro.hw.devices.base import Device
from repro.sim.simtime import USEC

#: PCI interrupt line assigned to the RCIM card in the testbed.
RCIM_IRQ = 17


class RcimCard(Device):
    """RCIM with one periodic high-resolution timer and external
    edge-triggered interrupt inputs.

    The card multiplexes its sources onto one PCI interrupt line; a
    status register tells the driver which source(s) fired.
    """

    #: Number of external edge-triggered input lines on the card.
    EXTERNAL_LINES = 4

    def __init__(self, period_ns: int = 1000 * USEC, irq: int = RCIM_IRQ) -> None:
        super().__init__("rcim", irq, RoutingPolicy.LOWEST)
        if period_ns <= 0:
            raise ValueError("RCIM period must be positive")
        self.period_ns = period_ns
        self.cycle_start_ns = -1
        self.last_fire_ns = -1
        self.fires = 0
        self._timer_enabled = False
        self._periodic = None  # live PeriodicHandle while enabled+started
        # External edge inputs: per-line edge counters plus a pending
        # status bitmask (bit 0 = timer, bits 1.. = external lines).
        self.edge_counts = [0] * self.EXTERNAL_LINES
        self.last_edge_ns = [-1] * self.EXTERNAL_LINES
        self.status = 0

    def program_period(self, period_ns: int) -> None:
        """Load the count register's reload value."""
        if period_ns <= 0:
            raise ValueError("RCIM period must be positive")
        self.period_ns = period_ns
        if self._periodic is not None:
            self._periodic.set_period(period_ns)

    def enable_timer(self) -> None:
        if self._timer_enabled:
            return
        self._timer_enabled = True
        if self.started:
            self._begin_cycle()

    def disable_timer(self) -> None:
        self._timer_enabled = False
        if self._periodic is not None:
            self._periodic.cancel()
            self._periodic = None

    def on_start(self) -> None:
        if self._timer_enabled:
            self._begin_cycle()

    def _begin_cycle(self) -> None:
        assert self.sim is not None
        self.cycle_start_ns = self.sim.now
        self._periodic = self.sim.periodic(self.period_ns, self._fire,
                                           label="rcim-period")

    def _fire(self) -> None:
        if not (self.started and self._timer_enabled):
            if self._periodic is not None:
                self._periodic.cancel()
                self._periodic = None
            return
        assert self.sim is not None
        self.last_fire_ns = self.sim.now
        self.fires += 1
        self.status |= 1  # timer source bit
        self.raise_irq()
        # The hardware reloads the count register immediately; the next
        # periodic cycle begins at the moment of expiry.
        self.cycle_start_ns = self.sim.now

    # ------------------------------------------------------------------
    # External edge-triggered inputs
    # ------------------------------------------------------------------
    def trigger_external(self, line: int) -> None:
        """An external device asserted edge input *line*."""
        if not 0 <= line < self.EXTERNAL_LINES:
            raise ValueError(f"RCIM has no external line {line}")
        if not self.started:
            raise RuntimeError("RCIM edge before device start")
        assert self.sim is not None
        self.edge_counts[line] += 1
        self.last_edge_ns[line] = self.sim.now
        self.status |= 1 << (line + 1)
        self.raise_irq()

    def read_and_clear_status(self) -> int:
        """Driver-side: read the source bitmask and acknowledge."""
        status, self.status = self.status, 0
        return status

    def read_count(self) -> int:
        """Time elapsed in the current periodic cycle (ns).

        Mirrors ``initial_count - current_count`` on the real card.
        The mapped-register read costs essentially nothing, which is
        the point of the second interrupt-response test.
        """
        if self.cycle_start_ns < 0:
            return 0
        assert self.sim is not None
        return self.sim.now - self.cycle_start_ns
