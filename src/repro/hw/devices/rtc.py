"""The PC Real-Time Clock (the `realfeel` interrupt source).

The realfeel benchmark programs the RTC to interrupt periodically at
2048 Hz and measures how long a blocked ``read(/dev/rtc)`` takes to
return after each interrupt.  The device records the timestamp of each
fire so the driver (and the latency recorder) can compute response
times from the true hardware fire time, exactly as realfeel infers it
from consecutive TSC reads.
"""

from __future__ import annotations

from repro.hw.apic import RoutingPolicy
from repro.hw.devices.base import Device
from repro.sim.simtime import SEC

#: The legacy PC RTC interrupt line.
RTC_IRQ = 8


class RtcDevice(Device):
    """Periodic RTC, default 2048 Hz."""

    def __init__(self, hz: int = 2048, irq: int = RTC_IRQ) -> None:
        super().__init__("rtc", irq, RoutingPolicy.ROUND_ROBIN)
        if hz <= 0:
            raise ValueError("RTC frequency must be positive")
        self.hz = hz
        self.period_ns = SEC // hz
        self.last_fire_ns = -1
        self.fires = 0
        self._periodic_enabled = False
        self._periodic = None  # live PeriodicHandle while enabled+started

    def set_rate(self, hz: int) -> None:
        """Reprogram the periodic rate (takes effect next period)."""
        if hz <= 0:
            raise ValueError("RTC frequency must be positive")
        self.hz = hz
        self.period_ns = SEC // hz
        if self._periodic is not None:
            # Like the hardware reload register: the cycle in flight
            # completes at the old rate, the next one uses the new.
            self._periodic.set_period(self.period_ns)

    def enable_periodic(self) -> None:
        """Start the periodic interrupt stream (driver PIE enable)."""
        if self._periodic_enabled:
            return
        self._periodic_enabled = True
        if self.started:
            self._arm()

    def disable_periodic(self) -> None:
        self._periodic_enabled = False
        if self._periodic is not None:
            self._periodic.cancel()
            self._periodic = None

    def on_start(self) -> None:
        if self._periodic_enabled:
            self._arm()

    def _arm(self) -> None:
        assert self.sim is not None
        self._periodic = self.sim.periodic(self.period_ns, self._fire,
                                           label="rtc-period")

    def _fire(self) -> None:
        if not (self.started and self._periodic_enabled):
            if self._periodic is not None:
                self._periodic.cancel()
                self._periodic = None
            return
        assert self.sim is not None
        self.last_fire_ns = self.sim.now
        self.fires += 1
        self.raise_irq()
