"""Device models: RTC, RCIM, NIC, SCSI disk, graphics controller."""

from repro.hw.devices.base import Device
from repro.hw.devices.disk import ScsiDisk
from repro.hw.devices.gpu import GraphicsController
from repro.hw.devices.nic import EthernetNic
from repro.hw.devices.rcim import RcimCard
from repro.hw.devices.rtc import RtcDevice

__all__ = [
    "Device",
    "ScsiDisk",
    "GraphicsController",
    "EthernetNic",
    "RcimCard",
    "RtcDevice",
]
