"""SCSI disk with a FIFO request queue and completion interrupts.

File-system workloads submit requests through the block driver; the
disk services them one at a time with a seek+transfer service time
drawn from a lognormal distribution (a few hundred microseconds for a
cache hit / short seek, several milliseconds for a long seek), then
raises its interrupt.  Completed request identities are queued for the
driver's handler to collect.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.hw.apic import RoutingPolicy
from repro.hw.devices.base import Device
from repro.sim.simtime import MSEC, USEC


@dataclass
class DiskRequest:
    """One block I/O request."""

    req_id: int
    sectors: int = 8
    submitted_at: int = 0
    completed_at: int = -1


class ScsiDisk(Device):
    """Single-spindle SCSI disk."""

    def __init__(self, irq: int = 11,
                 service_median_ns: int = 900 * USEC,
                 service_sigma: float = 0.9,
                 service_max_ns: int = 25 * MSEC) -> None:
        super().__init__("sda", irq, RoutingPolicy.ROUND_ROBIN)
        self.service_median_ns = service_median_ns
        self.service_sigma = service_sigma
        self.service_max_ns = service_max_ns
        self.queue: Deque[DiskRequest] = deque()
        self.completions: Deque[DiskRequest] = deque()
        self.in_flight: Optional[DiskRequest] = None
        self.requests_seen = 0
        self._rng = None

    def on_attach(self) -> None:
        assert self.sim is not None
        self._rng = self.sim.rng.stream("disk-service")

    def submit(self, sectors: int = 8) -> DiskRequest:
        """Queue a request; returns its handle."""
        assert self.sim is not None
        self.requests_seen += 1
        req = DiskRequest(req_id=self.requests_seen, sectors=sectors,
                          submitted_at=self.sim.now)
        self.queue.append(req)
        if self.in_flight is None:
            self._dispatch()
        return req

    def _dispatch(self) -> None:
        assert self.sim is not None and self._rng is not None
        if not self.queue:
            return
        req = self.queue.popleft()
        self.in_flight = req
        service = int(self._rng.lognormal(
            mean=_ln(self.service_median_ns), sigma=self.service_sigma))
        service += req.sectors * 2 * USEC  # transfer time
        service = min(service, self.service_max_ns)
        self.sim.after(max(1, service), self._complete, label="disk-complete")

    def _complete(self) -> None:
        assert self.sim is not None
        req = self.in_flight
        assert req is not None
        self.in_flight = None
        req.completed_at = self.sim.now
        self.completions.append(req)
        self.raise_irq()
        self._dispatch()

    def take_completion(self) -> Optional[DiskRequest]:
        """Handler-side: collect one finished request."""
        if self.completions:
            return self.completions.popleft()
        return None

    @property
    def queue_depth(self) -> int:
        return len(self.queue) + (1 if self.in_flight else 0)


def _ln(x: float) -> float:
    import math

    return math.log(x)
