"""Ethernet NIC (3Com 3c905C-class) with per-burst receive interrupts.

Receive traffic is described by named *flows* (the scp copy loop, the
ttcp benchmark, background broadcast chatter).  Packet arrivals form a
compound Poisson process: bursts arrive exponentially at the aggregate
burst rate, each burst carrying a geometrically distributed number of
frames.  Every burst raises one hardware interrupt (2.4-era drivers
interrupt per rx event; NAPI does not exist yet) and the driver layer
turns the frame count into NET_RX softirq work.

Transmit completion interrupts are produced on request by the driver
(`inject_tx`), modelling the DMA-done interrupts a sender receives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hw.apic import RoutingPolicy
from repro.hw.devices.base import Device
from repro.sim.simtime import SEC, USEC


@dataclass
class TrafficFlow:
    """One named source of receive traffic."""

    name: str
    packets_per_sec: float
    burst_mean: float = 4.0

    @property
    def bursts_per_sec(self) -> float:
        return self.packets_per_sec / max(1.0, self.burst_mean)


class EthernetNic(Device):
    """NIC raising one IRQ per received burst."""

    def __init__(self, irq: int = 19) -> None:
        super().__init__("eth0", irq, RoutingPolicy.ROUND_ROBIN)
        self.flows: Dict[str, TrafficFlow] = {}
        self.rx_bursts = 0
        self.rx_packets = 0
        self.tx_completions = 0
        #: Set by the interrupt: frame count of the burst being handled.
        self.last_rx_count = 0
        self._arm_token = 0
        self._rng = None

    def on_attach(self) -> None:
        assert self.sim is not None
        self._rng = self.sim.rng.stream("nic-rx")

    # ------------------------------------------------------------------
    # Flow management (driven by workloads)
    # ------------------------------------------------------------------
    def add_flow(self, flow: TrafficFlow) -> None:
        """Install or replace a traffic flow and re-arm the arrival clock."""
        self.flows[flow.name] = flow
        self._rearm()

    def remove_flow(self, name: str) -> None:
        self.flows.pop(name, None)
        self._rearm()

    def aggregate_burst_rate(self) -> float:
        """Total burst arrivals per second over all flows."""
        return sum(f.bursts_per_sec for f in self.flows.values())

    # ------------------------------------------------------------------
    # Arrival process
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._rearm()

    def _rearm(self) -> None:
        """Invalidate any armed arrival and draw a fresh one."""
        self._arm_token += 1
        if self.started and self.aggregate_burst_rate() > 0:
            self._schedule_next(self._arm_token)

    def _schedule_next(self, token: int) -> None:
        assert self.sim is not None and self._rng is not None
        rate = self.aggregate_burst_rate()
        if rate <= 0:
            return
        gap = max(1, int(self._rng.exponential(SEC / rate)))
        self.sim.after(gap, lambda: self._arrive(token), label="nic-rx-burst")

    def _arrive(self, token: int) -> None:
        if token != self._arm_token or not self.started:
            return  # stale arrival from before a flow change
        assert self._rng is not None
        burst_mean = self._weighted_burst_mean()
        count = 1 + int(self._rng.geometric(1.0 / max(1.0, burst_mean)) - 1)
        self.last_rx_count = count
        self.rx_bursts += 1
        self.rx_packets += count
        self.raise_irq()
        self._schedule_next(token)

    def _weighted_burst_mean(self) -> float:
        total_rate = self.aggregate_burst_rate()
        if total_rate <= 0:
            return 1.0
        return sum(f.burst_mean * f.bursts_per_sec for f in self.flows.values()) / total_rate

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def inject_tx(self, packets: int, delay_ns: Optional[int] = None) -> None:
        """Queue *packets* for transmit; raises a completion IRQ."""
        assert self.sim is not None
        if delay_ns is None:
            # Wire time for a full frame at ~100 Mb/s plus DMA setup.
            delay_ns = 120 * USEC + packets * 12 * USEC
        self.sim.after(delay_ns, self._tx_done, label="nic-tx-done")

    def _tx_done(self) -> None:
        self.tx_completions += 1
        self.last_rx_count = 0
        self.raise_irq()
