"""The simulated machine: topology, contention, devices.

A :class:`Machine` is built from a :class:`MachineSpec` describing the
paper's testbeds (dual Pentium 4 Xeon with hyperthreading for the
determinism experiments, dual Pentium 3 Xeon for the interrupt-response
experiments).  It owns the logical CPUs, physical cores, memory bus,
APIC and attached devices, and is the single source of truth for the
speed factors applied to executing frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, TYPE_CHECKING

from repro.hw.apic import Apic, IrqDescriptor
from repro.hw.core import PhysicalCore
from repro.hw.cpu import ExecFrame, LogicalCpu
from repro.hw.memory import MemoryBus
from repro.hw.tsc import Tsc

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.devices.base import Device
    from repro.sim.engine import Simulator


@dataclass
class MachineSpec:
    """Hardware description.

    Attributes
    ----------
    cores:
        Number of physical cores (the paper's machines have 2).
    hyperthreading:
        Whether each core exposes two logical CPUs.
    ht_speed_mean / ht_speed_jitter:
        Execution-unit contention factor when both siblings are busy.
    membus_epoch_ns / membus_coupling:
        Memory-bus contention model parameters (see
        :mod:`repro.hw.memory`).
    name:
        Label used in reports.
    """

    cores: int = 2
    hyperthreading: bool = False
    ht_speed_mean: float = 0.75
    ht_speed_jitter: float = 0.08
    membus_epoch_ns: int = 50_000_000
    membus_coupling: float = 0.04
    name: str = "dual-xeon"

    def ncpus(self) -> int:
        return self.cores * (2 if self.hyperthreading else 1)


def determinism_testbed(hyperthreading: bool) -> MachineSpec:
    """Dual 1.4 GHz Pentium 4 Xeon, 1 GB RAM (section 5.1's testbed)."""
    return MachineSpec(cores=2, hyperthreading=hyperthreading,
                       name="p4-xeon-1.4ghz")


def interrupt_testbed() -> MachineSpec:
    """Dual Pentium 3/4 Xeon without hyperthreading (section 6's testbeds)."""
    return MachineSpec(cores=2, hyperthreading=False,
                       name="p3-xeon-933mhz")


class Machine:
    """Simulated SMP machine."""

    def __init__(self, sim: "Simulator", spec: MachineSpec) -> None:
        if spec.cores <= 0:
            raise ValueError("a machine needs at least one core")
        self.sim = sim
        self.spec = spec
        self.cores: List[PhysicalCore] = []
        self.cpus: List[LogicalCpu] = []
        threads = 2 if spec.hyperthreading else 1
        for core_idx in range(spec.cores):
            core = PhysicalCore(core_idx, spec.ht_speed_mean,
                                spec.ht_speed_jitter)
            self.cores.append(core)
            for _thread in range(threads):
                cpu = LogicalCpu(sim, self, len(self.cpus), core)
                core.attach(cpu)
                self.cpus.append(cpu)
        self.memory = MemoryBus(spec.membus_epoch_ns, spec.membus_coupling)
        self.memory.attach(self)
        self.apic = Apic(self)
        self.tsc = Tsc(sim)
        self.devices: Dict[str, "Device"] = {}
        self._ht_rng = sim.rng.stream("ht-contention")
        sim.tp.configure(self.ncpus)

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    @property
    def ncpus(self) -> int:
        return len(self.cpus)

    def cpu(self, index: int) -> LogicalCpu:
        return self.cpus[index]

    def siblings(self, index: int) -> List[int]:
        """Logical CPUs sharing a core with *index* (excluding it)."""
        cpu = self.cpus[index]
        return [c.index for c in cpu.core.cpus if c is not cpu]

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------
    def attach_device(self, device: "Device") -> None:
        if device.name in self.devices:
            raise ValueError(f"duplicate device name {device.name!r}")
        self.devices[device.name] = device
        device.attach(self)

    def device(self, name: str) -> "Device":
        return self.devices[name]

    # ------------------------------------------------------------------
    # Contention plumbing
    # ------------------------------------------------------------------
    def speed_for(self, cpu: LogicalCpu, frame: ExecFrame) -> float:
        """Composite speed multiplier for a frame starting now."""
        # Inlined core.speed_factor: this runs on every frame start.
        sibling = cpu.sibling
        if sibling is None or not sibling.frames or not sibling.online:
            ht = 1.0
        else:
            ht = cpu.core._current_factor
        mem = self.memory
        mf = mem._factors.get(cpu.index)
        if mf is None:
            mf = mem.speed_factor(cpu)
        speed = ht * mf
        return speed if speed > 0.01 else 0.01

    def notify_busy_changed(self, cpu: LogicalCpu) -> None:
        """A CPU went busy or idle; update its hyperthread sibling."""
        sibling = cpu.sibling
        if sibling is None or not sibling.frames:
            # No sibling, or it is idle: nothing to resample (that
            # needs both busy) and retime would be a no-op.
            return
        if cpu.frames:
            # Entering a both-busy episode: draw its contention factor.
            cpu.core.resample_factor(self._ht_rng)
        sibling.retime()

    def on_irq_affinity_changed(self, desc: IrqDescriptor) -> None:
        """Hook overridden by the kernel's shield controller.

        In a bare machine (no shield support) the effective affinity
        simply tracks the requested one.
        """
        desc.effective_affinity = desc.requested_affinity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Machine {self.spec.name} cpus={self.ncpus} "
                f"ht={self.spec.hyperthreading}>")
