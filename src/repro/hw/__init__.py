"""Simulated hardware: CPUs, APIC, memory bus, and devices.

The hardware layer is mechanism-free with respect to the kernel: it
executes *frames* of work on logical CPUs, stretches them for
hyperthread and memory-bus contention, and routes interrupts according
to per-IRQ affinity masks.  What an interrupt *does* is decided by the
kernel layer via the hooks the machine is booted with.
"""

from repro.hw.apic import Apic, IrqDescriptor
from repro.hw.cpu import ExecFrame, FrameKind, LogicalCpu
from repro.hw.core import PhysicalCore
from repro.hw.machine import Machine, MachineSpec
from repro.hw.memory import MemoryBus

__all__ = [
    "Apic",
    "IrqDescriptor",
    "ExecFrame",
    "FrameKind",
    "LogicalCpu",
    "PhysicalCore",
    "Machine",
    "MachineSpec",
    "MemoryBus",
]
