"""The IA32 time-stamp counter.

Both of the paper's measurement programs read the TSC around the
operation under test.  In the simulator every logical CPU's TSC is
driven by the single global event clock, so a TSC read is exact; a
configurable fixed read cost models the RDTSC + register-move overhead
the real benchmarks pay (and which sets the floor of the measured
latencies).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


class Tsc:
    """Per-machine TSC facade."""

    def __init__(self, sim: "Simulator", read_cost_ns: int = 80) -> None:
        self.sim = sim
        self.read_cost_ns = read_cost_ns

    def read(self) -> int:
        """Current counter value in nanoseconds.

        The read itself is free at the simulation level; callers that
        want to model the instruction cost include
        :attr:`read_cost_ns` in their compute segments.
        """
        return self.sim.now
