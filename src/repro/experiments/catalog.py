"""The built-in scenario catalog.

Registers every experiment the repo reproduces as declarative data:

* ``fig1``..``fig4`` -- the execution-determinism figures (section 5);
* ``fig5``..``fig7`` -- the interrupt-response figures (section 6);
* ``a1-*``..``a6-*`` -- the six ablation families (see
  :mod:`repro.experiments.ablations`);
* ``fbs-*`` -- the frequency-based-scheduling frame-jitter runs.

Importing this module (done lazily by the registry accessors in
:mod:`repro.experiments.scenario`) performs the registration; specs
carry the paper-scale defaults and are scaled down per run via
:meth:`ScenarioSpec.configured`.
"""

from __future__ import annotations

from repro.experiments.scenario import (
    MeasurementSpec,
    ScenarioSpec,
    ShieldSpec,
    register_scenario,
)
from repro.hw.machine import MachineSpec, determinism_testbed, interrupt_testbed

#: CPU hosting the measurement task, as in the paper's shielded runs.
MEASURE_CPU = 1

FIGURES = "figures"


# ----------------------------------------------------------------------
# Determinism figures (section 5): sine loop under scp + disknoise.
# ----------------------------------------------------------------------
def _determinism(name: str, title: str, kernel: str, hyperthreading: bool,
                 shielded: bool, iterations: int = 25,
                 group: str = FIGURES) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        title=title,
        kernel=kernel,
        machine=determinism_testbed(hyperthreading),
        workloads=("scp-copy", "disknoise"),
        shield=(ShieldSpec.full(MEASURE_CPU) if shielded else ShieldSpec()),
        measurement=MeasurementSpec(program="determinism",
                                    iterations=iterations,
                                    pin_cpu=MEASURE_CPU,
                                    measure_ideal=True),
        group=group,
        description=f"{title}: sine-loop determinism under load",
    )


register_scenario(_determinism(
    "fig1", "Figure 1 (kernel.org, HT)", "vanilla-2.4.21",
    hyperthreading=True, shielded=False))
register_scenario(_determinism(
    "fig2", "Figure 2 (RedHawk, shielded CPU)", "redhawk-1.4",
    hyperthreading=False, shielded=True))
register_scenario(_determinism(
    "fig3", "Figure 3 (RedHawk, unshielded CPU)", "redhawk-1.4",
    hyperthreading=False, shielded=False))
register_scenario(_determinism(
    "fig4", "Figure 4 (kernel.org, no HT)", "vanilla-2.4.21",
    hyperthreading=False, shielded=False))


# ----------------------------------------------------------------------
# Interrupt-response figures (section 6).
# ----------------------------------------------------------------------
register_scenario(ScenarioSpec(
    name="fig5",
    title="Figure 5 (kernel.org realfeel)",
    kernel="vanilla-2.4.21",
    machine=interrupt_testbed(),
    workloads=("broadcast", "stress-kernel"),
    measurement=MeasurementSpec(program="realfeel", samples=40_000),
    rtc_periodic=True,
    group=FIGURES,
    report_style="buckets",
    description="realfeel under stress-kernel, no patches, no shield",
))

register_scenario(ScenarioSpec(
    name="fig6",
    title="Figure 6 (RedHawk realfeel, shielded)",
    kernel="redhawk-1.4",
    machine=interrupt_testbed(),
    workloads=("broadcast", "stress-kernel"),
    shield=ShieldSpec.full(MEASURE_CPU, pin_irq="rtc"),
    measurement=MeasurementSpec(program="realfeel", samples=40_000,
                                pin_cpu=MEASURE_CPU),
    rtc_periodic=True,
    group=FIGURES,
    report_style="fine-buckets",
    description="realfeel on a fully shielded CPU 1",
))

register_scenario(ScenarioSpec(
    name="fig7",
    title="Figure 7 (RedHawk RCIM, shielded)",
    kernel="redhawk-1.4",
    machine=interrupt_testbed(),
    workloads=("broadcast", "stress-kernel", "x11perf", "ttcp"),
    shield=ShieldSpec.full(MEASURE_CPU, pin_irq="rcim"),
    measurement=MeasurementSpec(program="rcim", samples=40_000,
                                pin_cpu=MEASURE_CPU),
    rcim_timer=True,
    group=FIGURES,
    report_style="summary",
    description="RCIM ioctl response under the full Figure 7 load",
))


# ----------------------------------------------------------------------
# A1: cumulative shield components on the Figure 6 setup.
# ----------------------------------------------------------------------
for _variant, (_procs, _irqs, _ltmr) in {
        "none": (False, False, False),
        "procs": (True, False, False),
        "procs+irqs": (True, True, False),
        "full": (True, True, True)}.items():
    register_scenario(ScenarioSpec(
        name=f"a1-{_variant}",
        title=f"A1[{_variant}]",
        kernel="redhawk-1.4",
        machine=interrupt_testbed(),
        workloads=("broadcast", "stress-kernel"),
        shield=ShieldSpec(procs=_procs, irqs=_irqs, ltmr=_ltmr,
                          cpu=MEASURE_CPU, pin_irq="rtc"),
        measurement=MeasurementSpec(program="realfeel", samples=10_000,
                                    pin_cpu=MEASURE_CPU),
        rtc_periodic=True,
        group="a1",
        report_style="fine-buckets",
        description=f"shield components ablation: {_variant}",
    ))


# ----------------------------------------------------------------------
# A2: preemption / low-latency patch combinations on the Figure 5 setup.
# ----------------------------------------------------------------------
for _variant, _flags in {
        "stock": dict(preemptible=False, low_latency=False),
        "low-latency": dict(preemptible=False, low_latency=True),
        "preempt": dict(preemptible=True, low_latency=False),
        "preempt+lowlat": dict(preemptible=True, low_latency=True)}.items():
    register_scenario(ScenarioSpec(
        name=f"a2-{_variant}",
        title=f"A2[{_variant}]",
        kernel="vanilla-2.4.21",
        machine=interrupt_testbed(),
        workloads=("broadcast", "stress-kernel"),
        measurement=MeasurementSpec(program="realfeel", samples=10_000),
        config_overrides=tuple(sorted(_flags.items())),
        rtc_periodic=True,
        group="a2",
        report_style="buckets",
        description=f"patch-lineage ablation: {_variant}",
    ))


# ----------------------------------------------------------------------
# A3: the BKL-avoidance ioctl flag on the Figure 7 setup.
# ----------------------------------------------------------------------
for _variant, _flag in (("no-flag", False), ("flag", True)):
    register_scenario(ScenarioSpec(
        name=f"a3-{_variant}",
        title=f"A3[{_variant}]",
        kernel="redhawk-1.4",
        machine=interrupt_testbed(),
        workloads=("broadcast", "stress-kernel", "x11perf", "ttcp"),
        shield=ShieldSpec.full(MEASURE_CPU, pin_irq="rcim"),
        measurement=MeasurementSpec(program="rcim", samples=10_000,
                                    pin_cpu=MEASURE_CPU),
        config_overrides=(("bkl_ioctl_flag", _flag),),
        rcim_timer=True,
        group="a3",
        report_style="summary",
        description=f"generic-ioctl BKL flag ablation: {_variant}",
    ))


# ----------------------------------------------------------------------
# A4: hyperthreading on/off under RedHawk (determinism).
# ----------------------------------------------------------------------
for _variant, _ht in (("ht-off", False), ("ht-on", True)):
    register_scenario(_determinism(
        f"a4-{_variant}", f"A4[{_variant}]", "redhawk-1.4",
        hyperthreading=_ht, shielded=False, iterations=8, group="a4"))


# ----------------------------------------------------------------------
# A5: the high-res timers patch (cyclictest).
# ----------------------------------------------------------------------
for _variant, (_kernel, _shielded) in {
        "vanilla": ("vanilla-2.4.21", False),
        "highres": ("redhawk-1.4", False),
        "highres-shield": ("redhawk-1.4", True)}.items():
    register_scenario(ScenarioSpec(
        name=f"a5-{_variant}",
        title=f"A5[{_variant}]",
        kernel=_kernel,
        machine=interrupt_testbed(),
        workloads=("stress-kernel",),
        shield=(ShieldSpec.full(MEASURE_CPU) if _shielded
                else ShieldSpec()),
        measurement=MeasurementSpec(
            program="cyclictest", samples=3_000,
            pin_cpu=MEASURE_CPU if _shielded else None),
        group="a5",
        description=f"timer-resolution ablation: {_variant}",
    ))


# ----------------------------------------------------------------------
# A6: the uniprocessor case (no shield possible).
# ----------------------------------------------------------------------
for _variant, _kernel in (("vanilla-up", "vanilla-2.4.21"),
                          ("redhawk-up", "redhawk-1.4")):
    register_scenario(ScenarioSpec(
        name=f"a6-{_variant}",
        title=f"A6[{_variant}]",
        kernel=_kernel,
        machine=MachineSpec(cores=1, hyperthreading=False, name="up-xeon"),
        workloads=("broadcast", "stress-kernel"),
        measurement=MeasurementSpec(program="realfeel", samples=6_000),
        rtc_periodic=True,
        group="a6",
        description=f"uniprocessor ablation: {_variant}",
    ))


# ----------------------------------------------------------------------
# FBS: 400 Hz frame jitter with and without the shield.
# ----------------------------------------------------------------------
for _variant, _shielded in (("shielded", True), ("unshielded", False)):
    register_scenario(ScenarioSpec(
        name=f"fbs-{_variant}",
        title=f"FBS cycle jitter ({_variant})",
        kernel="redhawk-1.4",
        machine=interrupt_testbed(),
        workloads=("stress-kernel",),
        shield=(ShieldSpec.full(MEASURE_CPU, pin_irq="rcim") if _shielded
                else ShieldSpec()),
        measurement=MeasurementSpec(program="fbs-cycle", rt_prio=80,
                                    pin_cpu=MEASURE_CPU),
        rcim_period_ns=2_500_000,
        group="fbs",
        description=f"400 Hz FBS frame integrity, {_variant}",
    ))


# ----------------------------------------------------------------------
# Storm scenarios: fig5-fig7 rerun under escalating fault-plan
# interference (simfault).  The plan names match the scenario names;
# intensity is swept by the margin ladder (repro.faults.margin).
# ----------------------------------------------------------------------
from repro.experiments.scenario import scenario as _scenario  # noqa: E402

for _fig in ("fig5", "fig6", "fig7"):
    _base = _scenario(_fig)
    register_scenario(_base.with_overrides(
        name=f"storm-{_fig}",
        title=f"{_base.title} + storm interference",
        fault_plan=f"storm-{_fig}",
        group="storm",
        description=f"{_fig} rerun under the storm-{_fig} fault plan",
    ))
