"""Result export: figure data as plain dictionaries / JSON.

The experiment runners return rich result objects; downstream users
plotting with their own tooling want flat, stable data.  These
exporters produce JSON-serialisable dictionaries carrying everything a
figure needs: the summary statistics, the histogram series, and the
provenance (kernel description, sample count, seed-independent
identity of the experiment).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Sequence, TYPE_CHECKING

from repro.experiments.determinism import DeterminismResult
from repro.experiments.interrupt_response import LatencyResult
from repro.metrics.histogram import Histogram, LogHistogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.campaign import CampaignResult
    from repro.experiments.scenario import ScenarioResult


def determinism_to_dict(result: DeterminismResult,
                        nbins: int = 50) -> Dict[str, Any]:
    """Flatten a determinism result (Figures 1-4 style)."""
    variances = result.recorder.variances_ms()
    hi = max(1.0, float(variances.max()) * 1.05) if len(variances) else 1.0
    hist = Histogram(0.0, hi, nbins)
    hist.add_many(variances)
    return {
        "figure": result.figure,
        "kernel": result.kernel_name,
        "seed": result.seed,
        "iterations": result.recorder.count,
        "ideal_s": result.ideal_ns / 1e9,
        "max_s": result.max_ns / 1e9,
        "jitter_s": result.jitter_ns / 1e9,
        "jitter_percent": result.jitter_percent,
        "variance_ms_series": [float(v) for v in variances],
        "histogram": {
            "unit": "ms-from-ideal",
            "bins": [{"lo": b.lo, "hi": b.hi, "count": b.count}
                     for b in hist.bins()],
        },
    }


def latency_to_dict(result: LatencyResult,
                    thresholds_ms: Optional[Sequence[float]] = None,
                    hist_lo_ns: float = 1_000.0,
                    hist_hi_ns: float = 100_000_000.0) -> Dict[str, Any]:
    """Flatten a latency result (Figures 5-7 style)."""
    rec = result.recorder
    hist = LogHistogram(hist_lo_ns, hist_hi_ns)
    hist.add_many([max(s, hist_lo_ns + 1) for s in rec.samples])
    out: Dict[str, Any] = {
        "figure": result.figure,
        "kernel": result.kernel_name,
        "seed": result.seed,
        "samples": rec.count,
        "min_us": rec.min() / 1e3,
        "mean_us": rec.mean() / 1e3,
        "max_us": rec.max() / 1e3,
        "histogram": {
            "unit": "ns",
            "log_bins": [{"lo": b.lo, "hi": b.hi, "count": b.count}
                         for b in hist.bins() if b.count],
        },
    }
    if thresholds_ms:
        out["cumulative"] = [
            {"below_ms": t,
             "fraction": rec.fraction_below(int(t * 1e6))}
            for t in thresholds_ms
        ]
    return out


def scenario_to_dict(result: "ScenarioResult") -> Dict[str, Any]:
    """Flatten a scenario-layer result, whatever its kind."""
    if result.kind == "determinism":
        out = determinism_to_dict(result.to_determinism())
    else:
        out = latency_to_dict(result.to_latency())
    out["scenario"] = result.scenario
    out["kind"] = result.kind
    if result.details:
        out["details"] = dict(result.details)
    return out


def campaign_to_dict(result: "CampaignResult") -> Dict[str, Any]:
    """Flatten a whole campaign: every run plus per-scenario merges.

    The output is deterministic for a given campaign matrix (runs in
    job-expansion order, merges folded in that same order), which is
    what the worker-count-independence guarantee is asserted against.
    """
    runs = []
    for job, run in zip(result.jobs, result.runs):
        data = scenario_to_dict(run)
        if job.override_tag:
            data["override"] = job.override_tag
        runs.append(data)
    merged = {}
    for name in sorted(result.merged):
        rec = result.merged[name]
        merged[name] = {
            "count": rec.count,
            "max_ns": rec.max(),
            "samples_or_durations": list(
                getattr(rec, "samples", None)
                or getattr(rec, "durations", [])),
        }
    return {
        "campaign": {
            "scenarios": list(result.campaign.scenarios),
            "seeds": list(result.campaign.seeds),
            "overrides": [tag for tag, _ in result.campaign.config_overrides
                          if tag],
        },
        "runs": runs,
        "merged": merged,
    }


def to_json(data: Dict[str, Any], path: Optional[str] = None,
            indent: int = 2) -> str:
    """Serialise an exported dictionary (optionally writing a file)."""
    text = json.dumps(data, indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return text
