"""Declarative experiment scenarios.

A :class:`ScenarioSpec` is plain picklable data describing one complete
experiment: the machine, the kernel (by registry name, plus config
overrides), the background loads and measurement program (by registry
name), the shield wiring and the seed.  :func:`run_scenario` turns a
spec into a booted bench, drives it, and returns a
:class:`ScenarioResult`.

Because specs are data, they can cross process boundaries: the campaign
runner (:mod:`repro.experiments.campaign`) ships them to worker
processes that rebuild the bench from the registries and ship the
result back.

The scenario *registry* maps stable names ("fig5", "a1-full",
"fbs-shielded") to specs; the built-in catalog in
:mod:`repro.experiments.catalog` registers every figure, ablation and
FBS run the repo reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.configs.kernels import kernel_config, kernel_name_of
from repro.core.affinity import CpuMask
from repro.experiments.harness import Bench, build_bench
from repro.hw.machine import MachineSpec, interrupt_testbed
from repro.kernel.config import KernelConfig
from repro.metrics.recorder import JitterRecorder, LatencyRecorder
from repro.metrics.report import (
    FIG5_THRESHOLDS_MS,
    FIG6_THRESHOLDS_MS,
    bucket_table,
    determinism_summary,
    latency_summary,
)
from repro.sim.rng import DEFAULT_SEED
from repro.sim.simtime import MSEC, SEC, USEC
from repro.workloads.base import spawn
from repro.workloads.determinism import PAPER_IDEAL_NS
from repro.workloads.registry import (
    PRE_START,
    load_entry,
    measurement_entry,
)

#: Seed offset for the unloaded ideal-baseline run (determinism tests).
IDEAL_SEED_OFFSET = 777


class UnknownScenarioError(KeyError):
    """Lookup of a scenario name that is not registered."""


# ----------------------------------------------------------------------
# Spec dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShieldSpec:
    """Shield wiring for one scenario.

    ``procs``/``irqs``/``ltmr`` select the shield components written to
    ``/proc/shield/*``; ``pin_irq`` names a device (machine registry
    name, e.g. ``"rtc"``) whose interrupt is steered to ``cpu`` --
    independent of shielding, as some ablations pin without shielding.
    """

    procs: bool = False
    irqs: bool = False
    ltmr: bool = False
    cpu: int = 1
    pin_irq: Optional[str] = None

    @property
    def any_component(self) -> bool:
        return self.procs or self.irqs or self.ltmr

    @classmethod
    def full(cls, cpu: int = 1, pin_irq: Optional[str] = None
             ) -> "ShieldSpec":
        return cls(procs=True, irqs=True, ltmr=True, cpu=cpu,
                   pin_irq=pin_irq)


@dataclass(frozen=True)
class MeasurementSpec:
    """The measurement program and its parameters.

    ``program`` names a builder in the workload registry.  Fields not
    used by a given program are ignored by its builder.
    """

    program: str
    samples: int = 40_000            # latency-style programs
    iterations: int = 25             # determinism-style programs
    loop_ns: int = PAPER_IDEAL_NS    # determinism sine-loop length
    interval_ns: int = 1 * MSEC      # cyclictest period
    duration_ns: int = 3 * SEC       # fixed-duration (FBS) runs
    rt_prio: int = 90
    pin_cpu: Optional[int] = None
    #: Run the unloaded baseline first and force its minimum as the
    #: recorder's ideal (the determinism protocol, section 5.1).
    measure_ideal: bool = False
    # FBS frame geometry
    fbs_cycle_ns: int = 2_500 * USEC
    fbs_cycles_per_frame: int = 20
    fbs_compute_ns: int = 600 * USEC


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to run one experiment, as plain data."""

    name: str
    title: str
    kernel: str                      # kernel registry name
    measurement: MeasurementSpec
    machine: MachineSpec = field(default_factory=interrupt_testbed)
    workloads: Tuple[str, ...] = ()
    shield: ShieldSpec = field(default_factory=ShieldSpec)
    config_overrides: Tuple[Tuple[str, Any], ...] = ()
    rtc_hz: int = 2048
    rcim_period_ns: int = 1000 * USEC
    rtc_periodic: bool = False
    rcim_timer: bool = False
    seed: int = DEFAULT_SEED
    group: str = ""                  # e.g. "figures", "a1", "fbs"
    report_style: str = "summary"    # latency report flavour
    description: str = ""
    #: Fault plan (registry name in :mod:`repro.faults.plan`) to run
    #: under, "" for none; ``fault_intensity`` scales the plan's
    #: baseline intensity multiplicatively (the margin ladder knob).
    fault_plan: str = ""
    fault_intensity: float = 1.0

    @property
    def kind(self) -> str:
        """Result family: "determinism", "latency" or "fbs"."""
        return measurement_entry(self.measurement.program).kind

    # ------------------------------------------------------------------
    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """Copy with spec fields replaced."""
        return replace(self, **changes)

    def configured(self, samples: Optional[int] = None,
                   iterations: Optional[int] = None,
                   seed: Optional[int] = None,
                   duration_ns: Optional[int] = None,
                   config_overrides: Optional[Dict[str, Any]] = None,
                   fault_plan: Optional[str] = None,
                   fault_intensity: Optional[float] = None,
                   ) -> "ScenarioSpec":
        """Apply the common run-time knobs (CLI / campaign overrides)."""
        m = self.measurement
        m_changes: Dict[str, Any] = {}
        if samples is not None:
            m_changes["samples"] = samples
        if iterations is not None:
            m_changes["iterations"] = iterations
        if duration_ns is not None:
            m_changes["duration_ns"] = duration_ns
        spec = self
        if m_changes:
            spec = replace(spec, measurement=replace(m, **m_changes))
        if seed is not None:
            spec = replace(spec, seed=seed)
        if config_overrides:
            merged = dict(spec.config_overrides)
            merged.update(config_overrides)
            spec = replace(spec,
                           config_overrides=tuple(sorted(merged.items())))
        if fault_plan is not None:
            spec = replace(spec, fault_plan=fault_plan)
        if fault_intensity is not None:
            spec = replace(spec, fault_intensity=float(fault_intensity))
        return spec

    def build_config(self) -> KernelConfig:
        """The kernel config this scenario runs (overrides applied)."""
        config = kernel_config(self.kernel)
        if self.config_overrides:
            config = config.with_overrides(**dict(self.config_overrides))
        return config


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_SCENARIOS: Dict[str, ScenarioSpec] = {}
_CATALOG_LOADED = False


def _ensure_catalog() -> None:
    """Load the built-in catalog on first registry access."""
    global _CATALOG_LOADED
    if not _CATALOG_LOADED:
        _CATALOG_LOADED = True
        import repro.experiments.catalog  # noqa: F401  (registers specs)


def register_scenario(spec: ScenarioSpec, replace_existing: bool = False
                      ) -> ScenarioSpec:
    if spec.name in _SCENARIOS and not replace_existing:
        raise ValueError(f"scenario {spec.name!r} already registered")
    _SCENARIOS[spec.name] = spec
    return spec


def scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    _ensure_catalog()
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; registered: "
            f"{scenario_names()}") from None


def scenario_names(group: Optional[str] = None) -> List[str]:
    _ensure_catalog()
    if group is None:
        return sorted(_SCENARIOS)
    return sorted(n for n, s in _SCENARIOS.items() if s.group == group)


def scenario_groups() -> List[str]:
    _ensure_catalog()
    return sorted({s.group for s in _SCENARIOS.values() if s.group})


def all_scenarios() -> List[ScenarioSpec]:
    _ensure_catalog()
    return [_SCENARIOS[n] for n in sorted(_SCENARIOS)]


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class ScenarioResult:
    """Outcome of one scenario run.

    ``recorder`` is a :class:`JitterRecorder` for determinism runs and
    a :class:`LatencyRecorder` otherwise; ``details`` carries
    program-specific extras (FBS cycle counts, overruns, ...).
    """

    scenario: str
    title: str
    kind: str
    kernel_name: str
    seed: int
    recorder: Any
    report_style: str = "summary"
    ideal_ns: int = 0
    details: Dict[str, Any] = field(default_factory=dict)
    #: Lockdep observations when the run was instrumented: a list of
    #: violation dictionaries (empty = observed and clean), or None
    #: when lockdep was off.  Deliberately NOT part of ``details`` --
    #: exports must stay byte-identical with and without observation.
    lockdep: Optional[List[Dict[str, Any]]] = None
    #: Trace report when the run was traced (tracepoint hit counts,
    #: per-CPU accounting, latency attribution), or None.  Like
    #: ``lockdep``, deliberately NOT part of ``details``/exports.
    trace: Optional[Dict[str, Any]] = None
    #: Fault-injection report when the run had an enabled fault plan
    #: (injection counts, timeline digest), or None.  Like ``lockdep``
    #: and ``trace``, deliberately NOT part of ``details``/exports.
    faults: Optional[Dict[str, Any]] = None

    # -- common statistics ---------------------------------------------
    def max_ns(self) -> int:
        return self.recorder.max()

    def min_ns(self) -> int:
        return self.recorder.min() if hasattr(self.recorder, "min") else 0

    def mean_ns(self) -> float:
        return (self.recorder.mean()
                if hasattr(self.recorder, "mean") else 0.0)

    def jitter_ns(self) -> int:
        return (self.recorder.jitter_ns()
                if isinstance(self.recorder, JitterRecorder) else 0)

    def jitter_percent(self) -> float:
        return (100.0 * self.recorder.jitter_fraction()
                if isinstance(self.recorder, JitterRecorder) else 0.0)

    # -- reports --------------------------------------------------------
    def report(self, style: Optional[str] = None) -> str:
        title = f"{self.title}: {self.kernel_name}"
        if self.kind == "determinism":
            return determinism_summary(self.recorder, title)
        style = style or self.report_style
        if style == "buckets":
            return bucket_table(self.recorder, title, FIG5_THRESHOLDS_MS)
        if style == "fine-buckets":
            return bucket_table(self.recorder, title, FIG6_THRESHOLDS_MS)
        return latency_summary(self.recorder, title)

    # -- legacy result conversion --------------------------------------
    def to_determinism(self):
        """As the legacy :class:`DeterminismResult` (thin wrappers)."""
        from repro.experiments.determinism import DeterminismResult

        return DeterminismResult(
            figure=self.title,
            kernel_name=self.kernel_name,
            recorder=self.recorder,
            ideal_ns=self.ideal_ns,
            max_ns=self.recorder.max(),
            jitter_ns=self.recorder.jitter_ns(),
            jitter_percent=100.0 * self.recorder.jitter_fraction(),
            seed=self.seed,
        )

    def to_latency(self):
        """As the legacy :class:`LatencyResult` (thin wrappers)."""
        from repro.experiments.interrupt_response import LatencyResult

        return LatencyResult(
            figure=self.title,
            kernel_name=self.kernel_name,
            recorder=self.recorder,
            max_ns=self.recorder.max(),
            mean_ns=self.recorder.mean(),
            min_ns=self.recorder.min(),
            seed=self.seed,
        )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def build_scenario_bench(spec: ScenarioSpec,
                         config: Optional[KernelConfig] = None) -> Bench:
    """Assemble (but do not load or drive) the scenario's bench."""
    if config is None:
        config = spec.build_config()
    return build_bench(config, spec.machine, seed=spec.seed,
                       rtc_hz=spec.rtc_hz,
                       rcim_period_ns=spec.rcim_period_ns)


def _measure_ideal(spec: ScenarioSpec,
                   kernel_factory: Optional[Any]) -> int:
    """The unloaded baseline run (3 iterations, no load, no shield)."""
    baseline = spec.with_overrides(
        workloads=(),
        shield=ShieldSpec(cpu=spec.shield.cpu),
        rtc_periodic=False,
        rcim_timer=False,
        seed=spec.seed + IDEAL_SEED_OFFSET,
        fault_plan="",
        measurement=replace(spec.measurement, iterations=3,
                            measure_ideal=False),
    )
    result = run_scenario(baseline, kernel_factory=kernel_factory)
    return int(result.recorder.as_array().min())


def run_scenario(spec: ScenarioSpec,
                 kernel_factory: Optional[Any] = None,
                 lockdep: Optional[Any] = None,
                 trace: Optional[Any] = None,
                 faults: Optional[Any] = None) -> ScenarioResult:
    """Run one scenario end to end.

    *kernel_factory* overrides the registry lookup for ad-hoc local
    configs (legacy wrappers); campaign workers always resolve by name.

    *lockdep* enables invariant checking for the main run: ``True``
    for default observation, or a
    :class:`~repro.analysis.lockdep.LockdepConfig` (strict mode /
    hold budgets).  Observation never perturbs the simulation, so the
    result -- and its export -- is byte-identical either way; the
    violations land on ``ScenarioResult.lockdep``.

    *trace* enables typed tracing for the main run: ``True`` for the
    defaults, or a :class:`~repro.observe.tracer.TraceConfig`
    (ring capacity, attribution threshold, Chrome trace output path).
    Same observational contract as lockdep; the report lands on
    ``ScenarioResult.trace``.

    *faults* injects deterministic interference for the main run: a
    :class:`~repro.faults.plan.FaultPlan`, a registered plan name, or
    None to fall back to ``spec.fault_plan`` ("" = no faults).  The
    effective intensity is ``plan.intensity * spec.fault_intensity``;
    zero disables injection entirely (byte-identical to no faults).
    The injection report lands on ``ScenarioResult.faults``.  The
    install order is lockdep -> tracer -> faults, so injected IRQ
    handlers and rogue tasks run under lockdep's wrappers and every
    injection is traceable.
    """
    if kernel_factory is not None:
        config = kernel_factory()
        if spec.config_overrides:
            config = config.with_overrides(**dict(spec.config_overrides))
    else:
        config = spec.build_config()

    if spec.shield.any_component and not config.shield_support:
        raise ValueError(f"{config.name} has no shield support")

    ideal: Optional[int] = None
    if spec.measurement.measure_ideal:
        ideal = _measure_ideal(spec, kernel_factory)

    bench = build_scenario_bench(spec, config)

    validator = None
    if lockdep:
        from repro.analysis.lockdep import (LockdepConfig,
                                            LockdepValidator)
        ld_config = lockdep if isinstance(lockdep, LockdepConfig) else None
        validator = LockdepValidator(bench.kernel, ld_config).install()

    tracer = None
    if trace:
        from repro.observe.tracer import SimTracer, TraceConfig
        t_config = trace if isinstance(trace, TraceConfig) else None
        tracer = SimTracer(bench, t_config).install()

    fault_ctl = None
    plan = faults if faults is not None else (spec.fault_plan or None)
    if plan is not None:
        from repro.faults.controller import FaultController
        from repro.faults.plan import FaultPlan, fault_plan
        if not isinstance(plan, FaultPlan):
            plan = fault_plan(str(plan))
        fault_ctl = FaultController(
            bench, plan,
            intensity=plan.intensity * spec.fault_intensity)
        fault_ctl.install()

    loads = [load_entry(name) for name in spec.workloads]
    for entry in loads:
        if entry.phase == PRE_START:
            entry.apply(bench)
    bench.start_devices()
    if spec.rtc_periodic:
        bench.rtc.enable_periodic()
    if spec.rcim_timer:
        bench.rcim.enable_timer()
    for entry in loads:
        if entry.phase != PRE_START:
            entry.apply(bench)

    m = spec.measurement
    affinity = CpuMask.single(m.pin_cpu) if m.pin_cpu is not None else None
    program = measurement_entry(m.program).build(bench, m, affinity)
    if tracer is not None:
        tracer.watch_program(program)
    spawn(bench.kernel, program.spec())

    shield = spec.shield
    if shield.pin_irq is not None:
        device = bench.machine.device(shield.pin_irq)
        bench.set_irq_affinity(device.irq, shield.cpu)
    if shield.any_component:
        bench.shield_cpu(shield.cpu, procs=shield.procs,
                         irqs=shield.irqs, ltmr=shield.ltmr)

    drive = getattr(program, "drive", None)
    try:
        if drive is not None:
            drive(bench)
        else:
            bench.run_until_done(program,
                                 limit_ns=program.estimated_sim_ns())
    finally:
        if fault_ctl is not None:
            fault_ctl.uninstall()
        if tracer is not None:
            tracer.uninstall()
        if validator is not None:
            validator.uninstall()

    trace_report = None
    if tracer is not None:
        trace_report = tracer.report()
        if tracer.config.out:
            tracer.export_chrome(tracer.config.out,
                                 metadata={"scenario": spec.name,
                                           "seed": spec.seed})

    recorder = program.recorder
    if ideal is not None:
        recorder.set_ideal(ideal)

    details: Dict[str, Any] = {}
    stats = getattr(program, "stats", None)
    if stats is not None:
        cycle_stats = stats()
        details["cycles"] = cycle_stats.cycles
        details["overruns"] = cycle_stats.overruns

    result = ScenarioResult(
        scenario=spec.name,
        title=spec.title,
        kind=spec.kind,
        kernel_name=config.describe(),
        seed=spec.seed,
        recorder=recorder,
        report_style=spec.report_style,
        ideal_ns=ideal if ideal is not None else 0,
        details=details,
        lockdep=validator.to_dicts() if validator is not None else None,
        trace=trace_report,
        faults=fault_ctl.report() if fault_ctl is not None else None,
    )
    if tracer is not None and getattr(tracer.config, "record", False):
        from repro.observe.diff.recording import attach_recording
        attach_recording(tracer, spec, result)
    return result


def run_named(name: str, **configured: Any) -> ScenarioResult:
    """Convenience: run a registered scenario with knob overrides."""
    return run_scenario(scenario(name).configured(**configured))
