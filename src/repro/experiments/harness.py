"""Testbed assembly: machine + kernel + devices + drivers in one call.

A :class:`Bench` is a booted simulated system with every device the
paper's experiments touch already attached and its driver registered.
Experiment runners add workloads, configure shielding through
``/proc``, and drive the simulation until their measurement program
finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.affinity import CpuMask
from repro.hw.devices.disk import ScsiDisk
from repro.hw.devices.gpu import GraphicsController
from repro.hw.devices.nic import EthernetNic, TrafficFlow
from repro.hw.devices.rcim import RcimCard
from repro.hw.devices.rtc import RtcDevice
from repro.hw.machine import Machine, MachineSpec, interrupt_testbed
from repro.kernel.config import KernelConfig
from repro.kernel.drivers.blockdev import BlockDriver
from repro.kernel.drivers.gfx import GfxDriver
from repro.kernel.drivers.net import NetDriver
from repro.kernel.drivers.rcim_dev import RcimDriver
from repro.kernel.drivers.rtc_dev import RtcDriver
from repro.kernel.kernel import Kernel
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationStalledError
from repro.sim.simtime import MSEC, SEC, USEC


@dataclass
class Bench:
    """A fully assembled simulated system."""

    sim: Simulator
    machine: Machine
    kernel: Kernel
    rtc: RtcDevice
    rcim: RcimCard
    nic: EthernetNic
    disk: ScsiDisk
    gpu: GraphicsController
    rtc_driver: RtcDriver
    rcim_driver: RcimDriver
    net_driver: NetDriver
    block_driver: BlockDriver
    gfx_driver: GfxDriver

    # ------------------------------------------------------------------
    def start_devices(self) -> None:
        for device in (self.rtc, self.rcim, self.nic, self.disk, self.gpu):
            device.start()

    def add_background_broadcast(self, packets_per_sec: float = 40.0) -> None:
        """The 'standard broadcast traffic' of section 6.1's network."""
        self.nic.add_flow(TrafficFlow("broadcast", packets_per_sec,
                                      burst_mean=1.5))

    # ------------------------------------------------------------------
    def shield_cpu(self, cpu: int, procs: bool = True, irqs: bool = True,
                   ltmr: bool = True) -> None:
        """Shield *cpu* via the /proc interface (as an admin would)."""
        mask = CpuMask.single(cpu).to_proc()
        if procs:
            self.kernel.procfs.write("/proc/shield/procs", mask)
        if irqs:
            self.kernel.procfs.write("/proc/shield/irqs", mask)
        if ltmr:
            self.kernel.procfs.write("/proc/shield/ltmr", mask)

    def set_irq_affinity(self, irq: int, cpu: int) -> None:
        self.kernel.procfs.write(f"/proc/irq/{irq}/smp_affinity",
                                 CpuMask.single(cpu).to_proc())

    # ------------------------------------------------------------------
    def run_for(self, duration_ns: int) -> None:
        self.sim.run_until(self.sim.now + duration_ns)

    def run_until_done(self, test, limit_ns: int,
                       chunk_ns: int = 250 * MSEC,
                       strict_limit: bool = False) -> None:
        """Advance in chunks until *test.finished* or the time limit.

        If every queue drains while the test is still unfinished the
        simulation can never progress again; rather than silently
        burning the remaining limit we raise a diagnostic immediately,
        naming what is still scheduled (periodic callbacks -- timer
        ticks, device pacers, fault-injector pacers -- by label, plus
        the one-shot count) so the missing event source is obvious.
        The stall check and the diagnostic both consult the engine's
        staged-aware views (``peek_time``/``pending_summary``), so
        events sitting in the batched backend's in-flight run -- e.g.
        after a callback raised out of an advance -- count as pending
        work rather than as a phantom stall.

        *strict_limit* additionally raises when the limit expires with
        the test unfinished (the default keeps the historical contract
        of returning silently: callers inspect ``test.finished``).
        """
        sim = self.sim
        deadline = sim.now + limit_ns
        while not test.finished and sim.now < deadline:
            if sim.peek_time() is None:
                name = getattr(test, "name", type(test).__name__)
                raise SimulationStalledError(
                    f"all event queues drained at t={sim.now} ns with "
                    f"measurement program {name!r} unfinished "
                    f"({deadline - sim.now} ns short of its limit); "
                    f"a workload or device stopped scheduling events "
                    f"[backend={sim.backend_name}]; "
                    f"pending: {sim.pending_summary()}")
            sim.run_until(min(deadline, sim.now + chunk_ns))
        if strict_limit and not test.finished:
            name = getattr(test, "name", type(test).__name__)
            raise SimulationStalledError(
                f"time limit of {limit_ns} ns expired at t={sim.now} "
                f"ns with measurement program {name!r} unfinished "
                f"({sim.events_pending} events still pending, "
                f"backend={sim.backend_name}); "
                f"pending: {sim.pending_summary()}")


def build_bench(config: KernelConfig, spec: Optional[MachineSpec] = None,
                seed: Optional[int] = None,
                rtc_hz: int = 2048,
                rcim_period_ns: int = 1000 * USEC) -> Bench:
    """Assemble and boot a complete testbed.

    *seed* defaults to :data:`repro.sim.rng.DEFAULT_SEED`; scenario
    runs always pass their ``ScenarioSpec.seed`` explicitly so the seed
    of a run is stated in exactly one place.
    """
    if spec is None:
        spec = interrupt_testbed()
    sim = Simulator(seed=seed)
    machine = Machine(sim, spec)
    kernel = Kernel(sim, machine, config)

    rtc = RtcDevice(hz=rtc_hz)
    rcim = RcimCard(period_ns=rcim_period_ns)
    nic = EthernetNic()
    disk = ScsiDisk()
    gpu = GraphicsController()
    for device in (rtc, rcim, nic, disk, gpu):
        machine.attach_device(device)

    kernel.boot()

    bench = Bench(
        sim=sim, machine=machine, kernel=kernel,
        rtc=rtc, rcim=rcim, nic=nic, disk=disk, gpu=gpu,
        rtc_driver=RtcDriver(kernel, rtc),
        rcim_driver=RcimDriver(kernel, rcim),
        net_driver=NetDriver(kernel, nic),
        block_driver=BlockDriver(kernel, disk),
        gfx_driver=GfxDriver(kernel, gpu),
    )
    return bench
