"""Experiment runners: one per figure of the paper, plus ablations."""

from repro.experiments.harness import Bench, build_bench
from repro.experiments.determinism import (
    run_fig1_vanilla_ht,
    run_fig2_redhawk_shielded,
    run_fig3_redhawk_unshielded,
    run_fig4_vanilla_noht,
    run_determinism,
)
from repro.experiments.interrupt_response import (
    run_fig5_vanilla_rtc,
    run_fig6_redhawk_shielded_rtc,
    run_fig7_rcim,
    run_rtc_experiment,
    run_rcim_experiment,
)

__all__ = [
    "Bench",
    "build_bench",
    "run_determinism",
    "run_fig1_vanilla_ht",
    "run_fig2_redhawk_shielded",
    "run_fig3_redhawk_unshielded",
    "run_fig4_vanilla_noht",
    "run_rtc_experiment",
    "run_rcim_experiment",
    "run_fig5_vanilla_rtc",
    "run_fig6_redhawk_shielded_rtc",
    "run_fig7_rcim",
]
