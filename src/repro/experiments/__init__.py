"""Experiment runners and the declarative scenario/campaign layer.

The scenario registry (:mod:`repro.experiments.scenario` +
:mod:`repro.experiments.catalog`) holds every figure, ablation and FBS
run as declarative data; the campaign runner
(:mod:`repro.experiments.campaign`) executes scenario x seed x
config-override matrices in parallel.  The per-figure functions remain
as thin wrappers.
"""

from repro.experiments.harness import Bench, build_bench
from repro.experiments.scenario import (
    MeasurementSpec,
    ScenarioResult,
    ScenarioSpec,
    ShieldSpec,
    UnknownScenarioError,
    all_scenarios,
    register_scenario,
    run_named,
    run_scenario,
    scenario,
    scenario_groups,
    scenario_names,
)
from repro.experiments.campaign import (
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    run_campaign,
)
from repro.experiments.determinism import (
    run_fig1_vanilla_ht,
    run_fig2_redhawk_shielded,
    run_fig3_redhawk_unshielded,
    run_fig4_vanilla_noht,
    run_determinism,
)
from repro.experiments.interrupt_response import (
    run_fig5_vanilla_rtc,
    run_fig6_redhawk_shielded_rtc,
    run_fig7_rcim,
    run_rtc_experiment,
    run_rcim_experiment,
)

__all__ = [
    "Bench",
    "build_bench",
    # scenario layer
    "MeasurementSpec",
    "ScenarioResult",
    "ScenarioSpec",
    "ShieldSpec",
    "UnknownScenarioError",
    "all_scenarios",
    "register_scenario",
    "run_named",
    "run_scenario",
    "scenario",
    "scenario_groups",
    "scenario_names",
    # campaigns
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "run_campaign",
    # legacy figure entry points
    "run_determinism",
    "run_fig1_vanilla_ht",
    "run_fig2_redhawk_shielded",
    "run_fig3_redhawk_unshielded",
    "run_fig4_vanilla_noht",
    "run_rtc_experiment",
    "run_rcim_experiment",
    "run_fig5_vanilla_rtc",
    "run_fig6_redhawk_shielded_rtc",
    "run_fig7_rcim",
]
