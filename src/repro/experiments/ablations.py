"""Ablation experiments: which design choice buys which property.

These go beyond the paper's figures to isolate the contribution of
each mechanism DESIGN.md calls out:

* A1 -- the three shield components (processes / interrupts / local
  timer), applied cumulatively to the Figure 6 setup;
* A2 -- the preemption and low-latency patches, applied to the
  Figure 5 setup in all four combinations;
* A3 -- the generic-ioctl BKL-avoidance flag on the Figure 7 setup;
* A4 -- hyperthreading on/off under RedHawk (why RedHawk ships with
  it disabled by default);
* A5 -- the POSIX high-res timers patch (cyclictest on each kernel);
* A6 -- the uniprocessor case, where no shield is possible and the
  patches alone must carry the latency bound.

Every variant is a registered scenario (``a1-none`` .. ``a6-redhawk-up``
in :mod:`repro.experiments.catalog`); the functions here run one family
and return the familiar per-variant result dictionaries.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.determinism import DeterminismResult
from repro.experiments.interrupt_response import LatencyResult
from repro.experiments.scenario import run_scenario, scenario, scenario_names


def run_ablation_family(group: str, samples: Optional[int] = None,
                        iterations: Optional[int] = None,
                        seed: int = 1) -> Dict:
    """Run every scenario in ablation *group*, keyed by variant name."""
    results = {}
    prefix = f"{group}-"
    for name in scenario_names(group=group):
        spec = scenario(name).configured(samples=samples,
                                         iterations=iterations, seed=seed)
        result = run_scenario(spec)
        variant = name[len(prefix):] if name.startswith(prefix) else name
        results[variant] = (result.to_determinism()
                            if result.kind == "determinism"
                            else result.to_latency())
    return results


def run_shield_component_ablation(samples: int = 10_000, seed: int = 1
                                  ) -> Dict[str, LatencyResult]:
    """A1: Figure 6 with cumulative shield components.

    Variants: ``none`` (RedHawk, pinned task, no shield), ``procs``
    (only process shielding), ``procs+irqs``, ``full`` (adds the local
    timer).
    """
    return run_ablation_family("a1", samples=samples, seed=seed)


def run_patch_ablation(samples: int = 10_000, seed: int = 1
                       ) -> Dict[str, LatencyResult]:
    """A2: Figure 5 across preemption/low-latency patch combinations.

    All variants keep the 2.4 goodness scheduler and no shield, so the
    difference is purely the patches -- reproducing the lineage the
    paper's introduction describes (stock -> low-latency -> preempt ->
    both, the combination Clark Williams measured at 1.2 ms).
    """
    return run_ablation_family("a2", samples=samples, seed=seed)


def run_bkl_flag_ablation(samples: int = 10_000, seed: int = 1
                          ) -> Dict[str, LatencyResult]:
    """A3: the RCIM test with and without the BKL-avoidance flag.

    Without the flag the generic ioctl path takes ``lock_kernel()``
    around the driver routine and reacquires it after the blocking
    wait -- contending with the X server's DRM ioctls.
    """
    return run_ablation_family("a3", samples=samples, seed=seed)


def run_hyperthreading_ablation(iterations: int = 8, seed: int = 1
                                ) -> Dict[str, DeterminismResult]:
    """A4: RedHawk determinism with hyperthreading forced on vs off.

    RedHawk disables hyperthreading by default; this shows what that
    default is worth on an unshielded CPU.
    """
    return run_ablation_family("a4", iterations=iterations, seed=seed)


def run_timer_resolution_ablation(cycles: int = 3_000, seed: int = 5
                                  ) -> Dict[str, LatencyResult]:
    """A5: jiffies-resolution vs high-res timers (cyclictest).

    Vanilla 2.4 rounds every nanosleep up to jiffies (HZ=100:
    10-20 ms!), so its timer latency is dominated by the clock;
    RedHawk's high-res timers expose the actual scheduling latency,
    which shielding then bounds.
    """
    return run_ablation_family("a5", samples=cycles, seed=seed)


def run_uniprocessor_ablation(samples: int = 6_000, seed: int = 9
                              ) -> Dict[str, LatencyResult]:
    """A6: realfeel on a single-CPU machine.

    No shield is possible on UP; RedHawk's preemption + low-latency +
    bounded-softirq machinery alone must bound the tail that vanilla
    leaves unbounded.
    """
    return run_ablation_family("a6", samples=samples, seed=seed)
