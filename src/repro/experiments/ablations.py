"""Ablation experiments: which design choice buys which property.

These go beyond the paper's figures to isolate the contribution of
each mechanism DESIGN.md calls out:

* A1 -- the three shield components (processes / interrupts / local
  timer), applied cumulatively to the Figure 6 setup;
* A2 -- the preemption and low-latency patches, applied to the
  Figure 5 setup in all four combinations;
* A3 -- the generic-ioctl BKL-avoidance flag on the Figure 7 setup;
* A4 -- hyperthreading on/off under RedHawk (why RedHawk ships with
  it disabled by default).
"""

from __future__ import annotations

from typing import Dict

from repro.configs.kernels import redhawk_1_4, vanilla_2_4_21
from repro.core.affinity import CpuMask
from repro.experiments.determinism import DeterminismResult, run_determinism
from repro.experiments.harness import build_bench
from repro.experiments.interrupt_response import LatencyResult, _finish
from repro.hw.machine import interrupt_testbed
from repro.workloads.base import spawn, spawn_all
from repro.workloads.realfeel import Realfeel
from repro.workloads.stress_kernel import stress_kernel_suite

MEASURE_CPU = 1


def run_shield_component_ablation(samples: int = 10_000, seed: int = 1
                                  ) -> Dict[str, LatencyResult]:
    """A1: Figure 6 with cumulative shield components.

    Variants: ``none`` (RedHawk, pinned task, no shield), ``procs``
    (only process shielding), ``procs+irqs``, ``full`` (adds the local
    timer).
    """
    variants = {
        "none": (False, False, False),
        "procs": (True, False, False),
        "procs+irqs": (True, True, False),
        "full": (True, True, True),
    }
    results: Dict[str, LatencyResult] = {}
    for name, (procs, irqs, ltmr) in variants.items():
        config = redhawk_1_4()
        bench = build_bench(config, interrupt_testbed(), seed=seed)
        bench.add_background_broadcast()
        bench.start_devices()
        bench.rtc.enable_periodic()
        spawn_all(bench.kernel, stress_kernel_suite(bench.kernel))
        test = Realfeel(bench.rtc, samples=samples,
                        affinity=CpuMask.single(MEASURE_CPU))
        spawn(bench.kernel, test.spec())
        bench.set_irq_affinity(bench.rtc.irq, MEASURE_CPU)
        if procs or irqs or ltmr:
            bench.shield_cpu(MEASURE_CPU, procs=procs, irqs=irqs, ltmr=ltmr)
        bench.run_until_done(test, limit_ns=test.estimated_sim_ns())
        results[name] = _finish(f"A1[{name}]", config, test.recorder)
    return results


def run_patch_ablation(samples: int = 10_000, seed: int = 1
                       ) -> Dict[str, LatencyResult]:
    """A2: Figure 5 across preemption/low-latency patch combinations.

    All variants keep the 2.4 goodness scheduler and no shield, so the
    difference is purely the patches -- reproducing the lineage the
    paper's introduction describes (stock -> low-latency -> preempt ->
    both, the combination Clark Williams measured at 1.2 ms).
    """
    variants = {
        "stock": dict(preemptible=False, low_latency=False),
        "low-latency": dict(preemptible=False, low_latency=True),
        "preempt": dict(preemptible=True, low_latency=False),
        "preempt+lowlat": dict(preemptible=True, low_latency=True),
    }
    results: Dict[str, LatencyResult] = {}
    for name, flags in variants.items():
        config = vanilla_2_4_21().with_overrides(**flags)
        bench = build_bench(config, interrupt_testbed(), seed=seed)
        bench.add_background_broadcast()
        bench.start_devices()
        bench.rtc.enable_periodic()
        spawn_all(bench.kernel, stress_kernel_suite(bench.kernel))
        test = Realfeel(bench.rtc, samples=samples)
        spawn(bench.kernel, test.spec())
        bench.run_until_done(test, limit_ns=test.estimated_sim_ns())
        results[name] = _finish(f"A2[{name}]", config, test.recorder)
    return results


def run_bkl_flag_ablation(samples: int = 10_000, seed: int = 1
                          ) -> Dict[str, LatencyResult]:
    """A3: the RCIM test with and without the BKL-avoidance flag.

    Without the flag the generic ioctl path takes ``lock_kernel()``
    around the driver routine and reacquires it after the blocking
    wait -- contending with the X server's DRM ioctls.
    """
    from repro.experiments.interrupt_response import run_rcim_experiment

    results: Dict[str, LatencyResult] = {}
    for name, flag in (("no-flag", False), ("flag", True)):
        factory = lambda flag=flag: redhawk_1_4().with_overrides(
            bkl_ioctl_flag=flag)
        results[name] = run_rcim_experiment(
            factory, samples=samples, seed=seed, figure=f"A3[{name}]")
    return results


def run_hyperthreading_ablation(iterations: int = 8, seed: int = 1
                                ) -> Dict[str, DeterminismResult]:
    """A4: RedHawk determinism with hyperthreading forced on vs off.

    RedHawk disables hyperthreading by default; this shows what that
    default is worth on an unshielded CPU.
    """
    return {
        "ht-off": run_determinism(redhawk_1_4, hyperthreading=False,
                                  shielded=False, iterations=iterations,
                                  seed=seed, figure="A4[ht-off]"),
        "ht-on": run_determinism(redhawk_1_4, hyperthreading=True,
                                 shielded=False, iterations=iterations,
                                 seed=seed, figure="A4[ht-on]"),
    }
