"""Execution-determinism experiments: Figures 1-4.

The paper's protocol (section 5.1): the sine-loop test runs
SCHED_FIFO with locked pages while the system handles the scp network
copy and the disknoise script.  The ideal time comes from an unloaded
run; the loaded runs' excess over ideal is jitter.

===========  ==========================  =====================
Figure       Kernel                      Notes
===========  ==========================  =====================
Figure 1     kernel.org 2.4.21           hyperthreading on
Figure 2     RedHawk 1.4                 CPU 1 fully shielded
Figure 3     RedHawk 1.4                 shield disabled
Figure 4     kernel.org 2.4.21           hyperthreading off
===========  ==========================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.configs.kernels import redhawk_1_4, vanilla_2_4_21
from repro.core.affinity import CpuMask
from repro.experiments.harness import Bench, build_bench
from repro.hw.machine import determinism_testbed
from repro.kernel.config import KernelConfig
from repro.metrics.recorder import JitterRecorder
from repro.metrics.report import determinism_summary
from repro.sim.simtime import SEC
from repro.workloads.base import spawn
from repro.workloads.determinism import DeterminismTest
from repro.workloads.disknoise import disknoise
from repro.workloads.netload import scp_copy_loop

#: CPU hosting the measurement task, as in the paper's shielded runs.
MEASURE_CPU = 1


@dataclass
class DeterminismResult:
    """Outcome of one determinism experiment."""

    figure: str
    kernel_name: str
    recorder: JitterRecorder
    ideal_ns: int
    max_ns: int
    jitter_ns: int
    jitter_percent: float

    def report(self) -> str:
        return determinism_summary(
            self.recorder, f"{self.figure}: {self.kernel_name}")


def _measure_ideal(config_factory: Callable[[], KernelConfig],
                   hyperthreading: bool, loop_ns: int, seed: int) -> int:
    """The unloaded baseline run (3 iterations, no load, no shield)."""
    bench = build_bench(config_factory(),
                        determinism_testbed(hyperthreading), seed=seed + 777)
    bench.start_devices()
    test = DeterminismTest(iterations=3, loop_ns=loop_ns,
                           affinity=CpuMask.single(MEASURE_CPU))
    spawn(bench.kernel, test.spec())
    bench.run_until_done(test, limit_ns=test.estimated_sim_ns())
    return int(test.recorder.as_array().min())


def run_determinism(config_factory: Callable[[], KernelConfig],
                    hyperthreading: bool,
                    shielded: bool,
                    iterations: int = 25,
                    loop_ns: int = 1_147_000_000,
                    seed: int = 1,
                    figure: str = "determinism") -> DeterminismResult:
    """Run one determinism experiment end to end."""
    ideal = _measure_ideal(config_factory, hyperthreading, loop_ns, seed)

    config = config_factory()
    bench = build_bench(config, determinism_testbed(hyperthreading),
                        seed=seed)
    bench.start_devices()

    # Background load: the scp copy and the disknoise script.
    spawn(bench.kernel, scp_copy_loop(bench.kernel, bench.nic))
    spawn(bench.kernel, disknoise(bench.kernel))

    test = DeterminismTest(iterations=iterations, loop_ns=loop_ns,
                           affinity=CpuMask.single(MEASURE_CPU))
    spawn(bench.kernel, test.spec())

    if shielded:
        if not config.shield_support:
            raise ValueError(f"{config.name} has no shield support")
        bench.shield_cpu(MEASURE_CPU)

    bench.run_until_done(test, limit_ns=test.estimated_sim_ns())
    test.recorder.set_ideal(ideal)
    return DeterminismResult(
        figure=figure,
        kernel_name=config.describe(),
        recorder=test.recorder,
        ideal_ns=ideal,
        max_ns=test.recorder.max(),
        jitter_ns=test.recorder.jitter_ns(),
        jitter_percent=100.0 * test.recorder.jitter_fraction(),
    )


# ----------------------------------------------------------------------
# The four figures
# ----------------------------------------------------------------------
def run_fig1_vanilla_ht(iterations: int = 25, seed: int = 1
                        ) -> DeterminismResult:
    """Figure 1: kernel.org 2.4.21, hyperthreading enabled."""
    return run_determinism(vanilla_2_4_21, hyperthreading=True,
                           shielded=False, iterations=iterations, seed=seed,
                           figure="Figure 1 (kernel.org, HT)")


def run_fig2_redhawk_shielded(iterations: int = 25, seed: int = 1
                              ) -> DeterminismResult:
    """Figure 2: RedHawk 1.4, CPU 1 shielded."""
    return run_determinism(redhawk_1_4, hyperthreading=False,
                           shielded=True, iterations=iterations, seed=seed,
                           figure="Figure 2 (RedHawk, shielded CPU)")


def run_fig3_redhawk_unshielded(iterations: int = 25, seed: int = 1
                                ) -> DeterminismResult:
    """Figure 3: RedHawk 1.4, shield disabled."""
    return run_determinism(redhawk_1_4, hyperthreading=False,
                           shielded=False, iterations=iterations, seed=seed,
                           figure="Figure 3 (RedHawk, unshielded CPU)")


def run_fig4_vanilla_noht(iterations: int = 25, seed: int = 1
                          ) -> DeterminismResult:
    """Figure 4: kernel.org 2.4.21, hyperthreading disabled."""
    return run_determinism(vanilla_2_4_21, hyperthreading=False,
                           shielded=False, iterations=iterations, seed=seed,
                           figure="Figure 4 (kernel.org, no HT)")
