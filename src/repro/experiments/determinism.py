"""Execution-determinism experiments: Figures 1-4.

The paper's protocol (section 5.1): the sine-loop test runs
SCHED_FIFO with locked pages while the system handles the scp network
copy and the disknoise script.  The ideal time comes from an unloaded
run; the loaded runs' excess over ideal is jitter.

===========  ==========================  =====================
Figure       Kernel                      Notes
===========  ==========================  =====================
Figure 1     kernel.org 2.4.21           hyperthreading on
Figure 2     RedHawk 1.4                 CPU 1 fully shielded
Figure 3     RedHawk 1.4                 shield disabled
Figure 4     kernel.org 2.4.21           hyperthreading off
===========  ==========================  =====================

These runners are thin wrappers over the declarative scenario layer
(:mod:`repro.experiments.scenario`): each builds or looks up a
:class:`ScenarioSpec` and converts the result.  New experiments should
register scenarios instead of adding bespoke runner functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.configs.kernels import kernel_name_of
from repro.experiments.scenario import (
    MeasurementSpec,
    ScenarioSpec,
    ShieldSpec,
    run_scenario,
)
from repro.hw.machine import determinism_testbed
from repro.kernel.config import KernelConfig
from repro.metrics.recorder import JitterRecorder
from repro.metrics.report import determinism_summary
from repro.workloads.determinism import PAPER_IDEAL_NS

#: CPU hosting the measurement task, as in the paper's shielded runs.
MEASURE_CPU = 1


@dataclass
class DeterminismResult:
    """Outcome of one determinism experiment."""

    figure: str
    kernel_name: str
    recorder: JitterRecorder
    ideal_ns: int
    max_ns: int
    jitter_ns: int
    jitter_percent: float
    seed: int = 0

    def report(self) -> str:
        return determinism_summary(
            self.recorder, f"{self.figure}: {self.kernel_name}")


def determinism_spec(kernel: str, hyperthreading: bool, shielded: bool,
                     iterations: int = 25,
                     loop_ns: int = PAPER_IDEAL_NS,
                     seed: int = 1,
                     figure: str = "determinism") -> ScenarioSpec:
    """An ad-hoc determinism scenario (the Figures 1-4 shape)."""
    return ScenarioSpec(
        name=figure,
        title=figure,
        kernel=kernel,
        machine=determinism_testbed(hyperthreading),
        workloads=("scp-copy", "disknoise"),
        shield=(ShieldSpec.full(MEASURE_CPU) if shielded else ShieldSpec()),
        measurement=MeasurementSpec(program="determinism",
                                    iterations=iterations,
                                    loop_ns=loop_ns,
                                    pin_cpu=MEASURE_CPU,
                                    measure_ideal=True),
        seed=seed,
    )


def run_determinism(config_factory: Callable[[], KernelConfig],
                    hyperthreading: bool,
                    shielded: bool,
                    iterations: int = 25,
                    loop_ns: int = 1_147_000_000,
                    seed: int = 1,
                    figure: str = "determinism") -> DeterminismResult:
    """Run one determinism experiment end to end (legacy entry point)."""
    kernel = kernel_name_of(config_factory)
    spec = determinism_spec(kernel or "ad-hoc", hyperthreading, shielded,
                            iterations=iterations, loop_ns=loop_ns,
                            seed=seed, figure=figure)
    result = run_scenario(
        spec, kernel_factory=None if kernel else config_factory)
    return result.to_determinism()


# ----------------------------------------------------------------------
# The four figures (registered as fig1..fig4 in the catalog)
# ----------------------------------------------------------------------
def _run_figure(name: str, iterations: int, seed: int) -> DeterminismResult:
    from repro.experiments.scenario import scenario

    spec = scenario(name).configured(iterations=iterations, seed=seed)
    return run_scenario(spec).to_determinism()


def run_fig1_vanilla_ht(iterations: int = 25, seed: int = 1
                        ) -> DeterminismResult:
    """Figure 1: kernel.org 2.4.21, hyperthreading enabled."""
    return _run_figure("fig1", iterations, seed)


def run_fig2_redhawk_shielded(iterations: int = 25, seed: int = 1
                              ) -> DeterminismResult:
    """Figure 2: RedHawk 1.4, CPU 1 shielded."""
    return _run_figure("fig2", iterations, seed)


def run_fig3_redhawk_unshielded(iterations: int = 25, seed: int = 1
                                ) -> DeterminismResult:
    """Figure 3: RedHawk 1.4, shield disabled."""
    return _run_figure("fig3", iterations, seed)


def run_fig4_vanilla_noht(iterations: int = 25, seed: int = 1
                          ) -> DeterminismResult:
    """Figure 4: kernel.org 2.4.21, hyperthreading disabled."""
    return _run_figure("fig4", iterations, seed)
